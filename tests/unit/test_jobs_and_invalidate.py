"""Job envelope (``submit(JobSpec)``), job-level cache replay, cache
statistics persistence, and incremental invalidation planning."""

import json

import pytest

from repro.harness import invalidate
from repro.harness.cache import ResultCache
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.jobs import JOB_CACHE_PREFIX, submit
from repro.harness.spec import JobSpec, RunSpec


def _run_spec():
    return RunSpec(workload="single-counter",
                   config=SystemConfig(num_cpus=2, scheme=SyncScheme.TLR,
                                       max_cycles=20_000_000),
                   workload_args={"total_increments": 16})


class TestSubmit:
    def test_run_job_and_replay(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        spec = JobSpec.run(_run_spec())

        first = submit(spec, cache=store)
        assert first.result["ok"] is True
        assert first.cached is False
        assert (first.telemetry or {}).get("simulated") == 1

        second = submit(spec, cache=store)
        assert second.cached is True
        assert second.telemetry is None  # nothing executed
        assert second.result == first.result

    def test_corrupt_job_entry_degrades_to_re_execution(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        spec = JobSpec.run(_run_spec())
        submit(spec, cache=store)

        key = JOB_CACHE_PREFIX + spec.fingerprint()
        store.put(key, {"garbage": True})  # unversioned / wrong shape
        replay = submit(spec, cache=store)
        assert replay.cached is False  # fell back to simulating
        assert replay.result["ok"] is True

    def test_verify_job(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        job = submit(JobSpec.verify(workloads=["single-counter"],
                                    num_cpus=2, seeds=1, ops=8),
                     cache=store)
        assert job.result["ok"] is True
        assert "single-counter" in job.result["workloads"]

    def test_no_cache_always_executes(self):
        spec = JobSpec.run(_run_spec())
        first = submit(spec, cache=False)
        second = submit(spec, cache=False)
        assert not first.cached and not second.cached
        assert first.result == second.result  # deterministic engine


class TestCacheStats:
    def test_submit_persists_lifetime_counters(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        spec = JobSpec.run(_run_spec())
        submit(spec, cache=store)   # miss + put
        submit(spec, cache=store)   # job-level hit
        stats = store.stats()
        assert stats["entries"] >= 2  # run cell + job envelope
        assert stats["bytes"] > 0
        # submit() folds session counters into the on-disk stats, so a
        # *fresh* instance (a later `repro cache --stats`) sees them.
        reloaded = ResultCache(tmp_path / "cache").stats()
        assert reloaded["hits"] >= 1
        assert reloaded["misses"] >= 1
        assert reloaded["session_hits"] == 0

    def test_persist_counters_merges_and_resets(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        store.get("0" * 64)  # miss
        assert store.stats()["session_misses"] == 1
        store.persist_counters()
        assert store.stats()["session_misses"] == 0
        assert store.stats()["misses"] == 1
        store.get("0" * 64)  # second miss, second merge
        store.persist_counters()
        assert ResultCache(tmp_path / "cache").stats()["misses"] == 2

    def test_clear_preserves_stats_file(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        submit(JobSpec.run(_run_spec()), cache=store)
        store.persist_counters()
        store.clear()
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.stats()["entries"] == 0
        assert fresh.stats()["misses"] > 0  # lifetime counters survive


class TestInvalidate:
    def _write_artifact(self, repo, bench, config, results=None):
        payload = {"bench": bench, "config": config,
                   "results": results or {}}
        (repo / f"BENCH_{bench}.json").write_text(json.dumps(payload))

    def test_plan_regenerate_plan_cycle(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        store = ResultCache(tmp_path / "cache")
        self._write_artifact(repo, "fig07_queue",
                             {"num_cpus": 2, "total_increments": 16})

        plans = invalidate.plan(repo, cache=store)
        assert len(plans) == 1
        assert plans[0].total == 1 and len(plans[0].stale) == 1

        summary = invalidate.regenerate(plans, cache=store)
        assert summary["simulated"] == 1
        assert summary["failures"] == 0

        replanned = invalidate.plan(repo, cache=store)
        assert replanned[0].fresh == 1 and not replanned[0].stale

    def test_shared_cells_deduplicated_across_artifacts(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        store = ResultCache(tmp_path / "cache")
        config = {"num_cpus": 2, "total_increments": 16}
        self._write_artifact(repo, "fig07_queue", config)
        (repo / "BENCH_copy.json").write_text(json.dumps(
            {"bench": "fig07_queue", "config": config, "results": {}}))

        plans = invalidate.plan(repo, cache=store)
        assert sum(len(p.stale) for p in plans) == 2
        summary = invalidate.regenerate(plans, cache=store)
        assert summary["stale"] == 1  # same fingerprint, run once

    def test_unplannable_artifacts_are_reported_not_ignored(self, tmp_path):
        repo = tmp_path / "repo"
        repo.mkdir()
        store = ResultCache(tmp_path / "cache")
        self._write_artifact(repo, "perf", {"quick": True})
        self._write_artifact(repo, "mystery_bench", {})

        plans = {p.bench: p for p in invalidate.plan(repo, cache=store)}
        assert plans["perf"].skipped == "machine-bound measurement"
        assert plans["mystery_bench"].skipped == "no cell planner"

        report = invalidate.render_plan(list(plans.values()))
        assert "skipped" in report
        assert "stale cells to regenerate: 0" in report
