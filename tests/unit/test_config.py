"""Unit tests for system configuration."""

import pytest

from repro.harness.config import (BusConfig, CacheConfig, SpeculationConfig,
                                  SyncScheme, SystemConfig)


class TestSyncScheme:
    def test_speculating_schemes(self):
        assert SyncScheme.SLE.speculates
        assert SyncScheme.TLR.speculates
        assert SyncScheme.TLR_STRICT_TS.speculates
        assert not SyncScheme.BASE.speculates
        assert not SyncScheme.MCS.speculates

    def test_tlr_schemes(self):
        assert SyncScheme.TLR.is_tlr
        assert SyncScheme.TLR_STRICT_TS.is_tlr
        assert not SyncScheme.SLE.is_tlr

    def test_paper_names(self):
        assert SyncScheme.TLR.value == "BASE+SLE+TLR"
        assert SyncScheme.SLE.value == "BASE+SLE"


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, assoc=4, line_bytes=64)
        assert cfg.num_sets == 128

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=24 * 1024, assoc=4)


class TestSystemConfig:
    def test_defaults_match_paper_table2_shape(self):
        cfg = SystemConfig()
        assert cfg.num_cpus == 16
        assert cfg.bus.snoop_latency == 20
        assert cfg.bus.max_outstanding == 120
        assert cfg.memory.l2_latency == 12
        assert cfg.memory.dram_latency == 70
        assert cfg.memory.data_latency == 20
        assert cfg.spec.write_buffer_entries == 64
        assert cfg.spec.elision_depth == 8
        assert cfg.spec.rmw_predictor_entries == 128
        assert cfg.spec.store_pair_predictor_entries == 64
        assert cfg.cache.victim_entries == 16

    def test_with_scheme_copies(self):
        base = SystemConfig(scheme=SyncScheme.BASE)
        tlr = base.with_scheme(SyncScheme.TLR)
        assert base.scheme is SyncScheme.BASE
        assert tlr.scheme is SyncScheme.TLR
        assert tlr.spec is not base.spec

    def test_strict_ts_disables_relaxation(self):
        cfg = SystemConfig().with_scheme(SyncScheme.TLR_STRICT_TS)
        assert not cfg.spec.single_block_relaxation
        # and the direct-construction path agrees
        direct = SystemConfig(scheme=SyncScheme.TLR_STRICT_TS)
        assert not direct.spec.single_block_relaxation

    def test_plain_tlr_keeps_relaxation(self):
        cfg = SystemConfig().with_scheme(SyncScheme.TLR)
        assert cfg.spec.single_block_relaxation

    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cpus=0)
