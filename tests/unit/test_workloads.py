"""Unit tests for workload construction: address space, microbenchmark
builders, application kernels (structure, determinism, validators)."""

import pytest

from repro.coherence.memory import ValueStore
from repro.cpu.isa import WORDS_PER_LINE, line_of
from repro.workloads.apps import (ALL_APPS, barnes, cholesky, mp3d,
                                  ocean_cont, radiosity, raytrace,
                                  water_nsq)
from repro.workloads.common import AddressSpace
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)


class TestAddressSpace:
    def test_alloc_line_is_line_aligned_and_fresh(self):
        space = AddressSpace()
        a = space.alloc_line()
        b = space.alloc_line()
        assert a % WORDS_PER_LINE == 0
        assert line_of(a) != line_of(b)

    def test_alloc_word_padded_by_default(self):
        space = AddressSpace()
        a = space.alloc_word()
        b = space.alloc_word()
        assert line_of(a) != line_of(b)

    def test_alloc_word_unpadded_packs(self):
        space = AddressSpace()
        a = space.alloc_word(padded=False)
        b = space.alloc_word(padded=False)
        assert b == a + 1

    def test_alloc_block_contiguous(self):
        space = AddressSpace()
        base = space.alloc_block(5)
        nxt = space.alloc_line()
        assert line_of(nxt) > line_of(base + 4)

    def test_address_zero_never_allocated(self):
        space = AddressSpace()
        for _ in range(10):
            assert space.alloc_word() != 0


class TestMicrobenchBuilders:
    def test_multiple_counter_structure(self):
        workload = multiple_counter(4, total_increments=100)
        assert workload.num_threads == 4
        assert workload.meta["iters"] == 25
        assert len(workload.lock_addrs) == 1

    def test_single_counter_minimum_one_iteration(self):
        workload = single_counter(8, total_increments=4)
        assert workload.meta["iters"] == 1

    def test_linked_list_default_items_scale_with_threads(self):
        workload = linked_list(6, total_ops=60)
        assert workload.num_threads == 6

    def test_validators_reject_wrong_memory(self):
        # An all-zero image (counters never incremented) must fail the
        # functional check for every microbenchmark.
        for workload in (single_counter(2, 8), multiple_counter(2, 8),
                         linked_list(2, 8)):
            with pytest.raises(AssertionError):
                workload.check(ValueStore())

    def test_single_counter_validator_accepts_correct_memory(self):
        workload = single_counter(2, total_increments=8)
        store = ValueStore()
        store.write(workload.meta["counter"], 8)
        workload.check(store)  # exact expected value: no exception


class TestAppBuilders:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_builders_produce_named_workloads(self, name):
        workload = ALL_APPS[name](4)
        assert workload.name == name
        assert workload.num_threads == 4
        assert workload.lock_addrs

    def test_choices_are_deterministic(self):
        a = barnes(4)
        b = barnes(4)
        # Same construction twice: same address layout and same
        # expected-hit bookkeeping (meta carries the region count).
        assert a.meta["regions"] == b.meta["regions"]
        assert a.lock_addrs == b.lock_addrs

    def test_water_scales_locks_with_threads(self):
        few = water_nsq(2)
        many = water_nsq(8)
        assert len(many.lock_addrs) > len(few.lock_addrs)

    def test_mp3d_coarse_single_lock(self):
        fine = mp3d(4)
        coarse = mp3d(4, coarse=True)
        assert len(fine.lock_addrs) > 1
        assert len(coarse.lock_addrs) == 1
        assert coarse.name == "mp3d-coarse"

    def test_cholesky_meta(self):
        workload = cholesky(4, scale=5, columns=8)
        assert workload.meta["tasks"] == 20
        assert workload.meta["columns"] == 8

    def test_radiosity_has_hot_region(self):
        workload = radiosity(4)
        assert workload.meta["regions"] == 3

    def test_barnes_tree_cells(self):
        workload = barnes(4, tree_cells=7)
        assert workload.meta["regions"] == 7

    @pytest.mark.parametrize("builder", [ocean_cont, raytrace],
                             ids=["ocean", "raytrace"])
    def test_zero_validation_fails(self, builder):
        workload = builder(2)
        with pytest.raises(AssertionError):
            workload.check(ValueStore())
