"""Unit tests for the preemptive-scheduler subsystem (repro.sched).

Cores are pure policy, so their rotation/demotion/fairness rules are
tested in isolation; the engine is exercised on a real (small) machine
because its contract -- deschedule aborts speculation, ticks never wedge
the kernel queue, accounting only moves on real events -- only means
anything against the genuine processor/kernel behavior.
"""

from dataclasses import replace

import pytest

from repro.harness.config import SchedConfig, SyncScheme, SystemConfig
from repro.harness.runner import execute_workload, result_fingerprint
from repro.harness.spec import RunSpec
from repro.sched import (KNOWN_SCHEDULERS, SCHED_IN, SCHED_MIGRATE,
                         SCHED_OUT, CfsScheduler, MlfqScheduler,
                         RoundRobinScheduler, make_scheduler)

ANY = lambda thread: True  # noqa: E731 - the trivial eligibility filter


def _run(scheduler="rr", quantum=200, threads_per_cpu=2, migrate=False,
         policy=None, seed=0, ops=96, cpus=4, workload="single-counter"):
    cfg = SystemConfig(num_cpus=cpus, seed=seed).with_scheme(SyncScheme.TLR)
    if policy:
        cfg = cfg.with_policy(policy)
    cfg = replace(cfg, sched=SchedConfig(
        scheduler=scheduler, quantum=quantum,
        threads_per_cpu=threads_per_cpu, migrate=migrate))
    spec = RunSpec(workload=workload, config=cfg,
                   workload_args={"total_increments": ops}
                   if workload == "single-counter" else {"total_ops": ops})
    return execute_workload(spec.build_workload(), cfg)


# ----------------------------------------------------------------------
# Name/constant registries stay in sync
# ----------------------------------------------------------------------
class TestRegistries:
    def test_config_knows_every_core_plus_off(self):
        assert SchedConfig.KNOWN_SCHEDULERS == ("none",) + KNOWN_SCHEDULERS

    def test_factory_builds_every_known_core(self):
        for name in KNOWN_SCHEDULERS:
            assert make_scheduler(name, 4, 2, 100).name == name

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("fifo", 4, 2, 100)

    def test_record_kind_names_match_engine_constants(self):
        from repro.record.format import SCHED_KIND_NAMES
        assert SCHED_KIND_NAMES[SCHED_IN] == "switch-in"
        assert SCHED_KIND_NAMES[SCHED_OUT] == "switch-out"
        assert SCHED_KIND_NAMES[SCHED_MIGRATE] == "migrate"


class TestSchedConfig:
    def test_defaults_are_off(self):
        cfg = SchedConfig()
        assert cfg.scheduler == "none" and not cfg.enabled

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="bad scheduler"):
            SchedConfig(scheduler="fifo")

    def test_rejects_bad_quantum_and_ratio(self):
        with pytest.raises(ValueError):
            SchedConfig(scheduler="rr", quantum=0)
        with pytest.raises(ValueError):
            SchedConfig(scheduler="rr", threads_per_cpu=0)

    def test_rejects_negative_penalties(self):
        with pytest.raises(ValueError):
            SchedConfig(scheduler="rr", context_switch_penalty=-1)

    def test_serialization_round_trip(self):
        from repro.harness.spec import config_from_dict, config_to_dict
        cfg = SystemConfig(sched=SchedConfig(scheduler="mlfq", quantum=64,
                                             threads_per_cpu=2))
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_pre_sched_payload_still_loads(self):
        # Old serialized configs have no "sched" key at all.
        from repro.harness.spec import config_from_dict, config_to_dict
        data = config_to_dict(SystemConfig())
        data.pop("sched", None)
        assert config_from_dict(data).sched == SchedConfig()

    def test_sched_knobs_key_the_fingerprint(self):
        base = RunSpec(workload="single-counter", config=SystemConfig(),
                       workload_args={"total_increments": 32})
        on = RunSpec(workload="single-counter",
                     config=SystemConfig(sched=SchedConfig(scheduler="rr")),
                     workload_args={"total_increments": 32})
        assert base.fingerprint() != on.fingerprint()


# ----------------------------------------------------------------------
# Cores in isolation
# ----------------------------------------------------------------------
class TestRoundRobin:
    def test_fifo_rotation(self):
        core = RoundRobinScheduler(3, 1, 100)
        for t in range(3):
            core.admit(t)
        assert core.pick(0, ANY) == 0
        core.requeue(0, 100)            # preempted -> tail
        assert core.pick(0, ANY) == 1
        assert core.pick(0, ANY) == 2
        assert core.pick(0, ANY) == 0

    def test_no_waiter_means_no_preempt(self):
        core = RoundRobinScheduler(1, 1, 100)
        core.admit(0)
        assert core.pick(0, ANY) == 0
        # Ready queue empty: the inertness invariant.
        assert not core.should_preempt(0, 0, 10**9, ANY)

    def test_quantum_gates_preemption(self):
        core = RoundRobinScheduler(2, 1, 100)
        core.admit(0)
        core.admit(1)
        assert core.pick(0, ANY) == 0
        assert not core.should_preempt(0, 0, 99, ANY)
        assert core.should_preempt(0, 0, 100, ANY)

    def test_eligibility_filter_respected(self):
        core = RoundRobinScheduler(4, 2, 100)
        for t in range(4):
            core.admit(t)
        even = lambda t: t % 2 == 0  # noqa: E731
        assert core.pick(0, even) == 0
        assert core.pick(0, even) == 2
        assert core.pick(0, even) is None


class TestMlfq:
    def test_full_quantum_demotes(self):
        core = MlfqScheduler(2, 1, 100)
        core.admit(0)
        core.admit(1)
        assert core.quantum_for(0) == 100
        assert core.pick(0, ANY) == 0
        core.requeue(0, 100)            # burned the slice -> level 1
        assert core.quantum_for(0) == 200
        core.requeue(1, 10)             # kept its level (never picked is
        assert core.quantum_for(1) == 100  # level 0 anyway)

    def test_higher_level_runs_first(self):
        core = MlfqScheduler(2, 1, 100)
        core.admit(0)
        core.admit(1)
        assert core.pick(0, ANY) == 0
        core.requeue(0, 100)            # 0 demoted below 1
        assert core.pick(0, ANY) == 1

    def test_boost_returns_everyone_to_top(self):
        core = MlfqScheduler(2, 1, 100)
        core.admit(0)
        core.pick(0, ANY)
        core.requeue(0, 100)
        assert core.quantum_for(0) == 200
        core.on_tick(core.boost_period)
        assert core.quantum_for(0) == 100

    def test_demotion_saturates_at_bottom_level(self):
        core = MlfqScheduler(1, 1, 100)
        core.admit(0)
        for _ in range(10):
            assert core.pick(0, ANY) == 0
            core.requeue(0, core.quantum_for(0))
        assert core.quantum_for(0) == 100 * 2 ** (core.levels - 1)


class TestCfs:
    def test_picks_minimum_vruntime(self):
        core = CfsScheduler(3, 1, 100)
        for t in range(3):
            core.admit(t)
        assert core.pick(0, ANY) == 0   # tie broken by id
        core.requeue(0, 500)
        assert core.pick(0, ANY) == 1
        core.requeue(1, 50)
        assert core.pick(0, ANY) == 2
        core.requeue(2, 100)
        assert core.pick(0, ANY) == 1   # 50 < 100 < 500

    def test_preempts_only_for_a_behind_waiter(self):
        core = CfsScheduler(2, 1, 100)
        core.admit(0)
        core.admit(1)
        assert core.pick(0, ANY) == 0
        # Waiter 1 has vruntime 0 < incumbent's 0 + 100: preempt.
        assert core.should_preempt(0, 0, 100, ANY)
        # But never inside the minimum granularity.
        assert not core.should_preempt(0, 0, 99, ANY)

    def test_far_ahead_waiter_does_not_preempt(self):
        core = CfsScheduler(2, 1, 100)
        core.admit(0)
        core.admit(1)
        core.requeue(1, 10_000)         # 1 has run far more than 0
        assert core.pick(0, ANY) == 0
        assert not core.should_preempt(0, 0, 100, ANY)


# ----------------------------------------------------------------------
# Engine on a real machine
# ----------------------------------------------------------------------
class TestEngine:
    def test_multiplexed_run_completes_and_validates(self):
        result = _run(scheduler="rr", quantum=200, threads_per_cpu=2)
        assert result.stats.extra["sched.preemptions"] > 0
        assert result.stats.total("elisions_committed") > 0

    def test_deterministic_across_runs(self):
        a = _run(scheduler="mlfq", quantum=150, threads_per_cpu=2)
        b = _run(scheduler="mlfq", quantum=150, threads_per_cpu=2)
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_schedulers_and_seeds_change_outcomes(self):
        fingerprints = {
            result_fingerprint(_run(scheduler=s, quantum=150, seed=seed))
            for s in ("rr", "cfs") for seed in (0, 1)}
        assert len(fingerprints) >= 2

    def test_mid_speculation_preemption_aborts_elision(self):
        result = _run(scheduler="rr", quantum=150, threads_per_cpu=2)
        assert result.stats.extra["sched.context_switch_aborts"] > 0
        assert result.stats.reason_totals().get("deschedule", 0) > 0

    def test_migration_off_pins_home_slots(self):
        result = _run(scheduler="rr", quantum=150, migrate=False)
        assert "sched.migrations" not in result.stats.extra

    def test_migration_on_moves_threads_and_counts(self):
        result = _run(scheduler="cfs", quantum=150, migrate=True)
        assert result.stats.extra.get("sched.migrations", 0) > 0

    def test_obs_sees_preemptions_and_attribution(self):
        result = _run(scheduler="rr", quantum=200, threads_per_cpu=2)
        counters = result.metrics["counters"]
        assert counters["sched.preemptions"] == \
            result.stats.extra["sched.preemptions"]
        gauges = result.metrics["gauges"]
        assert gauges["sched.slots"]["value"] == 2
        for thread in range(4):
            oncpu = gauges[f"sched.thread.t{thread}.oncpu"]["value"]
            offcpu = gauges[f"sched.thread.t{thread}.offcpu"]["value"]
            assert oncpu > 0 and offcpu >= 0
            finish = result.stats.cpu(thread).finish_time
            assert oncpu + offcpu == finish

    def test_scheduler_off_run_carries_no_sched_telemetry(self):
        cfg = SystemConfig(num_cpus=4).with_scheme(SyncScheme.TLR)
        spec = RunSpec(workload="single-counter", config=cfg,
                       workload_args={"total_increments": 96})
        result = execute_workload(spec.build_workload(), cfg)
        assert not any(k.startswith("sched.")
                       for k in result.stats.extra)
        assert not any(k.startswith("sched.")
                       for k in result.metrics["counters"])
        assert not any(k.startswith("sched.")
                       for k in result.metrics["gauges"])

    def test_snapshot_shape(self):
        from repro.harness.machine import Machine
        from repro.workloads.microbench import single_counter
        cfg = replace(
            SystemConfig(num_cpus=2).with_scheme(SyncScheme.TLR),
            sched=SchedConfig(scheduler="rr", quantum=100,
                              threads_per_cpu=2))
        machine = Machine(cfg)
        machine.run_workload(single_counter(2, 32))
        snap = machine.sched_engine.snapshot()
        assert snap["slots"] == 1
        assert set(snap["oncpu"]) == {0, 1}
        assert snap["preemptions"] >= snap["context_switch_aborts"]
