"""Tests for the extension features: NACK retention, untimestamped
policies, the tracer, and the guaranteed-footprint contract."""

from dataclasses import replace

import pytest

from repro.harness.config import SyncScheme, SpeculationConfig, SystemConfig
from repro.harness.machine import Machine
from repro.harness.runner import run
from repro.runtime.program import Workload
from repro.sim.trace import Tracer
from repro.workloads.common import AddressSpace
from repro.workloads.microbench import linked_list, single_counter

from tests.conftest import small_config


def _with_spec(cfg: SystemConfig, **spec_overrides) -> SystemConfig:
    cfg.spec = replace(cfg.spec, **spec_overrides)
    return cfg


class TestRetentionPolicies:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SpeculationConfig(retention_policy="bogus")
        with pytest.raises(ValueError):
            SpeculationConfig(untimestamped_policy="bogus")

    @pytest.mark.parametrize("policy", ["defer", "nack"])
    def test_both_policies_serialize_correctly(self, policy):
        cfg = _with_spec(small_config(4, SyncScheme.TLR),
                         retention_policy=policy)
        result = run(single_counter(4, 256), cfg)
        assert result.cycles > 0

    def test_nack_policy_sends_nacks_under_conflict(self):
        cfg = _with_spec(small_config(4, SyncScheme.TLR),
                         retention_policy="nack")
        result = run(linked_list(4, 256), cfg)
        assert result.stats.total("nacks_sent") > 0
        assert result.stats.total("nacks_received") > 0

    def test_defer_policy_never_nacks(self):
        cfg = small_config(4, SyncScheme.TLR)
        result = run(linked_list(4, 256), cfg)
        assert result.stats.total("nacks_sent") == 0

    def test_nack_earliest_timestamp_never_refused(self):
        """The NACK decision respects priority: the oldest transaction is
        never told to retry, so progress is preserved (no run-away retry
        loops -- the run completing within the cycle cap is the check)."""
        cfg = _with_spec(small_config(6, SyncScheme.TLR),
                         retention_policy="nack")
        result = run(single_counter(6, 384), cfg)
        assert result.cycles > 0


class TestUntimestampedPolicy:
    def _racy_workload(self):
        """A transaction updating a word while another thread reads it
        without any lock (a benign data race)."""
        space = AddressSpace()
        lock, word = space.alloc_word(), space.alloc_word()
        seen = []

        def locked_writer(env):
            def body(env):
                value = yield env.read(word, pc="w.ld")
                yield env.compute(400)
                yield env.write(word, value + 1, pc="w.st")

            for _ in range(8):
                yield from env.critical(lock, body, pc="w")
                yield env.compute(env.fair_delay())

        def racy_reader(env):
            for _ in range(20):
                seen.append((yield env.read(word, pc="r.ld")))
                yield env.compute(150)

        def validate(store):
            assert store.read(word) == 8
            assert seen == sorted(seen), "racy reads went backwards"

        return Workload(name="racy", threads=[locked_writer, racy_reader],
                        validate=validate, meta={"space": space})

    @pytest.mark.parametrize("policy", ["defer", "abort"])
    def test_racy_reads_are_monotone_under_both_policies(self, policy):
        cfg = _with_spec(small_config(2, SyncScheme.TLR),
                         untimestamped_policy=policy)
        machine = Machine(cfg)
        machine.run_workload(self._racy_workload())

    def test_abort_policy_costs_restarts(self):
        def restarts(policy):
            cfg = _with_spec(small_config(2, SyncScheme.TLR),
                             untimestamped_policy=policy)
            machine = Machine(cfg)
            machine.run_workload(self._racy_workload())
            return machine.stats.restarts

        assert restarts("abort") >= restarts("defer")


class TestTracer:
    def test_records_transaction_lifecycle(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        counts = tracer.counts()
        assert counts.get("txn-begin", 0) > 0
        assert counts.get("txn-commit", 0) > 0
        assert counts.get("data", 0) > 0

    def test_filtering(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        only_cpu0 = tracer.filter(cpu=0)
        assert only_cpu0 and all(e.cpu == 0 for e in only_cpu0)
        commits = tracer.filter(kinds=["txn-commit"])
        assert all(e.kind == "txn-commit" for e in commits)
        windowed = tracer.filter(since=100, until=200)
        assert all(100 <= e.time <= 200 for e in windowed)

    def test_capacity_bound(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer(capacity=10).attach(machine)
        machine.run_workload(single_counter(2, 64))
        assert len(tracer.events) == 10
        assert tracer.dropped > 0
        assert "dropped" in tracer.render()

    def test_render_is_readable(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 32))
        text = tracer.render(kinds=["txn-commit"])
        assert "txn-commit" in text

    def test_chrome_trace_export(self, tmp_path):
        import json as jsonlib

        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        path = tmp_path / "trace.json"
        written = tracer.to_chrome_trace(path)
        assert written == len(tracer.events)
        payload = jsonlib.loads(path.read_text())
        events = payload["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == written
        assert all(e["s"] == "t" for e in instants)
        # One thread-name metadata record per cpu that traced anything.
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {
            f"cpu{e.cpu}" for e in tracer.events}
        commit = next(e for e in instants if e["name"] == "txn-commit")
        assert isinstance(commit["ts"], int) and commit["tid"] in (0, 1)

    def test_chrome_trace_export_respects_filters(self, tmp_path):
        import json as jsonlib

        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        path = tmp_path / "commits.json"
        written = tracer.to_chrome_trace(path, kinds=["txn-commit"])
        payload = jsonlib.loads(path.read_text())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert written == len(instants) > 0
        assert all(e["name"] == "txn-commit" for e in instants)


class TestMachineDump:
    def test_dump_state_is_nondestructive(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        machine.run_workload(single_counter(2, 64))
        before = len(machine.controllers[0].deferred)
        text = machine.dump_state()
        assert "cpu0" in text and "cpu1" in text
        assert len(machine.controllers[0].deferred) == before
