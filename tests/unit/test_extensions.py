"""Tests for the extension features: NACK retention, untimestamped
policies, the tracer, and the guaranteed-footprint contract."""

from dataclasses import replace

import pytest

from repro.harness.config import SyncScheme, SpeculationConfig, SystemConfig
from repro.harness.machine import Machine
from repro.harness.parallel import run
from repro.runtime.program import Workload
from repro.sim.trace import Tracer
from repro.workloads.common import AddressSpace
from repro.workloads.microbench import linked_list, single_counter

from tests.conftest import small_config


def _with_spec(cfg: SystemConfig, **spec_overrides) -> SystemConfig:
    cfg.spec = replace(cfg.spec, **spec_overrides)
    return cfg


class TestRetentionPolicies:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SpeculationConfig(retention_policy="bogus")
        with pytest.raises(ValueError):
            SpeculationConfig(untimestamped_policy="bogus")

    @pytest.mark.parametrize("policy", ["defer", "nack"])
    def test_both_policies_serialize_correctly(self, policy):
        cfg = _with_spec(small_config(4, SyncScheme.TLR),
                         retention_policy=policy)
        result = run(single_counter(4, 256), cfg)
        assert result.cycles > 0

    def test_nack_policy_sends_nacks_under_conflict(self):
        cfg = _with_spec(small_config(4, SyncScheme.TLR),
                         retention_policy="nack")
        result = run(linked_list(4, 256), cfg)
        assert result.stats.total("nacks_sent") > 0
        assert result.stats.total("nacks_received") > 0

    def test_defer_policy_never_nacks(self):
        cfg = small_config(4, SyncScheme.TLR)
        result = run(linked_list(4, 256), cfg)
        assert result.stats.total("nacks_sent") == 0

    def test_nack_earliest_timestamp_never_refused(self):
        """The NACK decision respects priority: the oldest transaction is
        never told to retry, so progress is preserved (no run-away retry
        loops -- the run completing within the cycle cap is the check)."""
        cfg = _with_spec(small_config(6, SyncScheme.TLR),
                         retention_policy="nack")
        result = run(single_counter(6, 384), cfg)
        assert result.cycles > 0


class TestUntimestampedPolicy:
    def _racy_workload(self):
        """A transaction updating a word while another thread reads it
        without any lock (a benign data race)."""
        space = AddressSpace()
        lock, word = space.alloc_word(), space.alloc_word()
        seen = []

        def locked_writer(env):
            def body(env):
                value = yield env.read(word, pc="w.ld")
                yield env.compute(400)
                yield env.write(word, value + 1, pc="w.st")

            for _ in range(8):
                yield from env.critical(lock, body, pc="w")
                yield env.compute(env.fair_delay())

        def racy_reader(env):
            for _ in range(20):
                seen.append((yield env.read(word, pc="r.ld")))
                yield env.compute(150)

        def validate(store):
            assert store.read(word) == 8
            assert seen == sorted(seen), "racy reads went backwards"

        return Workload(name="racy", threads=[locked_writer, racy_reader],
                        validate=validate, meta={"space": space})

    @pytest.mark.parametrize("policy", ["defer", "abort"])
    def test_racy_reads_are_monotone_under_both_policies(self, policy):
        cfg = _with_spec(small_config(2, SyncScheme.TLR),
                         untimestamped_policy=policy)
        machine = Machine(cfg)
        machine.run_workload(self._racy_workload())

    def test_abort_policy_costs_restarts(self):
        def restarts(policy):
            cfg = _with_spec(small_config(2, SyncScheme.TLR),
                             untimestamped_policy=policy)
            machine = Machine(cfg)
            machine.run_workload(self._racy_workload())
            return machine.stats.restarts

        assert restarts("abort") >= restarts("defer")


class TestTracer:
    def test_records_transaction_lifecycle(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        counts = tracer.counts()
        assert counts.get("txn-begin", 0) > 0
        assert counts.get("txn-commit", 0) > 0
        assert counts.get("data", 0) > 0

    def test_filtering(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        only_cpu0 = tracer.filter(cpu=0)
        assert only_cpu0 and all(e.cpu == 0 for e in only_cpu0)
        commits = tracer.filter(kinds=["txn-commit"])
        assert all(e.kind == "txn-commit" for e in commits)
        windowed = tracer.filter(since=100, until=200)
        assert all(100 <= e.time <= 200 for e in windowed)

    def test_capacity_bound(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer(capacity=10).attach(machine)
        machine.run_workload(single_counter(2, 64))
        assert len(tracer.events) == 10
        assert tracer.dropped > 0
        assert "dropped" in tracer.render()

    def test_render_is_readable(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 32))
        text = tracer.render(kinds=["txn-commit"])
        assert "txn-commit" in text

    def test_chrome_trace_export(self, tmp_path):
        import json as jsonlib

        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        path = tmp_path / "trace.json"
        written = tracer.to_chrome_trace(path)
        assert written == len(tracer.events)
        payload = jsonlib.loads(path.read_text())
        events = payload["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == written
        assert all(e["s"] == "t" for e in instants)
        # One thread-name metadata record per cpu that traced anything.
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {
            f"cpu{e.cpu}" for e in tracer.events}
        commit = next(e for e in instants if e["name"] == "txn-commit")
        assert isinstance(commit["ts"], int) and commit["tid"] in (0, 1)

    def test_chrome_trace_export_respects_filters(self, tmp_path):
        import json as jsonlib

        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))
        path = tmp_path / "commits.json"
        written = tracer.to_chrome_trace(path, kinds=["txn-commit"])
        payload = jsonlib.loads(path.read_text())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert written == len(instants) > 0
        assert all(e["name"] == "txn-commit" for e in instants)


class TestMachineDump:
    def test_dump_state_is_nondestructive(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        machine.run_workload(single_counter(2, 64))
        before = len(machine.controllers[0].deferred)
        text = machine.dump_state()
        assert "cpu0" in text and "cpu1" in text
        assert len(machine.controllers[0].deferred) == before


class TestTracerSpans:
    def _traced_run(self, ops: int = 64):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer().attach(machine)
        machine.run_workload(single_counter(2, ops))
        return machine, tracer

    def test_txn_spans_pair_begin_with_outcome(self):
        machine, tracer = self._traced_run()
        txn = tracer.filter_spans(kinds=["txn"])
        assert txn, "no transaction spans recorded"
        assert all(s.end >= s.begin for s in txn)
        outcomes = {s.detail for s in txn}
        # Aborted windows carry their restart reason ("abort:capacity",
        # "loss:invalidated"); committed ones stay bare.
        assert all(o == "commit" or o.split(":", 1)[0] in ("abort", "loss")
                   for o in outcomes), outcomes
        commits = sum(1 for s in txn if s.detail == "commit")
        assert commits == machine.stats.total("elisions_committed")

    def test_defer_and_request_spans(self):
        _, tracer = self._traced_run()
        defer = tracer.filter_spans(kinds=["defer"])
        assert defer and all(s.duration > 0 for s in defer)
        requests = tracer.filter_spans(kinds=["request"])
        assert requests and all(s.end >= s.begin for s in requests)

    def test_span_window_filter_matches_overlap(self):
        _, tracer = self._traced_run()
        span = tracer.spans[len(tracer.spans) // 2]
        mid = (span.begin + span.end) // 2
        window = tracer.filter_spans(since=mid, until=mid)
        assert span in window

    def test_chrome_export_emits_async_span_pairs(self, tmp_path):
        import json as jsonlib

        _, tracer = self._traced_run()
        path = tmp_path / "spans.json"
        written = tracer.to_chrome_trace(path)
        events = jsonlib.loads(path.read_text())["traceEvents"]
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends) == len(tracer.spans) > 0
        # Return value counts instants only (the pre-span contract).
        assert written == len([e for e in events if e["ph"] == "i"])
        by_id = {e["id"]: e for e in begins}
        for end in ends:
            begin = by_id[end["id"]]
            assert begin["ts"] <= end["ts"]
            assert begin["pid"] == end["pid"] == 0
            assert begin["tid"] == end["tid"]
            assert begin["cat"] == end["cat"] in {"txn", "defer",
                                                  "request"}

    def test_chrome_export_filter_kwargs_apply_to_spans(self, tmp_path):
        import json as jsonlib

        _, tracer = self._traced_run()
        path = tmp_path / "cpu0.json"
        tracer.to_chrome_trace(path, cpu=0)
        events = jsonlib.loads(path.read_text())["traceEvents"]
        rows = [e for e in events if e["ph"] in ("i", "b", "e")]
        assert rows and all(e["tid"] == 0 for e in rows)

    def test_spans_survive_instant_capacity(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        full = Tracer().attach(machine)
        machine.run_workload(single_counter(2, 64))

        machine2 = Machine(small_config(2, SyncScheme.TLR))
        tiny = Tracer(capacity=5).attach(machine2)
        machine2.run_workload(single_counter(2, 64))
        assert len(tiny.spans) == len(full.spans) > 0


class TestTracerRingMode:
    def test_ring_keeps_newest_events(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer(capacity=10, ring=True).attach(machine)
        machine.run_workload(single_counter(2, 64))
        assert len(tracer.events) == 10
        assert tracer.dropped > 0
        # The ring holds the *end* of the run, not its start.
        assert min(e.time for e in tracer.events) > machine.sim.now // 2
        assert "ring" in tracer.render()

    def test_drop_accounting_per_kind(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer(capacity=10, ring=True).attach(machine)
        machine.run_workload(single_counter(2, 64))
        dropped = tracer.counts(dropped=True)
        assert sum(dropped.values()) == tracer.dropped > 0

    def test_default_mode_drops_newest(self):
        cfg = small_config(2, SyncScheme.TLR)
        machine = Machine(cfg)
        tracer = Tracer(capacity=10).attach(machine)
        machine.run_workload(single_counter(2, 64))
        dropped = tracer.counts(dropped=True)
        assert sum(dropped.values()) == tracer.dropped > 0
        # Default mode keeps the *start* of the run (ring keeps the end).
        assert max(e.time for e in tracer.events) < machine.sim.now // 2


class TestLineOfArgs:
    def test_message_line_attribute_wins(self):
        from repro.sim.trace import _line_of_args

        class Msg:
            line = 0x80
        assert _line_of_args((Msg(),)) == 0x80

    def test_bare_int_only_from_known_positions(self):
        from repro.sim.trace import _line_of_args

        # _handle_loss(reason, line, ts) / _on_misspeculation(reason,
        # line) carry the line at position 1.
        assert _line_of_args(("probe-lost", 0x40, (3, 1)),
                             kind="loss") == 0x40
        assert _line_of_args(("invalidated", 0x40),
                             kind="misspec") == 0x40
        # An int in an unknown hook must not be misread as a line.
        assert _line_of_args((7,), kind="nack") is None
        assert _line_of_args((7,)) is None
        assert _line_of_args(("reason",), kind="loss") is None

    def test_non_int_line_attribute_ignored(self):
        from repro.sim.trace import _line_of_args

        class Odd:
            line = "not-a-line"
        assert _line_of_args((Odd(),)) is None
