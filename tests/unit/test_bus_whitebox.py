"""White-box protocol tests: the bus's order-point semantics exercised
with scripted stub controllers (no processors involved), plus the data
network's bandwidth model."""

from repro.coherence.bus import Bus
from repro.coherence.datanet import DataNetwork
from repro.coherence.memory import MemoryController
from repro.coherence.messages import MEMORY, BusRequest, ReqKind
from repro.coherence.states import State
from repro.harness.config import BusConfig, MemoryConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import SimStats


class StubController:
    """Records everything the bus tells it; never defers or NACKs."""

    def __init__(self, cpu_id: int, bus: Bus):
        self.cpu_id = cpu_id
        self.bus = bus
        self.ordered: list[tuple[BusRequest, State]] = []
        self.forwards: list[BusRequest] = []
        self.invalidations: list[BusRequest] = []
        self.upgrades: list[BusRequest] = []
        self.data: list[BusRequest] = []
        self.writebacks: list[BusRequest] = []
        bus.attach(self)

    # Bus-facing protocol surface.
    def request_ordered(self, request, grant):
        self.ordered.append((request, grant))

    def handle_forward(self, request):
        self.forwards.append(request)
        # Immediately supply, like a non-speculating cache.
        self.bus.deliver_data(request, self.cpu_id)

    def handle_invalidation(self, request):
        self.invalidations.append(request)

    def upgrade_granted(self, request):
        self.upgrades.append(request)
        self.bus.complete(request)

    def writeback_ordered(self, request):
        self.writebacks.append(request)
        self.bus.complete(request)

    def handle_data(self, request):
        self.data.append(request)
        self.bus.complete(request)

    def would_nack(self, request):
        return False


def make_bus(num_cpus=3, **bus_overrides):
    sim = Simulator(max_cycles=1_000_000)
    stats = SimStats()
    config = BusConfig(**bus_overrides)
    bus = Bus(sim, config, stats)
    memcfg = MemoryConfig()
    memory = MemoryController(sim, memcfg, stats)
    bus.memory = memory
    net = DataNetwork(sim, memcfg, stats)
    bus.deliver_data = lambda req, frm: net.send(
        bus.controllers[req.requester].handle_data, req)
    stubs = [StubController(i, bus) for i in range(num_cpus)]
    return sim, bus, stubs


class TestOrderPoint:
    def test_cold_gets_granted_exclusive_from_memory(self):
        sim, bus, stubs = make_bus()
        req = BusRequest(ReqKind.GETS, line=5, requester=0)
        bus.issue(req)
        sim.run()
        assert stubs[0].ordered[0][1] is State.EXCLUSIVE
        assert stubs[0].data == [req]
        assert bus.directory.owner(5) == 0

    def test_second_gets_forwarded_to_owner(self):
        sim, bus, stubs = make_bus()
        first = BusRequest(ReqKind.GETS, line=5, requester=0)
        bus.issue(first)
        sim.run()
        second = BusRequest(ReqKind.GETS, line=5, requester=1)
        bus.issue(second)
        sim.run()
        assert stubs[0].forwards == [second]
        assert stubs[1].ordered[0][1] is State.SHARED
        assert bus.directory.sharers(5) == {0, 1}

    def test_getx_invalidates_sharers_and_takes_ownership(self):
        sim, bus, stubs = make_bus()
        for cpu in (0, 1):
            bus.issue(BusRequest(ReqKind.GETS, line=5, requester=cpu))
            sim.run()
        writer = BusRequest(ReqKind.GETX, line=5, requester=2)
        bus.issue(writer)
        sim.run()
        assert stubs[1].invalidations == [writer]
        assert writer in stubs[0].forwards  # owner supplies + invalidates
        assert bus.directory.owner(5) == 2
        assert bus.directory.sharers(5) == {2}

    def test_upgrade_completes_without_data_when_owner_is_memory(self):
        sim, bus, stubs = make_bus()
        bus.issue(BusRequest(ReqKind.GETS, line=5, requester=0))
        sim.run()
        bus.issue(BusRequest(ReqKind.GETS, line=5, requester=1))
        sim.run()
        # cpu1 is a plain sharer (memory... actually cpu0 owns E). Use
        # cpu0, the owner, upgrading its own line.
        upgrade = BusRequest(ReqKind.UPG, line=5, requester=0)
        bus.issue(upgrade)
        sim.run()
        assert stubs[0].upgrades == [upgrade]
        assert stubs[1].invalidations[-1] is upgrade
        assert bus.directory.sharers(5) == {0}

    def test_upgrade_converts_to_getx_after_losing_copy(self):
        sim, bus, stubs = make_bus()
        bus.issue(BusRequest(ReqKind.GETS, line=5, requester=0))
        sim.run()
        bus.issue(BusRequest(ReqKind.GETS, line=5, requester=1))
        sim.run()
        # cpu2 steals the line before cpu1's upgrade reaches its order
        # point; issue both without draining in between.
        thief = BusRequest(ReqKind.GETX, line=5, requester=2)
        upgrade = BusRequest(ReqKind.UPG, line=5, requester=1)
        bus.issue(thief)
        bus.issue(upgrade)
        sim.run()
        assert upgrade.kind is ReqKind.GETX  # converted at order time
        assert stubs[1].data and stubs[1].data[-1] is upgrade
        assert bus.directory.owner(5) == 1

    def test_writeback_returns_line_to_memory(self):
        sim, bus, stubs = make_bus()
        bus.issue(BusRequest(ReqKind.GETX, line=5, requester=0))
        sim.run()
        wb = BusRequest(ReqKind.WB, line=5, requester=0)
        bus.issue(wb)
        sim.run()
        assert stubs[0].writebacks == [wb]
        assert bus.directory.owner(5) == MEMORY

    def test_stale_writeback_is_harmless(self):
        sim, bus, stubs = make_bus()
        bus.issue(BusRequest(ReqKind.GETX, line=5, requester=0))
        sim.run()
        # Ownership moves to cpu1, then cpu0's stale WB orders.
        bus.issue(BusRequest(ReqKind.GETX, line=5, requester=1))
        bus.issue(BusRequest(ReqKind.WB, line=5, requester=0))
        sim.run()
        assert bus.directory.owner(5) == 1

    def test_cancelled_request_never_orders(self):
        sim, bus, stubs = make_bus()
        req = BusRequest(ReqKind.WB, line=5, requester=0)
        bus.issue(req)
        bus.cancel(req)
        sim.run()
        assert stubs[0].writebacks == []
        assert req.order_time is None


class TestArbitration:
    def test_grants_are_occupancy_spaced(self):
        sim, bus, stubs = make_bus(occupancy=7)
        order_times = []
        for cpu in range(3):
            bus.issue(BusRequest(ReqKind.GETS, line=10 + cpu,
                                 requester=cpu))
        sim.run()
        for stub in stubs:
            order_times.extend(req.order_time for req, _ in stub.ordered)
        order_times.sort()
        gaps = [b - a for a, b in zip(order_times, order_times[1:])]
        assert all(gap >= 7 for gap in gaps)

    def test_outstanding_cap_blocks_grants(self):
        sim, bus, stubs = make_bus(max_outstanding=1)
        a = BusRequest(ReqKind.GETS, line=1, requester=0)
        b = BusRequest(ReqKind.GETS, line=2, requester=1)
        bus.issue(a)
        bus.issue(b)
        sim.run()
        # Both complete eventually, but b could only order after a's
        # data came home (completion released the slot).
        assert b.order_time > a.order_time
        assert stubs[0].data and stubs[1].data


class TestDataNetworkBandwidth:
    def test_unlimited_network_delivers_in_parallel(self):
        sim = Simulator()
        stats = SimStats()
        net = DataNetwork(sim, MemoryConfig(data_latency=10), stats)
        arrivals = []
        for _ in range(4):
            net.send(lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [10, 10, 10, 10]

    def test_bandwidth_interval_serializes_deliveries(self):
        sim = Simulator()
        stats = SimStats()
        net = DataNetwork(sim, MemoryConfig(
            data_latency=10, data_bandwidth_interval=5), stats)
        arrivals = []
        for _ in range(4):
            net.send(lambda: arrivals.append(sim.now))
        sim.run()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap >= 5 for gap in gaps)
        assert arrivals[0] == 10
