"""Speculation-layer behaviour: elision, atomic commit, failure
atomicity, fallbacks, and the TLR deferral path -- observed through
small machines."""

import pytest

from repro.cpu import isa
from repro.harness.config import SyncScheme
from repro.sync.locks import FREE, HELD

from tests.conftest import run_threads, small_config
from repro.workloads.common import AddressSpace


def counter_thread(lock, counter, iters, work=10):
    def thread(env):
        def body(env):
            value = yield env.read(counter, pc="t.ld")
            yield env.compute(work)
            yield env.write(counter, value + 1, pc="t.st")

        for _ in range(iters):
            yield from env.critical(lock, body, pc="t")
            yield env.compute(env.fair_delay())

    return thread


class TestElision:
    def test_lock_never_written_under_elision(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        machine = run_threads([counter_thread(lock, counter, 4)],
                              small_config(1, SyncScheme.TLR), space=space)
        assert machine.store.read(lock) == FREE
        assert machine.store.read(counter) == 4
        assert machine.stats.cpu(0).elisions_committed == 4

    def test_base_actually_acquires_the_lock(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        writes_seen = []

        def spying_thread(env):
            def body(env):
                value = yield env.read(counter, pc="t.ld")
                writes_seen.append(env.processor.store.read(lock))
                yield env.write(counter, value + 1, pc="t.st")

            yield from env.critical(lock, body, pc="t")

        machine = run_threads([spying_thread],
                              small_config(1, SyncScheme.BASE), space=space)
        assert writes_seen == [HELD]       # lock held inside the section
        assert machine.store.read(lock) == FREE  # and released after
        assert machine.stats.cpu(0).elisions_committed == 0

    def test_elision_count_matches_critical_sections(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        machine = run_threads(
            [counter_thread(lock, counter, 6), counter_thread(lock, counter, 6)],
            small_config(2, SyncScheme.TLR), space=space)
        assert machine.store.read(counter) == 12
        total_elided = sum(machine.stats.cpu(i).elisions_committed
                           for i in range(2))
        assert total_elided == 12


class TestAtomicCommit:
    def test_speculative_writes_invisible_before_commit(self):
        space = AddressSpace()
        lock = space.alloc_word()
        data = space.alloc_word()
        observed = []

        def writer(env):
            def body(env):
                yield env.write(data, 42, pc="w.st")
                yield env.compute(1500)   # long window before commit
            yield from env.critical(lock, body, pc="w")

        def observer(env):
            yield env.compute(700)        # inside the writer's window
            observed.append((yield env.read(data, pc="o.ld")))
            yield env.compute(3000)
            observed.append((yield env.read(data, pc="o.ld")))

        run_threads([writer, observer],
                    small_config(2, SyncScheme.TLR), space=space)
        # Mid-transaction the observer must not see 42 (it reads 0 or is
        # deferred past commit and sees 42 only at/after commit time).
        assert observed[1] == 42

    def test_multi_line_commit_is_all_or_nothing(self):
        space = AddressSpace()
        lock = space.alloc_word()
        words = [space.alloc_word() for _ in range(4)]

        def writer(env):
            def body(env):
                for i, w in enumerate(words):
                    yield env.write(w, i + 1, pc=f"w{i}")
            for _ in range(3):
                yield from env.critical(lock, body, pc="w")
                yield env.compute(env.fair_delay())

        machine = run_threads([writer], small_config(1, SyncScheme.TLR),
                              space=space)
        assert [machine.store.read(w) for w in words] == [1, 2, 3, 4]


class TestFailureAtomicity:
    def test_write_buffer_overflow_falls_back_to_lock(self):
        space = AddressSpace()
        lock = space.alloc_word()
        cfg = small_config(1, SyncScheme.TLR)
        cfg.spec.write_buffer_entries = 4
        lines = space.alloc_lines(8)  # twice the write buffer

        def big_writer(env):
            def body(env):
                for i, addr in enumerate(lines):
                    yield env.write(addr, i + 1, pc=f"b{i}")
            yield from env.critical(lock, body, pc="b")

        machine = run_threads([big_writer], cfg, space=space)
        stats = machine.stats.cpu(0)
        assert stats.resource_fallbacks >= 1
        assert stats.lock_fallbacks >= 1
        # The section still completed correctly via real acquisition.
        assert [machine.store.read(a) for a in lines] == list(range(1, 9))
        assert machine.store.read(lock) == FREE

    def test_non_silent_store_to_lock_aborts_elision(self):
        space = AddressSpace()
        lock = space.alloc_word()
        marker = space.alloc_word()

        def weird(env):
            # The body writes a *different* value to its own lock,
            # breaking the silent-pair assumption: the elision must be
            # abandoned and the retry must take the lock for real.
            def body(env):
                yield env.write(marker, 1, pc="w.data")
                yield env.write(lock, 2, pc="w.bad", lock=True)
                yield env.write(lock, HELD, pc="w.fix", lock=True)

            yield from env.critical(lock, body, pc="w")

        machine = run_threads([weird], small_config(1, SyncScheme.TLR),
                              space=space)
        assert machine.store.read(lock) == FREE
        assert machine.store.read(marker) == 1
        assert machine.stats.cpu(0).resource_fallbacks >= 1
        assert machine.stats.cpu(0).elisions_committed == 0


class TestTlrDeferral:
    def test_contended_counter_defers_instead_of_restarting(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        machine = run_threads(
            [counter_thread(lock, counter, 16) for _ in range(4)],
            small_config(4, SyncScheme.TLR), space=space)
        assert machine.store.read(counter) == 64
        summary = machine.stats.summary()
        assert summary["requests_deferred"] > 0
        # With the single-block relaxation, restarts stay far below the
        # conflict count.
        assert summary["restarts"] < 16

    def test_strict_ts_restarts_more(self):
        space_a, space_b = AddressSpace(), AddressSpace()
        results = {}
        for scheme, sp in ((SyncScheme.TLR, space_a),
                           (SyncScheme.TLR_STRICT_TS, space_b)):
            lock, counter = sp.alloc_word(), sp.alloc_word()
            machine = run_threads(
                [counter_thread(lock, counter, 16) for _ in range(4)],
                small_config(4, scheme), space=sp)
            assert machine.store.read(counter) == 64
            results[scheme] = machine.stats.summary()["restarts"]
        assert results[SyncScheme.TLR_STRICT_TS] >= results[SyncScheme.TLR]

    def test_sle_falls_back_under_conflicts(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        machine = run_threads(
            [counter_thread(lock, counter, 16) for _ in range(4)],
            small_config(4, SyncScheme.SLE), space=space)
        assert machine.store.read(counter) == 64
        assert machine.stats.total("lock_fallbacks") > 0

    def test_mcs_never_speculates(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        machine = run_threads(
            [counter_thread(lock, counter, 8) for _ in range(2)],
            small_config(2, SyncScheme.MCS), space=space)
        assert machine.store.read(counter) == 16
        assert machine.stats.total("elisions_started") == 0


class TestRmwPredictorEffect:
    def test_predictor_eliminates_upgrades(self):
        # Two processors keep the counter line shared, so an untrained
        # load fetches it shared and the following store must upgrade;
        # the predictor learns to fetch exclusive and the upgrades go.
        def measure(enabled: bool) -> int:
            space = AddressSpace()
            lock, counter = space.alloc_word(), space.alloc_word()
            cfg = small_config(2, SyncScheme.BASE)
            cfg.spec.rmw_predictor_enabled = enabled
            machine = run_threads(
                [counter_thread(lock, counter, 20) for _ in range(2)],
                cfg, space=space)
            return sum(machine.stats.cpu(i).upgrades for i in range(2))

        assert measure(False) > measure(True)


class TestNestedLocks:
    def test_nested_elision_commits_at_outermost_release(self):
        space = AddressSpace()
        outer, inner = space.alloc_word(), space.alloc_word()
        data = space.alloc_word()

        def nested(env):
            def inner_body(env):
                value = yield env.read(data, pc="n.ld")
                yield env.write(data, value + 1, pc="n.st")

            def outer_body(env):
                yield from env.critical(inner, inner_body, pc="n.inner")

            for _ in range(3):
                yield from env.critical(outer, outer_body, pc="n.outer")
                yield env.compute(env.fair_delay())

        machine = run_threads([nested], small_config(1, SyncScheme.TLR),
                              space=space)
        assert machine.store.read(data) == 3
        assert machine.store.read(outer) == FREE
        assert machine.store.read(inner) == FREE

    def test_nesting_beyond_depth_treats_inner_lock_as_data(self):
        space = AddressSpace()
        locks = [space.alloc_word() for _ in range(4)]
        data = space.alloc_word()
        cfg = small_config(1, SyncScheme.TLR)
        cfg.spec.elision_depth = 2

        def deeply_nested(env):
            def level(depth):
                def body(env):
                    if depth < len(locks):
                        yield from env.critical(locks[depth], level(depth + 1),
                                                pc=f"n{depth}")
                    else:
                        value = yield env.read(data, pc="n.ld")
                        yield env.write(data, value + 1, pc="n.st")
                return body

            yield from env.critical(locks[0], level(1), pc="n0")

        machine = run_threads([deeply_nested], cfg, space=space)
        assert machine.store.read(data) == 1
        for lock in locks:
            assert machine.store.read(lock) == FREE
