"""Unit tests for the harness layer: runner, machine wiring,
experiments entry points (at tiny scale)."""

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.experiments import (figure7_queue_on_data,
                                       figure8_multiple_counter,
                                       figure11_applications)
from repro.harness.machine import Machine
from repro.harness.parallel import run
from repro.harness.runner import RunResult, execute_workload
from repro.runtime.program import ValidationError, Workload
from repro.workloads.common import AddressSpace
from repro.workloads.microbench import single_counter


def _tiny(scheme=SyncScheme.TLR, num_cpus=2):
    return SystemConfig(num_cpus=num_cpus, scheme=scheme,
                        max_cycles=20_000_000)


class TestRunner:
    def test_run_returns_result(self):
        result = run(single_counter(2, 32), _tiny())
        assert isinstance(result, RunResult)
        assert result.workload_name == "single-counter"
        assert result.cycles == result.stats.total_cycles > 0

    def test_speedup_over(self):
        base = run(single_counter(2, 64), _tiny(SyncScheme.BASE))
        tlr = run(single_counter(2, 64), _tiny(SyncScheme.TLR))
        assert tlr.speedup_over(base) == pytest.approx(
            base.cycles / tlr.cycles)

    def test_execute_workload_honors_scheme(self):
        result = execute_workload(single_counter(2, 32),
                                  _tiny(SyncScheme.SLE))
        assert result.config.scheme is SyncScheme.SLE

    def test_execute_workload_per_scheme(self):
        results = {scheme: execute_workload(single_counter(2, 32),
                                            _tiny(scheme))
                   for scheme in (SyncScheme.BASE, SyncScheme.TLR)}
        assert set(results) == {SyncScheme.BASE, SyncScheme.TLR}
        assert all(r.cycles > 0 for r in results.values())

    def test_validation_failure_raises_validation_error(self):
        space = AddressSpace()
        word = space.alloc_word()

        def thread(env):
            yield env.write(word, 1)

        def bad_validator(store):
            assert store.read(word) == 999

        workload = Workload(name="bad", threads=[thread],
                            validate=bad_validator, meta={"space": space})
        with pytest.raises(ValidationError, match="bad"):
            run(workload, _tiny(num_cpus=1))

    def test_validate_false_skips_checker(self):
        space = AddressSpace()
        word = space.alloc_word()

        def thread(env):
            yield env.write(word, 1)

        workload = Workload(name="bad", threads=[thread],
                            validate=lambda store: (_ for _ in ()).throw(
                                AssertionError("nope")),
                            meta={"space": space})
        result = run(workload, _tiny(num_cpus=1), validate=False)
        assert result.cycles > 0


class TestMachine:
    def test_machine_builds_requested_cpus(self):
        machine = Machine(_tiny(num_cpus=3))
        assert len(machine.processors) == 3
        assert len(machine.controllers) == 3
        assert machine.bus.controllers.keys() == {0, 1, 2}

    def test_mcs_machine_allocates_qnodes_from_workload_space(self):
        machine = Machine(_tiny(SyncScheme.MCS, num_cpus=2))
        machine.run_workload(single_counter(2, 16))
        # MCS lock accesses are tagged lock accesses in stats.
        assert machine.stats.cpu(0).lock_stall_cycles >= 0

    def test_total_cycles_is_max_finish_time(self):
        machine = Machine(_tiny(num_cpus=2))
        stats = machine.run_workload(single_counter(2, 16))
        finishes = [stats.cpu(i).finish_time for i in range(2)]
        assert stats.total_cycles == max(finishes)


class TestExperimentEntryPoints:
    def test_figure8_tiny(self):
        result = figure8_multiple_counter(total_increments=32,
                                          processor_counts=(2,))
        assert result.processor_counts == [2]
        assert set(result.series) == {SyncScheme.BASE, SyncScheme.MCS,
                                      SyncScheme.SLE, SyncScheme.TLR}

    def test_figure7_tiny(self):
        result = figure7_queue_on_data(num_cpus=2, total_increments=16)
        assert result["critical_sections"] >= 16
        assert result["cycles"] > 0

    def test_figure11_single_app(self):
        results = figure11_applications(
            num_cpus=2, apps=["ocean-cont"],
            schemes=(SyncScheme.BASE, SyncScheme.TLR))
        assert set(results) == {"ocean-cont"}
        app = results["ocean-cont"]
        assert app.speedup(SyncScheme.BASE) == 1.0
        lock, nonlock = app.normalized_parts(SyncScheme.TLR)
        assert lock >= 0 and nonlock > 0
