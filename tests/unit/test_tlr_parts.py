"""Unit tests for TLR timestamps and the deferral machinery."""

import pytest

from repro.coherence.messages import BusRequest, ReqKind, beats
from repro.tlr.deferral import ChainState, DeferredQueue
from repro.tlr.timestamp import TimestampAuthority


class TestTimestampAuthority:
    def test_begin_is_stable_across_restarts(self):
        authority = TimestampAuthority(cpu_id=3)
        first = authority.begin()
        # A restart does not touch the authority; begin() re-returns it.
        assert authority.begin() == first
        assert authority.current() == first

    def test_commit_advances_monotonically(self):
        authority = TimestampAuthority(cpu_id=1)
        first = authority.begin()
        authority.commit()
        second = authority.begin()
        assert second > first
        assert second == (first[0] + 1, 1)

    def test_conflict_observation_synchronizes_clock(self):
        authority = TimestampAuthority(cpu_id=0)
        authority.begin()
        authority.observe_conflict((10, 5))
        authority.commit()
        assert authority.clock == 11

    def test_untimestamped_conflicts_ignored(self):
        authority = TimestampAuthority(cpu_id=0)
        authority.begin()
        authority.observe_conflict(None)
        authority.commit()
        assert authority.clock == 1

    def test_abandon_keeps_clock(self):
        authority = TimestampAuthority(cpu_id=0)
        authority.begin()
        authority.abandon()
        assert authority.clock == 0
        assert authority.current() is None

    def test_global_uniqueness_across_cpus(self):
        stamps = set()
        for cpu in range(4):
            authority = TimestampAuthority(cpu_id=cpu)
            for _ in range(3):
                stamps.add(authority.begin())
                authority.commit()
        assert len(stamps) == 12

    def test_eventual_earliest_property(self):
        """A processor that keeps losing (never commits) eventually has
        the earliest timestamp once everyone else's clock passes it."""
        loser = TimestampAuthority(cpu_id=9)
        loser_ts = loser.begin()
        winner = TimestampAuthority(cpu_id=0)
        for _ in range(3):
            winner.begin()
            winner.commit()
        assert beats(loser_ts, winner.begin())

    def test_modulus_rollover(self):
        authority = TimestampAuthority(cpu_id=0, modulus=4)
        for _ in range(6):
            authority.begin()
            authority.commit()
        assert authority.clock == 6 % 4


def _req(kind=ReqKind.GETX, line=1, requester=0, ts=None) -> BusRequest:
    return BusRequest(kind, line=line, requester=requester, ts=ts)


class TestDeferredQueue:
    def test_drain_preserves_arrival_order(self):
        queue = DeferredQueue()
        first = _req(line=1)
        second = _req(line=2)
        queue.push(first, now=10)
        queue.push(second, now=11)
        drained = queue.drain()
        assert [e.request for e in drained] == [first, second]
        assert not queue

    def test_double_exclusive_same_line_rejected(self):
        queue = DeferredQueue()
        queue.push(_req(kind=ReqKind.GETX, line=1), now=0)
        with pytest.raises(RuntimeError):
            queue.push(_req(kind=ReqKind.GETX, line=1), now=1)

    def test_multiple_gets_same_line_allowed(self):
        queue = DeferredQueue()
        queue.push(_req(kind=ReqKind.GETS, line=1), now=0)
        queue.push(_req(kind=ReqKind.GETS, line=1), now=1)
        assert len(queue) == 2

    def test_capacity_enforced(self):
        queue = DeferredQueue(capacity=1)
        queue.push(_req(line=1), now=0)
        with pytest.raises(RuntimeError):
            queue.push(_req(line=2), now=0)

    def test_lines_and_earliest_ts(self):
        queue = DeferredQueue()
        queue.push(_req(line=1, ts=(4, 0)), now=0)
        queue.push(_req(line=2, ts=(2, 3)), now=0)
        queue.push(_req(line=3, ts=None), now=0)
        assert queue.lines() == {1, 2, 3}
        assert queue.earliest_ts() == (2, 3)

    def test_earliest_ts_empty_or_untimestamped(self):
        queue = DeferredQueue()
        assert queue.earliest_ts() is None
        queue.push(_req(line=1, ts=None), now=0)
        assert queue.earliest_ts() is None


class TestChainState:
    def test_probe_waits_for_upstream(self):
        chain = ChainState()
        assert not chain.queue_probe((1, 0))
        flushed = chain.learn_upstream(7)
        assert flushed == [(1, 0)]
        assert chain.upstream == 7

    def test_probe_forwarded_once_upstream_known(self):
        chain = ChainState()
        chain.learn_upstream(7)
        assert chain.queue_probe((1, 0))

    def test_reprobes_allowed(self):
        """Watchdog re-probes must not be deduplicated (a probe can be
        lost in a restart window)."""
        chain = ChainState()
        chain.learn_upstream(7)
        assert chain.queue_probe((1, 0))
        assert chain.queue_probe((1, 0))
