"""Unit tests for coherence building blocks: states, messages, cache,
victim cache, MSHRs, value store."""

import pytest

from repro.coherence.cache import CacheArray, CapacityError, VictimCache
from repro.coherence.memory import ValueStore
from repro.coherence.messages import (MEMORY, BusRequest, ReqKind, beats)
from repro.coherence.mshr import MshrFile
from repro.coherence.states import Line, State
from repro.harness.config import CacheConfig


class TestStates:
    def test_owned_states(self):
        assert State.MODIFIED.owned
        assert State.OWNED.owned
        assert State.EXCLUSIVE.owned
        assert not State.SHARED.owned
        assert not State.INVALID.owned

    def test_writable_states(self):
        assert State.MODIFIED.writable
        assert State.EXCLUSIVE.writable
        assert not State.OWNED.writable
        assert not State.SHARED.writable

    def test_dirty_states(self):
        assert State.MODIFIED.dirty
        assert State.OWNED.dirty
        assert not State.EXCLUSIVE.dirty
        assert not State.SHARED.dirty

    def test_valid(self):
        assert all(s.valid for s in State if s is not State.INVALID)
        assert not State.INVALID.valid

    def test_line_clear_speculative(self):
        line = Line(addr=4, state=State.MODIFIED, accessed=True,
                    spec_written=True)
        line.clear_speculative()
        assert not line.accessed and not line.spec_written
        assert line.state is State.MODIFIED


class TestTimestampPriority:
    def test_earlier_clock_wins(self):
        assert beats((1, 5), (2, 0))
        assert not beats((2, 0), (1, 5))

    def test_cpu_id_breaks_ties(self):
        assert beats((3, 1), (3, 2))
        assert not beats((3, 2), (3, 1))

    def test_untimestamped_always_loses(self):
        assert not beats(None, (0, 0))
        assert beats((99, 99), None)
        assert not beats(None, None)


class TestBusRequest:
    def test_unique_ids(self):
        a = BusRequest(ReqKind.GETS, line=1, requester=0)
        b = BusRequest(ReqKind.GETS, line=1, requester=0)
        assert a.req_id != b.req_id

    def test_write_kinds(self):
        assert ReqKind.GETX.is_write and ReqKind.UPG.is_write
        assert not ReqKind.GETS.is_write and not ReqKind.WB.is_write


def make_cache(size=1024, assoc=2, victim=2) -> CacheArray:
    return CacheArray(CacheConfig(size_bytes=size, assoc=assoc,
                                  victim_entries=victim))


class TestCacheArray:
    def test_miss_then_install_then_hit(self):
        cache = make_cache()
        assert cache.lookup(5) is None
        line = cache.install(5, State.SHARED)
        assert cache.lookup(5) is line
        assert line.state is State.SHARED

    def test_install_revalidates_existing(self):
        cache = make_cache()
        cache.install(5, State.SHARED)
        line = cache.install(5, State.MODIFIED)
        assert line.state is State.MODIFIED
        assert cache.lookup(5).state is State.MODIFIED

    def test_set_conflict_evicts_lru_into_victim(self):
        cache = make_cache(size=1024, assoc=2, victim=4)
        num_sets = cache.config.num_sets
        addrs = [i * num_sets for i in range(3)]  # same set
        for addr in addrs:
            cache.install(addr, State.SHARED)
        # addrs[0] was LRU; it should now be in the victim cache.
        assert cache.victim.lookup(addrs[0]) is not None
        # Lookup promotes it back.
        assert cache.lookup(addrs[0]) is not None
        assert cache.victim.lookup(addrs[0]) is None

    def test_pinned_lines_not_evicted(self):
        cache = make_cache(size=1024, assoc=2, victim=0)
        num_sets = cache.config.num_sets
        a, b, c = (i * num_sets for i in range(3))
        cache.install(a, State.MODIFIED)
        cache.install(b, State.MODIFIED)
        cache.pin(a)
        cache.install(c, State.SHARED)
        assert cache.lookup(a) is not None  # pinned survived
        cache.unpin(a)

    def test_all_pinned_raises_capacity(self):
        cache = make_cache(size=1024, assoc=2, victim=0)
        num_sets = cache.config.num_sets
        a, b, c = (i * num_sets for i in range(3))
        cache.install(a, State.MODIFIED)
        cache.install(b, State.MODIFIED)
        cache.pin(a)
        cache.pin(b)
        with pytest.raises(CapacityError):
            cache.install(c, State.SHARED)

    def test_speculative_lines_enumeration(self):
        cache = make_cache()
        line = cache.install(9, State.MODIFIED)
        line.accessed = True
        cache.install(10, State.SHARED)
        assert [l.addr for l in cache.speculative_lines()] == [9]

    def test_eviction_callback_for_displaced_dirty_lines(self):
        evicted = []
        cache = make_cache(size=1024, assoc=1, victim=1)
        cache.on_eviction = evicted.append
        num_sets = cache.config.num_sets
        a, b, c = (i * num_sets for i in range(3))
        cache.install(a, State.MODIFIED)
        cache.install(b, State.MODIFIED)   # a -> victim
        cache.install(c, State.MODIFIED)   # b -> victim, a displaced
        assert [l.addr for l in evicted] == [a]

    def test_invalid_preferred_as_victim(self):
        cache = make_cache(size=1024, assoc=2, victim=0)
        num_sets = cache.config.num_sets
        a, b, c = (i * num_sets for i in range(3))
        cache.install(a, State.MODIFIED)
        line_b = cache.install(b, State.SHARED)
        line_b.state = State.INVALID
        cache.install(c, State.SHARED)
        assert cache.lookup(a) is not None
        assert cache.lookup(c) is not None

    def test_drop_removes_everywhere(self):
        cache = make_cache()
        cache.install(5, State.SHARED)
        cache.drop(5)
        assert cache.lookup(5) is None

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=3)


class TestVictimCache:
    def test_fifo_displacement(self):
        victim = VictimCache(entries=2)
        l1, l2, l3 = (Line(addr=i, state=State.SHARED) for i in range(3))
        assert victim.insert(l1) is None
        assert victim.insert(l2) is None
        displaced = victim.insert(l3)
        assert displaced is l1

    def test_speculative_lines_protected(self):
        victim = VictimCache(entries=1)
        spec = Line(addr=1, state=State.MODIFIED, accessed=True)
        victim.insert(spec)
        with pytest.raises(CapacityError):
            victim.insert(Line(addr=2, state=State.SHARED))

    def test_zero_entry_victim_rejects(self):
        victim = VictimCache(entries=0)
        line = Line(addr=1, state=State.SHARED)
        assert victim.insert(line) is line


class TestMshrFile:
    def test_allocate_and_release(self):
        file = MshrFile(entries=2)
        req = BusRequest(ReqKind.GETX, line=7, requester=0)
        mshr = file.allocate(req, issue_time=5)
        assert file.get(7) is mshr
        assert file.release(7) is mshr
        assert file.get(7) is None

    def test_double_allocate_same_line_rejected(self):
        file = MshrFile()
        file.allocate(BusRequest(ReqKind.GETS, line=7, requester=0), 0)
        with pytest.raises(RuntimeError):
            file.allocate(BusRequest(ReqKind.GETX, line=7, requester=0), 0)

    def test_capacity_enforced(self):
        file = MshrFile(entries=1)
        file.allocate(BusRequest(ReqKind.GETS, line=1, requester=0), 0)
        with pytest.raises(RuntimeError):
            file.allocate(BusRequest(ReqKind.GETS, line=2, requester=0), 0)

    def test_lines_view(self):
        file = MshrFile()
        file.allocate(BusRequest(ReqKind.GETS, line=1, requester=0), 0)
        file.allocate(BusRequest(ReqKind.GETS, line=9, requester=0), 0)
        assert file.lines() == {1, 9}


class TestValueStore:
    def test_default_zero(self):
        assert ValueStore().read(123) == 0

    def test_write_read(self):
        store = ValueStore()
        store.write(8, 42)
        assert store.read(8) == 42

    def test_snapshot_is_a_copy(self):
        store = ValueStore()
        store.write(1, 1)
        snap = store.snapshot()
        store.write(1, 2)
        assert snap[1] == 1
