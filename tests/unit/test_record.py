"""Unit tests for repro.record: the binary log format, the timeline
debugger, VCD export, the kernel's handle-lifetime audit, and the
per-consumer drop accounting when a recorder and a tracer share the
machine tap layer."""

import io

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.harness.spec import RunSpec
from repro.record import (LOG_SCHEMA, SCHEMA_HISTORY, FlightRecorder,
                          Timeline, export_vcd, first_divergence, load_log,
                          record_run)
from repro.record.format import (LogFormatError, LogWriter, read_header)
from repro.sim.kernel import (COMPACT_DEAD_MIN, HandleLeakError, Simulator)
from repro.sim.trace import Tracer
from repro.workloads.microbench import single_counter


def _spec(seed=0, ops=48):
    return RunSpec(workload="single-counter",
                   config=SystemConfig(num_cpus=4, scheme=SyncScheme.TLR,
                                       seed=seed),
                   workload_args={"total_increments": ops})


def _tiny_log(fingerprint="f" * 64):
    """Hand-written log: one CPU takes a txn through begin/commit with
    a state change and a deferral push/drain on a lock line."""
    buffer = io.BytesIO()
    writer = LogWriter(buffer, {"log_schema": LOG_SCHEMA,
                                "spec": {"workload": "synthetic",
                                         "config": {"num_cpus": 2}},
                                "harness": {"kind": "run"},
                                "locks": [0x100]})
    begin = writer.intern("txn-begin")
    request = writer.intern("request")
    data = writer.intern("data")
    commit = writer.intern("commit")
    tick = writer.intern("tick")
    writer.dispatch(5, tick)
    writer.tap(10, 0, begin, None, None)
    writer.tap(12, 0, request, 0x10, 1)
    writer.tap(20, 0, data, 0x10, 1)
    writer.state(20, 0, 0x10, 0, 3)       # -> M, accessed+spec_written
    writer.defer_edit(25, 0, 0, 2)        # push to depth 2
    writer.defer_edit(30, 0, 1, 0)        # drain to 0
    writer.tap(40, 0, commit, 0x10, None)
    writer.state(40, 0, 0x10, 3, 0)       # -> S
    writer.end(50, 8, fingerprint)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Format: header, round trip, CRC, schema history
# ----------------------------------------------------------------------
class TestFormat:
    def test_round_trip(self):
        image = load_log(_tiny_log())
        assert image.header["locks"] == [0x100]
        assert image.end.final_time == 50
        assert image.end.events_fired == 8
        assert image.end.fingerprint == "f" * 64
        ops = [r.op for r in image.records]
        assert ops == ["dispatch", "tap", "tap", "tap", "state",
                       "defer", "defer", "tap", "state"]
        assert image.records[0].label == "tick"
        assert image.records[4].label == "M"
        assert image.records[4].flags == 3
        assert [r.time for r in image.records] == [5, 10, 12, 20, 20,
                                                   25, 30, 40, 40]

    def test_corrupt_byte_fails_crc(self):
        raw = bytearray(_tiny_log())
        raw[len(raw) // 2] ^= 0xFF
        with pytest.raises(LogFormatError, match="CRC"):
            load_log(bytes(raw))

    def test_bad_magic_rejected(self):
        with pytest.raises(LogFormatError, match="magic"):
            read_header(b"NOPE" + _tiny_log()[4:])

    def test_unknown_version_names_schema_history(self):
        raw = bytearray(_tiny_log())
        raw[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(LogFormatError, match="99"):
            read_header(bytes(raw))

    def test_schema_history_is_complete(self):
        """Every schema version ever shipped must carry a migration
        note -- bumping LOG_SCHEMA without documenting the change is a
        CI failure (the replay-smoke job runs this check)."""
        assert set(SCHEMA_HISTORY) == set(range(1, LOG_SCHEMA + 1))
        assert all(isinstance(note, str) and note
                   for note in SCHEMA_HISTORY.values())

    def test_records_render(self):
        for record in load_log(_tiny_log()).records:
            assert str(record.time) in record.render()


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
class TestDiff:
    def test_identical_logs_have_no_divergence(self):
        a, b = load_log(_tiny_log()), load_log(_tiny_log())
        assert first_divergence(a, b) is None

    def test_first_divergence_indexes_the_mismatch(self):
        a = load_log(_tiny_log())
        b = load_log(_tiny_log(fingerprint="0" * 64))
        assert first_divergence(a, b) is None  # END not part of stream

        recorded = record_run(_spec(seed=0))
        other = record_run(_spec(seed=1))
        divergence = first_divergence(load_log(recorded.log),
                                      load_log(other.log))
        assert divergence is not None
        assert divergence.ours is not None and divergence.theirs is not None
        rendered = divergence.render()
        assert "first divergence" in rendered
        assert "A: " in rendered and "B: " in rendered
        # Context is the shared prefix right before the split.
        for record in divergence.context:
            assert record.time <= max(divergence.ours.time,
                                      divergence.theirs.time)

    def test_truncated_log_diverges_with_log_ends(self):
        recorded = record_run(_spec())
        image = load_log(recorded.log)
        shorter = type(image)(header=image.header,
                              records=image.records[:-5], end=image.end)
        divergence = first_divergence(image, shorter)
        assert divergence is not None
        assert divergence.theirs is None  # B ended early


# ----------------------------------------------------------------------
# Timeline reconstruction (no re-simulation)
# ----------------------------------------------------------------------
class TestTimeline:
    def test_synthetic_walkthrough(self):
        timeline = Timeline(_tiny_log())
        mid = timeline.state_at(15)
        assert mid.cpus[0].in_txn and mid.cpus[0].txn_since == 10
        assert mid.bus_outstanding == 1      # request seen, data not yet

        after_data = timeline.state_at(26)
        assert after_data.bus_outstanding == 0
        assert after_data.lines[(0, 0x10)] == ("M", 3)
        assert after_data.cpus[0].defer_depth == 2

        done = timeline.state_at(50)
        assert not done.cpus[0].in_txn
        assert done.cpus[0].commits == 1
        assert done.cpus[0].defer_depth == 0
        assert done.lines[(0, 0x10)] == ("S", 0)
        assert timeline.txn_spans() == [(0, 10, 40, "commit")]

    def test_interval_queries(self):
        timeline = Timeline(_tiny_log())
        touched = timeline.line_history(0x10, since=0, until=21)
        assert [r.time for r in touched] == [12, 20, 20]
        assert timeline.line_history(0x10, since=21) == \
            timeline.line_history(0x10)[3:]
        assert all(r.cpu == 0 for r in timeline.cpu_history(0))
        assert timeline.cpu_history(1) == []

    def test_real_run_state_is_sane(self):
        recorded = record_run(_spec())
        timeline = Timeline(recorded.log)
        counts = timeline.counts()
        assert counts["dispatch"] > 0 and counts["tap:commit"] > 0
        final = timeline.state_at(timeline.final_time)
        assert sum(c.commits for c in final.cpus.values()) > 0
        # Lock lines derive from the header's lock addresses.
        assert timeline.lock_lines
        assert set(final.lock_owners) == set(timeline.lock_lines)
        spans = timeline.txn_spans()
        assert spans == sorted(spans, key=lambda s: (s[1], s[0]))
        assert timeline.index_at(-1) == 0
        assert timeline.index_at(timeline.final_time) == \
            len(timeline.records)


# ----------------------------------------------------------------------
# VCD export
# ----------------------------------------------------------------------
class TestVcd:
    def test_synthetic_signals(self):
        out = io.StringIO()
        changes = export_vcd(_tiny_log(), out)
        text = out.getvalue()
        assert changes > 0
        assert "$timescale 1ns $end" in text
        assert "cpu0_txn" in text and "cpu1_txn" in text
        assert "bus_outstanding" in text
        assert "lock_20_owner" in text         # line_of(0x100) == 0x20
        assert text.rstrip().endswith("#50")   # final timestamp

    def test_export_is_deterministic(self):
        recorded = record_run(_spec())
        a, b = io.StringIO(), io.StringIO()
        export_vcd(recorded.log, a)
        export_vcd(recorded.log, b)
        assert a.getvalue() == b.getvalue()
        assert "$date" not in a.getvalue()


# ----------------------------------------------------------------------
# Kernel handle-lifetime audit (PR-5 free-list contract)
# ----------------------------------------------------------------------
class TestDebugHandles:
    def test_clean_run_passes_with_compaction_active(self):
        sim = Simulator(debug_handles=True,
                        compact_dead_min=COMPACT_DEAD_MIN)
        fired = []
        cancelled = []
        for t in range(1, 2 * COMPACT_DEAD_MIN):
            handle = sim.schedule(t, fired.append, t)
            if t % 2 == 1:
                # Retaining a *cancelled* handle is legal (it never
                # fires); enough of them to trigger lazy compaction.
                cancelled.append(handle)
        for handle in cancelled:
            handle.cancel()
        sim.run()
        assert fired == list(range(2, 2 * COMPACT_DEAD_MIN, 2))

    def test_retained_fired_handle_raises(self):
        sim = Simulator(debug_handles=True)
        kept = []
        event = sim.schedule(5, lambda: None, label="leaky")
        kept.append(event)  # a consumer wrongly retaining the handle
        with pytest.raises(HandleLeakError, match="leaky"):
            sim.run()

    def test_recycling_still_audited_under_recorder(self):
        """A full recorded machine run in debug mode: the recorder's
        on_dispatch hook must not retain any Event."""
        spec = _spec(ops=24)
        machine = Machine(spec.config)
        machine.sim.debug_handles = True
        workload = spec.build_workload()
        FlightRecorder(spec,
                       locks=sorted(workload.lock_addrs)).attach(machine)
        machine.run_workload(workload)  # must not raise HandleLeakError

    def test_default_mode_off(self):
        sim = Simulator()
        assert sim.debug_handles is False
        kept = [sim.schedule(1, lambda: None)]
        sim.run()  # no audit, no error
        assert kept


# ----------------------------------------------------------------------
# Per-consumer drop accounting on the shared tap layer
# ----------------------------------------------------------------------
class TestSharedTapDrops:
    def _run_both(self, tracer, recorder_capacity):
        spec = _spec(ops=48)
        workload = spec.build_workload()
        machine = Machine(spec.config)
        tracer.attach(machine)
        recorder = FlightRecorder(
            spec, locks=sorted(workload.lock_addrs),
            capacity=recorder_capacity).attach(machine)
        machine.run_workload(workload)
        return recorder

    def test_ring_tracer_and_recorder_count_drops_independently(self):
        tracer = Tracer(capacity=20, ring=True)
        recorder = self._run_both(tracer, recorder_capacity=30)
        # Both consumers saturated -- each tallied its own evictions.
        assert tracer.dropped > 0
        assert recorder.dropped > 0
        assert sum(tracer.dropped_by_kind.values()) == tracer.dropped
        assert sum(recorder.dropped_by_kind.values()) == recorder.dropped
        # Ring mode keeps the *latest* window.
        assert len(tracer.events) == 20

    def test_saturated_tracer_costs_recorder_nothing(self):
        tracer = Tracer(capacity=10, ring=True)
        recorder = self._run_both(tracer, recorder_capacity=None)
        assert tracer.dropped > 0
        assert recorder.dropped == 0 and recorder.dropped_by_kind == {}
        # The unsaturated recorder still produced a loadable log.
        log = recorder.finish("0" * 64)
        assert load_log(log).records

    def test_bounded_recorder_keeps_dispatch_stream(self):
        """Capacity drops tap/state/defer records, never the kernel
        dispatch stream or the END summary."""
        recorder = self._run_both(Tracer(capacity=100_000),
                                  recorder_capacity=25)
        log = recorder.finish("0" * 64)
        image = load_log(log)
        assert image.end is not None
        dispatches = sum(1 for r in image.records if r.op == "dispatch")
        assert dispatches > 25                     # never capped
        assert recorder.dropped_by_kind           # taps were capped
