"""Unit tests for the parallel sweep engine: retry-with-seed-bump on
livelock, FailedRun degradation, wall-clock timeouts, cache integration,
telemetry, and the unified ``repro.harness.run`` dispatch."""

import time

import pytest

import repro.harness.parallel as parallel
from repro.harness import run as harness_run
from repro.harness.cache import ResultCache
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.parallel import (FailedRun, RunTimeout, execute,
                                    _wall_clock_limit)
from repro.harness.runner import RunResult
from repro.harness.spec import RunSpec
from repro.runtime.program import ValidationError
from repro.sim.kernel import SimulationError
from repro.workloads.microbench import single_counter


def _spec(seed=0, ops=32, cpus=2, max_cycles=20_000_000) -> RunSpec:
    return RunSpec(workload="single-counter",
                   config=SystemConfig(num_cpus=cpus, seed=seed,
                                       max_cycles=max_cycles),
                   workload_args={"total_increments": ops})


class TestRetries:
    def test_livelock_retried_with_bumped_seed(self, monkeypatch):
        real = parallel._simulate
        attempts = []

        def flaky(spec):
            attempts.append(spec.config.seed)
            if len(attempts) == 1:
                raise SimulationError("synthetic livelock")
            return real(spec)

        monkeypatch.setattr(parallel, "_simulate", flaky)
        outcomes, telemetry = execute([_spec(seed=5)], jobs=1, retries=2)
        result = outcomes[0]
        assert isinstance(result, RunResult)
        assert result.attempts == 2
        assert result.seed_used == 5 + parallel.SEED_BUMP
        assert attempts == [5, 5 + parallel.SEED_BUMP]
        assert telemetry.retries == 1 and telemetry.failures == 0

    def test_exhausted_retries_yield_failed_run(self, monkeypatch):
        monkeypatch.setattr(
            parallel, "_simulate",
            lambda spec: (_ for _ in ()).throw(SimulationError("stuck")))
        outcomes, telemetry = execute([_spec(seed=3)], jobs=1, retries=2)
        failed = outcomes[0]
        assert isinstance(failed, FailedRun)
        assert failed.attempts == 3
        assert failed.error == "SimulationError"
        assert failed.seed == 3
        assert len(failed.seeds_tried) == 3
        assert telemetry.failures == 1

    def test_real_cycle_budget_overrun_degrades_not_raises(self):
        # max_cycles far below what the run needs: every attempt
        # overruns, the sweep still completes.
        ok, bad = _spec(), _spec(max_cycles=500)
        outcomes, telemetry = execute([ok, bad, ok], jobs=1, retries=1)
        assert isinstance(outcomes[0], RunResult)
        assert isinstance(outcomes[1], FailedRun)
        assert isinstance(outcomes[2], RunResult)
        assert "cycle budget" in outcomes[1].message
        assert telemetry.failures == 1
        assert telemetry.retries >= 1

    def test_validation_error_is_not_retried(self, monkeypatch):
        calls = []

        def broken(spec):
            calls.append(spec.config.seed)
            raise ValidationError("memory image wrong")

        monkeypatch.setattr(parallel, "_simulate", broken)
        with pytest.raises(ValidationError):
            execute([_spec()], jobs=1, retries=3)
        assert len(calls) == 1


class TestTimeout:
    def test_wall_clock_limit_raises_runtimeout(self):
        with pytest.raises(RunTimeout):
            with _wall_clock_limit(0.05):
                time.sleep(1.0)

    def test_wall_clock_limit_disarms_after_body(self):
        with _wall_clock_limit(0.05):
            pass
        time.sleep(0.08)  # would blow up if the timer were still armed

    def test_timed_out_run_becomes_failed_run(self, monkeypatch):
        def slow(spec):
            time.sleep(1.0)

        monkeypatch.setattr(parallel, "_simulate", slow)
        outcomes, telemetry = execute([_spec()], jobs=1, retries=0,
                                      timeout=0.05)
        failed = outcomes[0]
        assert isinstance(failed, FailedRun)
        assert failed.error == "RunTimeout"
        assert telemetry.failures == 1


class TestCacheIntegration:
    def test_second_execute_hits_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(seed=0), _spec(seed=1)]
        first, t1 = execute(specs, jobs=1, cache=cache)
        second, t2 = execute(specs, jobs=1, cache=cache)
        assert t1.simulated == 2 and t1.cache_hits == 0
        assert t2.simulated == 0 and t2.cache_hits == 2
        assert [r.cycles for r in first] == [r.cycles for r in second]

    def test_changed_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute([_spec(seed=0)], jobs=1, cache=cache)
        _, telemetry = execute([_spec(seed=99)], jobs=1, cache=cache)
        assert telemetry.cache_hits == 0 and telemetry.simulated == 1

    def test_invalidated_entry_is_resimulated(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        execute([spec], jobs=1, cache=cache)
        cache.invalidate(spec.fingerprint())
        _, telemetry = execute([spec], jobs=1, cache=cache)
        assert telemetry.cache_hits == 0 and telemetry.simulated == 1

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = _spec(max_cycles=500)
        execute([bad], jobs=1, retries=0, cache=cache)
        assert len(cache) == 0
        _, telemetry = execute([bad], jobs=1, retries=0, cache=cache)
        assert telemetry.cache_hits == 0

    def test_progress_callback_sees_every_run(self, tmp_path):
        seen = []
        execute([_spec(seed=0), _spec(seed=1)], jobs=1,
                progress=lambda done, total, outcome:
                seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]


class TestUnifiedRun:
    def test_runspec_returns_runresult(self):
        result = harness_run(_spec())
        assert isinstance(result, RunResult)
        assert result.cycles > 0

    def test_failed_spec_returns_failed_run(self):
        outcome = harness_run(_spec(max_cycles=500), retries=0)
        assert isinstance(outcome, FailedRun)

    def test_workload_legacy_path(self):
        result = harness_run(single_counter(2, 32),
                             SystemConfig(num_cpus=2,
                                          max_cycles=20_000_000))
        assert isinstance(result, RunResult)
        assert result.workload_name == "single-counter"

    def test_experiment_by_name(self):
        sweep = harness_run("figure9", total_increments=32,
                            processor_counts=(2,),
                            include_strict_ts=False)
        assert sweep.cycles(SyncScheme.TLR, 2) > 0

    def test_unknown_experiment_name(self):
        with pytest.raises(KeyError, match="registered"):
            harness_run("figure99")

    def test_bad_spec_type(self):
        with pytest.raises(TypeError, match="cannot run"):
            harness_run(42)

    def test_validate_false_propagates(self):
        result = harness_run(_spec(), validate=False)
        assert isinstance(result, RunResult)


class TestShimRemoval:
    def test_runner_exposes_only_execute_workload(self):
        import repro.harness.runner as runner
        assert callable(runner.execute_workload)
        for name in ("run", "run_scheme", "compare_schemes"):
            assert not hasattr(runner, name)
