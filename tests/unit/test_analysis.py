"""Tests for the post-run analysis utilities."""

from repro.harness.analysis import (CommitLog, line_conflict_profile,
                                    restart_reasons, summarize)
from repro.harness.config import SyncScheme
from repro.harness.machine import Machine
from repro.sim.trace import Tracer
from repro.workloads.microbench import linked_list, single_counter

from tests.conftest import small_config


def _run(scheme=SyncScheme.TLR, num_cpus=4, ops=256, builder=single_counter):
    machine = Machine(small_config(num_cpus, scheme))
    tracer = Tracer().attach(machine)
    commit_log = CommitLog.attach(machine)
    machine.run_workload(builder(num_cpus, ops))
    return machine, tracer, commit_log


class TestRestartReasons:
    def test_contended_tlr_has_classified_restarts(self):
        machine, _, _ = _run(builder=linked_list)
        reasons = restart_reasons(machine.stats)
        assert sum(reasons.values()) == machine.stats.restarts
        assert all(isinstance(k, str) and v > 0 for k, v in reasons.items())

    def test_base_has_no_restarts(self):
        machine, _, _ = _run(scheme=SyncScheme.BASE)
        assert restart_reasons(machine.stats) == {}


class TestConflictProfile:
    def test_counter_line_is_hottest(self):
        machine, tracer, _ = _run()
        profile = line_conflict_profile(tracer, top=1)
        assert profile, "no conflict activity recorded"
        hottest_line, counts = profile[0]
        # The single shared counter lives on one line; it must dominate.
        assert counts["defer"] + counts.get("service", 0) > 0

    def test_top_parameter_limits(self):
        machine, tracer, _ = _run(builder=linked_list)
        assert len(line_conflict_profile(tracer, top=2)) <= 2


class TestCommitLog:
    def test_footprints_match_workload_shape(self):
        machine, _, commit_log = _run()
        histogram = commit_log.footprint_histogram()
        # single-counter transactions write exactly one line.
        assert set(histogram) == {1}
        assert histogram[1] == 256

    def test_linked_list_footprints_are_multi_line(self):
        machine, _, commit_log = _run(builder=linked_list)
        assert commit_log.max_written_lines() >= 2

    def test_per_cpu_commits_cover_everyone(self):
        machine, _, commit_log = _run()
        assert set(commit_log.per_cpu_commits()) == {0, 1, 2, 3}

    def test_empty_log(self):
        log = CommitLog()
        assert log.footprint_histogram() == {}
        assert log.max_written_lines() == 0


class TestSummarize:
    def test_summary_mentions_key_figures(self):
        machine, tracer, commit_log = _run()
        text = summarize(machine, tracer, commit_log)
        assert "cycles:" in text
        assert "elisions committed: 256" in text
        assert "hottest conflict lines:" in text
        assert "commit footprints" in text
