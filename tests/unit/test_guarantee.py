"""Unit tests for the architectural footprint guarantee (Section 4)."""

from dataclasses import replace

from repro.harness.config import SpeculationConfig, SystemConfig
from repro.tlr.guarantee import FootprintGuarantee, guaranteed_footprint


def _config(**spec_overrides) -> SystemConfig:
    config = SystemConfig()
    if spec_overrides:
        config = replace(config,
                         spec=replace(config.spec, **spec_overrides))
    return config


class TestGuaranteedFootprint:
    def test_paper_worked_example(self):
        # Section 4: 4-way cache + 16-entry victim cache guarantees a
        # 20-line footprint; one slot goes to the elided lock's line.
        config = _config()
        assert config.cache.assoc == 4
        assert config.cache.victim_entries == 16
        guarantee = guaranteed_footprint(config)
        assert guarantee.total_lines == 19

    def test_write_buffer_smaller_than_total_lines(self):
        guarantee = guaranteed_footprint(_config(write_buffer_entries=8))
        assert guarantee.total_lines == 19
        assert guarantee.written_lines == 8

    def test_write_buffer_larger_than_total_lines_is_clamped(self):
        guarantee = guaranteed_footprint(_config(write_buffer_entries=64))
        assert guarantee.written_lines == guarantee.total_lines == 19

    def test_nesting_depth_zero(self):
        guarantee = guaranteed_footprint(_config(elision_depth=0))
        assert guarantee.nesting_depth == 0
        # Depth 0 admits nothing: even a flat transaction needs one
        # tracked elision level.
        assert not guarantee.admits(1, nesting=1)
        assert guarantee.admits(1, nesting=0)

    def test_nesting_depth_one(self):
        guarantee = guaranteed_footprint(_config(elision_depth=1))
        assert guarantee.admits(4, written_lines=2, nesting=1)
        assert not guarantee.admits(4, written_lines=2, nesting=2)


class TestAdmitsBoundaries:
    guarantee = FootprintGuarantee(total_lines=8, written_lines=4,
                                   nesting_depth=2)

    def test_exact_total_budget_admitted(self):
        assert self.guarantee.admits(4, written_lines=4)

    def test_one_past_total_budget_rejected(self):
        assert not self.guarantee.admits(5, written_lines=4)

    def test_reads_alone_up_to_total(self):
        assert self.guarantee.admits(8)
        assert not self.guarantee.admits(9)

    def test_written_lines_boundary(self):
        # Writes count against both budgets: exactly written_lines
        # writes pass, one more fails even with total budget to spare.
        assert self.guarantee.admits(0, written_lines=4)
        assert not self.guarantee.admits(0, written_lines=5)

    def test_nesting_boundary(self):
        assert self.guarantee.admits(1, nesting=2)
        assert not self.guarantee.admits(1, nesting=3)

    def test_zero_footprint_admitted(self):
        assert self.guarantee.admits(0, written_lines=0, nesting=0)
