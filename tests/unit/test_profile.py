"""Unit tests for the causal profiling layer (``repro.obs.profile``):
cause bucketing, the event-folding builder, the tap folder's abort
attribution, OP_TXN record round-trips, the renderers, and the
``MachineMetrics.finalize`` edge cases the profiler wiring leans on."""

import json
from types import SimpleNamespace

import pytest

from repro.cpu.checkpoint import ElisionRecord, SpeculationCheckpoint
from repro.harness.config import SyncScheme
from repro.harness.runner import execute_workload
from repro.obs import MachineMetrics
from repro.obs.profile import (ABORT_CAUSES, CAUSE_OF, ProfileBuilder,
                               TxnTapFolder, cause_of, critical_path,
                               describe_chain, matrix_canonical_json,
                               render_folded, render_markdown)
from repro.record.format import (TXN_ABORT, TXN_BEGIN, TXN_COMMIT,
                                 LogWriter, iter_records)
from repro.workloads.microbench import single_counter

from tests.conftest import small_config


class TestCauseBuckets:
    def test_every_mapped_reason_lands_in_a_declared_cause(self):
        for reason, cause in CAUSE_OF.items():
            assert cause in ABORT_CAUSES, (reason, cause)

    def test_resource_reasons_are_not_conflicts(self):
        for reason in ("capacity", "wb-overflow", "non-silent-pair"):
            assert cause_of(reason) != "conflict", reason

    def test_representative_buckets(self):
        assert cause_of("conflict-lost") == "conflict"
        assert cause_of("aborted-by-holder") == "nack"
        assert cause_of("deschedule") == "context-switch"
        assert cause_of("capacity") == "capacity"
        assert cause_of("non-silent-pair") == "fallback"
        assert cause_of("terminated") == "other"


class TestProfileBuilder:
    def test_commit_accounting(self):
        builder = ProfileBuilder()
        builder.txn_begin(100, 0, 0x40, "main.cs", 1)
        builder.txn_commit(140, 0)
        snap = builder.snapshot()
        stats = snap["locks"]["0x40"]
        assert stats["attempts"] == 1 and stats["commits"] == 1
        assert stats["cycles_committed"] == 40
        assert stats["commit_rate"] == 1.0
        assert stats["pcs"] == {"main.cs": 1}
        assert snap["conflicts"] == {}

    def test_abort_builds_matrix_and_chain(self):
        builder = ProfileBuilder()
        builder.txn_begin(100, 3, 0x40, "list.push", 2)
        builder.txn_abort(160, 3, "conflict-lost", 0x48, 1)
        snap = builder.snapshot()
        stats = snap["locks"]["0x40"]
        assert stats["aborts"] == 1
        assert stats["aborts_by_cause"] == {"conflict": 1}
        assert stats["aborts_by_reason"] == {"conflict-lost": 1}
        assert stats["cycles_lost"] == 60
        assert snap["conflicts"] == {"3": {"1": 1}}
        chain = snap["chains"][0]
        assert chain["victim"] == 3 and chain["aborter"] == 1
        assert chain["conflict_line"] == 0x48
        sentence = describe_chain(chain)
        assert "cpu 3" in sentence and "by cpu 1" in sentence
        assert "conflict-lost" in sentence

    def test_unattributed_abort_uses_minus_one_column(self):
        builder = ProfileBuilder()
        builder.txn_begin(0, 1, 0x40, "p", 1)
        builder.txn_abort(5, 1, "relaxation-revoked", None, -1)
        snap = builder.snapshot()
        assert snap["conflicts"] == {"1": {"-1": 1}}
        assert "by cpu" not in describe_chain(snap["chains"][0])

    def test_close_without_open_is_ignored(self):
        builder = ProfileBuilder()
        builder.txn_commit(10, 0)
        builder.txn_abort(10, 1, "conflict-lost", None, 0)
        assert builder.snapshot()["totals"]["attempts"] == 0

    def test_deferral_wait_attributed_to_holders_lock(self):
        builder = ProfileBuilder()
        builder.txn_begin(0, 0, 0x40, "p", 1)
        builder.defer_push(10, 0, "req-7")       # holder cpu0 owns 0x40
        builder.defer_service(35, "req-7")
        builder.txn_commit(40, 0)
        stats = builder.snapshot()["locks"]["0x40"]
        assert stats["deferrals"] == 1
        assert stats["deferral_cycles"] == 25

    def test_unmatched_service_and_unknown_holder(self):
        builder = ProfileBuilder()
        builder.defer_service(10, "never-pushed")   # ignored
        builder.defer_push(5, 2, "k")               # cpu2 has no open txn
        builder.defer_service(9, "k")
        snap = builder.snapshot()
        assert snap["locks"]["?"]["deferral_cycles"] == 4
        assert snap["totals"]["deferrals"] == 1

    def test_finalize_counts_unclosed(self):
        builder = ProfileBuilder()
        builder.txn_begin(0, 0, 0x40, "p", 1)
        builder.txn_begin(0, 1, 0x40, "p", 1)
        builder.txn_commit(9, 1)
        builder.finalize()
        assert builder.snapshot()["totals"]["unclosed"] == 1

    def test_matrix_canonical_json_is_sorted_and_compact(self):
        builder = ProfileBuilder()
        for victim, aborter in ((2, 0), (1, 3), (2, 1)):
            builder.txn_begin(0, victim, 0x40, "p", 1)
            builder.txn_abort(4, victim, "conflict-lost", None, aborter)
        text = matrix_canonical_json(builder.snapshot())
        assert text == '{"1":{"3":1},"2":{"0":1,"1":1}}'


class _Sink:
    """Records every normalized event, in order."""

    def __init__(self):
        self.events = []

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        return lambda *args: self.events.append((name,) + args)


def _machine_stub(lock_addr=0x40, pc="site.a", attempts=3):
    checkpoint = SpeculationCheckpoint(start_time=0, ts=(0, 0),
                                       root_depth=0, attempts=attempts)
    checkpoint.push(ElisionRecord(lock_addr=lock_addr, free_value=0,
                                  held_value=1, pc=pc, depth=0))
    spec = SimpleNamespace(checkpoint=checkpoint)
    return SimpleNamespace(processors=[SimpleNamespace(spec=spec)] * 8)


class TestTxnTapFolder:
    def test_begin_reads_checkpoint(self):
        sink = _Sink()
        folder = TxnTapFolder(sink).attach_machine(
            _machine_stub(lock_addr=0x87, pc="x.y", attempts=5))
        folder.on_tap(10, 2, "txn-begin", ((0, 2),), None)
        # lock addr 0x87 -> its cache line, pc and attempts verbatim.
        from repro.cpu.isa import line_of
        assert sink.events == [
            ("txn_begin", 10, 2, line_of(0x87), "x.y", 5)]

    def test_loss_stash_consumed_by_same_cycle_misspec(self):
        sink = _Sink()
        folder = TxnTapFolder(sink).attach_machine(_machine_stub())
        folder.on_tap(0, 1, "txn-begin", ((0, 1),), None)
        folder.on_tap(50, 1, "loss", ("conflict-lost", 0x48, (0, 3), 3),
                      None)
        folder.on_tap(50, 1, "misspec", ("conflict-lost", 0x48), None)
        assert sink.events[-1] == \
            ("txn_abort", 50, 1, "conflict-lost", 0x48, 3)

    def test_stale_loss_stash_is_not_consumed(self):
        sink = _Sink()
        folder = TxnTapFolder(sink).attach_machine(_machine_stub())
        folder.on_tap(0, 1, "txn-begin", ((0, 1),), None)
        folder.on_tap(50, 1, "loss", ("conflict-lost", 0x48, (0, 3), 3),
                      None)
        # The loss handler early-returned (no misspec at t=50); a later
        # resource abort must not inherit the stale attribution.
        folder.on_tap(90, 1, "misspec", ("capacity", 0x10), None)
        assert sink.events[-1] == ("txn_abort", 90, 1, "capacity",
                                   0x10, -1)

    def test_memory_origin_probe_attributed_via_timestamp(self):
        sink = _Sink()
        folder = TxnTapFolder(sink).attach_machine(_machine_stub())
        folder.on_tap(0, 2, "txn-begin", ((0, 2),), None)
        folder.on_tap(7, 2, "loss", ("probe-lost", 0x48, (4, 1), -1),
                      None)
        folder.on_tap(7, 2, "misspec", ("probe-lost", 0x48), None)
        assert sink.events[-1] == ("txn_abort", 7, 2, "probe-lost",
                                   0x48, 1)

    def test_events_outside_open_txn_ignored(self):
        sink = _Sink()
        folder = TxnTapFolder(sink).attach_machine(_machine_stub())
        folder.on_tap(1, 0, "txn-commit", (), None)
        folder.on_tap(2, 0, "loss", ("conflict-lost", 0x48, None), None)
        folder.on_tap(3, 0, "misspec", ("terminated", 0), None)
        assert sink.events == []


class TestOpTxnRoundTrip:
    def _roundtrip(self, emit):
        import io
        buffer = io.BytesIO()
        writer = LogWriter(buffer, {})
        emit(writer)
        writer.end(0, 0, "00")
        data = buffer.getvalue()
        from repro.record.format import read_header
        _, pos = read_header(data)
        records = [r for r in iter_records(data, pos)
                   if getattr(r, "op", None) == "txn"]
        return records

    def test_begin(self):
        def emit(writer):
            writer.txn_begin(11, 3, 0x40, writer.intern("pc.x"), 4)
        (record,) = self._roundtrip(emit)
        assert record.flags == TXN_BEGIN and record.cpu == 3
        assert record.line == 0x40 and record.label == "pc.x"
        assert record.ref == 4
        assert "pc.x" in record.render()

    def test_begin_with_unknown_lock(self):
        def emit(writer):
            writer.txn_begin(0, 0, None, writer.intern(""), 1)
        (record,) = self._roundtrip(emit)
        assert record.line is None

    def test_commit(self):
        def emit(writer):
            writer.txn_commit(5, 1)
        (record,) = self._roundtrip(emit)
        assert record.flags == TXN_COMMIT and record.cpu == 1

    def test_abort_attributed_and_not(self):
        def emit(writer):
            reason = writer.intern("conflict-lost")
            writer.txn_abort(9, 2, reason, 0x48, 1)
            writer.txn_abort(12, 3, writer.intern("relaxation-revoked"),
                             None, -1)
        attributed, unattributed = self._roundtrip(emit)
        assert attributed.label == "conflict-lost"
        assert attributed.line == 0x48 and attributed.ref == 1
        assert "by cpu1" in attributed.render()
        assert unattributed.line is None and unattributed.ref is None


class TestRenderers:
    def _snapshot(self):
        builder = ProfileBuilder()
        builder.txn_begin(0, 0, 0x40, "a.cs", 1)
        builder.txn_commit(30, 0)
        builder.txn_begin(40, 1, 0x80, "b.cs", 1)
        builder.txn_abort(90, 1, "conflict-lost", 0x84, 0)
        return builder.snapshot()

    def test_markdown_report(self):
        text = render_markdown(self._snapshot(), title="t")
        assert "# t" in text
        assert "| 0x40 | a.cs |" in text
        assert "who aborts whom" in text
        assert "conflict-lost" in text

    def test_critical_path_ranks_by_contention(self):
        ranked = critical_path(self._snapshot())
        assert [lock for lock, _ in ranked] == ["0x80", "0x40"]

    def test_folded_stacks(self):
        lines = render_folded(self._snapshot()).splitlines()
        assert "0x40;a.cs;committed 30" in lines
        assert "0x80;b.cs;conflict 50" in lines

    def test_empty_profile_renders(self):
        assert render_folded({"folded": {}}) == ""
        assert "0 elision attempts" in render_markdown({})


class TestMachineMetricsFinalizeEdges:
    """The collector edge cases the profiler wiring leans on."""

    def test_finalize_without_machine(self):
        metrics = MachineMetrics().finalize()
        assert "meta" not in metrics
        assert not any(key.startswith("restart.reason.")
                       for key in metrics["counters"])

    def test_double_attach_does_not_double_count(self):
        workload = single_counter(2, 64)
        config = small_config(2, SyncScheme.TLR)
        single = execute_workload(workload, config).metrics

        from repro.harness.machine import Machine
        machine = Machine(small_config(2, SyncScheme.TLR))
        collector = MachineMetrics()
        assert collector.attach(machine) is collector
        collector.attach(machine)   # idempotent re-point
        machine.run_workload(single_counter(2, 64))
        doubled = collector.finalize(machine)
        # execute_workload additionally publishes profile.* aggregates;
        # the bare collector comparison covers everything else.
        expected = {key: value for key, value in
                    single["counters"].items()
                    if not key.startswith("profile.")}
        assert doubled["counters"] == expected

    def test_sched_gauges_absent_when_engine_off(self):
        result = execute_workload(single_counter(2, 64),
                                  small_config(2, SyncScheme.TLR))
        gauges = result.metrics["gauges"]
        assert "sched.slots" not in gauges
        assert not any(key.startswith("sched.thread.")
                       for key in gauges)


class TestTrendDirections:
    def test_profiler_metric_directions(self):
        from repro.harness import trend
        assert trend.direction_of(
            "results.totals.timestamp/linked-list.commit_rate") == "higher"
        assert trend.direction_of(
            "results.totals.nack/linked-list.cycles_lost") == "lower"
        assert trend.direction_of(
            "results.totals.nack/linked-list.deferral_cycles") == "lower"
        assert trend.direction_of(
            "results.totals.nack/linked-list.aborts") == "lower"


class TestProfilePublish:
    def test_profile_families_reach_the_registry_export(self):
        result = execute_workload(single_counter(4, 128),
                                  small_config(4, SyncScheme.TLR))
        counters = result.metrics["counters"]
        assert counters["profile.txn.attempts"] >= \
            counters["profile.txn.commits"] > 0
        assert "profile.commit_rate" in result.metrics["gauges"]
        # The aggregates agree with the detailed snapshot riding along.
        totals = result.metrics["profile"]["totals"]
        assert counters["profile.txn.attempts"] == totals["attempts"]
        assert counters["profile.cycles_lost"] == totals["cycles_lost"]

    def test_snapshot_round_trips_through_run_result_json(self):
        from repro.harness.runner import RunResult
        result = execute_workload(single_counter(2, 64),
                                  small_config(2, SyncScheme.TLR))
        clone = RunResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.metrics["profile"] == result.metrics["profile"]
