"""Unit tests for the contention-policy layer (repro.policies).

Truth-tables the four policies' ``resolve`` decisions against hand-built
conflicts, and pins the config plumbing: registry/name consistency, the
``with_policy`` convenience, and the legacy ``retention_policy="nack"``
normalization.
"""

import pytest

from repro.harness.config import SpeculationConfig, SyncScheme, SystemConfig
from repro.policies import (POLICIES, POLICY_NAMES, ConflictContext,
                            ContentionPolicy, PolicyDecision, make_policy)


def _cfg(policy="timestamp", **spec_kwargs):
    cfg = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR)
    return cfg.with_policy(policy) if not spec_kwargs else SystemConfig(
        num_cpus=4, scheme=SyncScheme.TLR,
        spec=SpeculationConfig(contention_policy=policy, **spec_kwargs))


def _ctx(requester_ts, holder_ts, **kwargs):
    defaults = dict(line=0x40, requester=1, holder=0,
                    requester_ts=requester_ts, holder_ts=holder_ts,
                    is_write=True, holder_wrote=True, relaxation_ok=False)
    defaults.update(kwargs)
    return ConflictContext(**defaults)


# ----------------------------------------------------------------------
# Registry and config plumbing
# ----------------------------------------------------------------------
def test_registry_matches_config_known_policies():
    # config.py cannot import repro.policies (layering), so the valid
    # names are mirrored there; this is the test that keeps them in sync.
    assert POLICY_NAMES == SpeculationConfig.KNOWN_POLICIES
    for name, cls in POLICIES.items():
        assert cls.name == name
        assert cls.ordering in ("timestamp", "priority", "none")


def test_make_policy_instantiates_each_and_rejects_unknown():
    for name in POLICY_NAMES:
        policy = make_policy(_cfg(name), cpu_id=2)
        assert isinstance(policy, ContentionPolicy)
        assert policy.name == name and policy.cpu_id == 2
    with pytest.raises(ValueError, match="bad contention_policy"):
        SpeculationConfig(contention_policy="optimism")


def test_with_policy_and_legacy_nack_normalization():
    base = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR)
    nack = base.with_policy("nack")
    assert nack.spec.contention_policy == "nack"
    assert nack.spec.retention_policy == "nack"  # legacy spelling synced
    back = nack.with_policy("timestamp")
    assert back.spec.contention_policy == "timestamp"
    assert back.spec.retention_policy == "defer"  # no stale resurrection
    # fallback_k passes through only when given.
    assert base.with_policy("requester-wins").spec.contention_fallback_k \
        == base.spec.contention_fallback_k
    assert base.with_policy("requester-wins", fallback_k=None) \
        .spec.contention_fallback_k is None
    # The legacy knob alone selects the NACK policy.
    legacy = SpeculationConfig(retention_policy="nack")
    assert legacy.contention_policy == "nack"
    with pytest.raises(ValueError):
        SpeculationConfig(contention_fallback_k=0)


# ----------------------------------------------------------------------
# timestamp: the paper's deferral policy
# ----------------------------------------------------------------------
def test_timestamp_resolve_truth_table():
    p = make_policy(_cfg("timestamp"), 0)
    holder = (10, 0)
    # Later-timestamped requester loses -> deferred.
    assert p.resolve(_ctx((11, 1), holder)) is PolicyDecision.DEFER
    # Earlier requester wins -> holder aborts ...
    assert p.resolve(_ctx((9, 1), holder)) is PolicyDecision.ABORT_HOLDER
    # ... unless the Section 3.2 relaxation holds.
    assert p.resolve(_ctx((9, 1), holder, relaxation_ok=True)) \
        is PolicyDecision.DEFER
    # Untimestamped requests defer by default (Section 2.2) ...
    assert p.resolve(_ctx(None, holder)) is PolicyDecision.DEFER
    # ... and abort the holder under untimestamped_policy="abort".
    p_abort = make_policy(_cfg("timestamp", untimestamped_policy="abort"), 0)
    assert p_abort.resolve(_ctx(None, holder)) \
        is PolicyDecision.ABORT_HOLDER


# ----------------------------------------------------------------------
# nack: same order, snoop-time refusal
# ----------------------------------------------------------------------
def test_nack_resolve_truth_table():
    p = make_policy(_cfg("nack"), 0)
    assert p.uses_nack
    holder = (10, 0)
    # At the snoop a won conflict becomes a refusal.
    assert p.resolve(_ctx((11, 1), holder, at_snoop=True)) \
        is PolicyDecision.NACK_RETRY
    # Past the order point a NACK is impossible: retention falls back
    # to deferral (the chained-request corner).
    assert p.resolve(_ctx((11, 1), holder)) is PolicyDecision.DEFER
    # A lost conflict aborts regardless of where it is decided.
    assert p.resolve(_ctx((9, 1), holder, at_snoop=True)) \
        is PolicyDecision.ABORT_HOLDER


# ----------------------------------------------------------------------
# requester-wins: best-effort HTM semantics
# ----------------------------------------------------------------------
def test_requester_wins_truth_table():
    p = make_policy(_cfg("requester-wins"), 0)
    assert p.ordering == "none" and not p.uses_nack
    holder = (10, 0)
    for ts in ((9, 1), (11, 1), None):
        assert p.resolve(_ctx(ts, holder)) is PolicyDecision.ABORT_HOLDER
    assert p.probe_beats((99, 1), holder)  # any waiter defeats the holder
    # Lock fallback after K attempts; None disables it (livelock).
    assert not p.should_fallback(3)
    assert p.should_fallback(4)
    p_none = make_policy(_cfg("requester-wins", contention_fallback_k=None),
                         0)
    assert not p_none.should_fallback(10_000)
    assert p.backoff_for(5) == p.config.spec.misspec_penalty


# ----------------------------------------------------------------------
# backoff: Polka-style priorities
# ----------------------------------------------------------------------
def test_backoff_priority_accumulation_and_truth_table():
    p = make_policy(_cfg("backoff"), 0)
    holder = (10, 0)
    # Equal priority: the timestamp total order breaks the tie.
    assert p.resolve(_ctx((9, 1), holder)) is PolicyDecision.ABORT_HOLDER
    assert p.resolve(_ctx((11, 1), holder, at_snoop=True)) \
        is PolicyDecision.NACK_RETRY
    # A lost conflict the holder would defer concedes instead when a
    # transactional miss is outstanding (priorities cannot order away
    # a wait cycle the way timestamps can).
    assert p.resolve(_ctx((11, 1), holder, holder_has_miss=True)) \
        is PolicyDecision.ABORT_HOLDER
    assert p.resolve(_ctx((11, 1), holder)) is PolicyDecision.DEFER
    # Priority rises on restarts (work lost) ...
    p.on_restart("conflict-lost", 1)
    p.on_restart("conflict-lost", 2)
    assert p.priority == 2 and p.request_priority() == 2
    assert p.resolve(_ctx((9, 1), holder, requester_prio=1)) \
        is PolicyDecision.DEFER  # requester is now weaker despite its ts
    assert p.resolve(_ctx((11, 1), holder, requester_prio=3)) \
        is PolicyDecision.ABORT_HOLDER
    # ... but NOT on NACKs: lockstep nack-escalation is mutual
    # starvation (two holders refusing each other forever).
    before = p.priority
    p.on_nacked(request=None)
    assert p.priority == before
    # NACK retry delay doubles per consecutive refusal; commit resets.
    base = p.config.spec.nack_retry_delay
    first = p.nack_delay(request=None)
    p.on_nacked(request=None)
    assert p.nack_delay(request=None) == 2 * first
    p.on_commit()
    assert p.priority == 0 and p.nack_delay(request=None) == base
    # Restart backoff grows exponentially with consecutive attempts.
    assert p.backoff_for(3) > p.backoff_for(2) > p.backoff_for(1) > 0
