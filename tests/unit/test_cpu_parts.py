"""Unit tests for CPU building blocks: write buffer, predictors,
checkpoints, ISA helpers."""

import pytest

from repro.coherence.memory import ValueStore
from repro.cpu.checkpoint import (ElisionRecord, RestartSignal,
                                  SpeculationCheckpoint)
from repro.cpu.isa import WORDS_PER_LINE, line_of
from repro.cpu.predictor import RmwPredictor, StorePairPredictor
from repro.cpu.writebuffer import WriteBuffer, WriteBufferOverflow


class TestIsaHelpers:
    def test_line_of_maps_words_to_64_byte_lines(self):
        assert WORDS_PER_LINE == 8
        assert line_of(0) == 0
        assert line_of(7) == 0
        assert line_of(8) == 1
        assert line_of(17) == 2


class TestWriteBuffer:
    def test_forwarding_returns_latest(self):
        buffer = WriteBuffer(capacity_lines=4)
        buffer.write(3, 10)
        buffer.write(3, 11)
        assert buffer.read(3) == 11
        assert buffer.read(4) is None

    def test_capacity_counts_unique_lines(self):
        buffer = WriteBuffer(capacity_lines=2)
        for word in range(8):     # all in line 0
            buffer.write(word, word)
        for word in range(8, 16):  # line 1
            buffer.write(word, word)
        with pytest.raises(WriteBufferOverflow):
            buffer.write(16, 1)    # line 2 overflows

    def test_rewrite_does_not_consume_capacity(self):
        buffer = WriteBuffer(capacity_lines=1)
        for _ in range(100):
            buffer.write(0, 1)
        assert len(buffer) == 1

    def test_drain_commits_and_clears(self):
        buffer = WriteBuffer(capacity_lines=4)
        buffer.write(1, 11)
        buffer.write(9, 99)
        store = ValueStore()
        assert buffer.drain(store) == 2
        assert store.read(1) == 11 and store.read(9) == 99
        assert not buffer

    def test_clear_discards(self):
        buffer = WriteBuffer(capacity_lines=4)
        buffer.write(1, 11)
        buffer.clear()
        store = ValueStore()
        buffer.drain(store)
        assert store.read(1) == 0

    def test_lines_view(self):
        buffer = WriteBuffer(capacity_lines=4)
        buffer.write(0, 1)
        buffer.write(8, 1)
        assert buffer.lines() == {0, 1}


class TestRmwPredictor:
    def test_untrained_predicts_shared(self):
        predictor = RmwPredictor()
        assert not predictor.predict_exclusive("pc1")

    def test_training_flips_to_exclusive(self):
        predictor = RmwPredictor()
        predictor.train_rmw("pc1")
        assert predictor.predict_exclusive("pc1")

    def test_negative_training_decays(self):
        predictor = RmwPredictor()
        predictor.train_rmw("pc1")
        predictor.train_not_rmw("pc1")
        predictor.train_not_rmw("pc1")
        assert not predictor.predict_exclusive("pc1")

    def test_disabled_never_predicts(self):
        predictor = RmwPredictor(enabled=False)
        predictor.train_rmw("pc1")
        assert not predictor.predict_exclusive("pc1")

    def test_empty_pc_never_predicts(self):
        predictor = RmwPredictor()
        predictor.train_rmw("")
        assert not predictor.predict_exclusive("")

    def test_table_bounded_lru(self):
        predictor = RmwPredictor(entries=2)
        predictor.train_rmw("a")
        predictor.train_rmw("b")
        predictor.train_rmw("c")   # evicts "a"
        assert predictor.live_entries == 2
        # "a" fell out: fresh entry, no prediction.
        assert not predictor.predict_exclusive("a")


class TestStorePairPredictor:
    def test_initially_confident(self):
        predictor = StorePairPredictor()
        assert predictor.should_elide("acq")

    def test_sle_failures_suppress(self):
        predictor = StorePairPredictor(tlr=False)
        predictor.elision_failed("acq", resource=False)
        assert not predictor.should_elide("acq")

    def test_tlr_ignores_data_conflict_failures(self):
        predictor = StorePairPredictor(tlr=True)
        for _ in range(10):
            predictor.elision_failed("acq", resource=False)
        assert predictor.should_elide("acq")

    def test_tlr_resource_failures_suppress(self):
        predictor = StorePairPredictor(tlr=True)
        predictor.elision_failed("acq", resource=True)
        assert not predictor.should_elide("acq")

    def test_success_restores_confidence(self):
        predictor = StorePairPredictor(tlr=False)
        predictor.elision_failed("acq", resource=False)
        predictor.elision_succeeded("acq")
        predictor.elision_succeeded("acq")
        assert predictor.should_elide("acq")


class TestSpeculationCheckpoint:
    def make(self) -> SpeculationCheckpoint:
        return SpeculationCheckpoint(start_time=0, ts=(0, 0), root_depth=0)

    def test_nested_pop_order(self):
        cp = self.make()
        cp.push(ElisionRecord(lock_addr=1, free_value=0, held_value=1,
                              pc="outer", depth=0))
        cp.push(ElisionRecord(lock_addr=2, free_value=0, held_value=1,
                              pc="inner", depth=1))
        assert cp.nest_level == 2
        assert cp.pop_matching(2, 0).pc == "inner"
        assert cp.pop_matching(1, 0).pc == "outer"
        assert cp.committed

    def test_pop_wrong_order_refused(self):
        cp = self.make()
        cp.push(ElisionRecord(lock_addr=1, free_value=0, held_value=1,
                              pc="outer", depth=0))
        cp.push(ElisionRecord(lock_addr=2, free_value=0, held_value=1,
                              pc="inner", depth=1))
        assert cp.pop_matching(1, 0) is None  # outer is not on top

    def test_pop_wrong_value_refused(self):
        cp = self.make()
        cp.push(ElisionRecord(lock_addr=1, free_value=0, held_value=1,
                              pc="x", depth=0))
        assert cp.pop_matching(1, 7) is None

    def test_restart_signal_carries_depth(self):
        signal = RestartSignal(depth=2, reason="test")
        assert signal.depth == 2
        assert "test" in str(signal)
