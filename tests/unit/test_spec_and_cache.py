"""Unit tests for run fingerprinting, the on-disk result cache, and the
stable to_dict/from_dict serialization contracts."""

import json

import pytest

from repro.harness.cache import ResultCache, resolve_cache
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.experiments import (AppResult, SweepLookupError,
                                       SweepResult)
from repro.harness.parallel import FailedRun
from repro.harness.parallel import run
from repro.harness.runner import RunResult
from repro.harness.spec import (RunSpec, config_from_dict, config_to_dict,
                                scheme_from_str, scheme_to_str)
from repro.workloads.microbench import single_counter


def _spec(seed=0, ops=64, cpus=2, scheme=SyncScheme.TLR) -> RunSpec:
    return RunSpec(workload="single-counter",
                   config=SystemConfig(num_cpus=cpus, scheme=scheme,
                                       seed=seed, max_cycles=20_000_000),
                   workload_args={"total_increments": ops})


class TestFingerprint:
    def test_deterministic(self):
        assert _spec().fingerprint() == _spec().fingerprint()

    def test_sensitive_to_seed(self):
        assert _spec(seed=0).fingerprint() != _spec(seed=1).fingerprint()

    def test_sensitive_to_workload_args(self):
        assert _spec(ops=64).fingerprint() != _spec(ops=128).fingerprint()

    def test_sensitive_to_scheme_and_cpus(self):
        base = _spec().fingerprint()
        assert _spec(scheme=SyncScheme.BASE).fingerprint() != base
        assert _spec(cpus=4).fingerprint() != base

    def test_sensitive_to_nested_config(self):
        spec = _spec()
        spec.config.spec.rmw_predictor_enabled = False
        assert spec.fingerprint() != _spec().fingerprint()

    def test_insensitive_to_validate_flag(self):
        a, b = _spec(), _spec()
        b.validate = False
        assert a.fingerprint() == b.fingerprint()

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="no-such-workload"):
            RunSpec(workload="no-such-workload", config=SystemConfig())


class TestSpecSerialization:
    def test_round_trip(self):
        spec = _spec(seed=7)
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_to_dict_is_json_serializable(self):
        json.dumps(_spec().to_dict())

    def test_config_round_trip_strict_ts(self):
        cfg = SystemConfig(scheme=SyncScheme.TLR_STRICT_TS)
        again = config_from_dict(config_to_dict(cfg))
        assert again == cfg
        assert again.spec.single_block_relaxation is False

    def test_scheme_string_forms(self):
        for scheme in SyncScheme:
            assert scheme_from_str(scheme_to_str(scheme)) is scheme
            assert scheme_from_str(scheme.value) is scheme
        with pytest.raises(KeyError, match="unknown scheme"):
            scheme_from_str("NOPE")

    def test_build_workload_uses_config_cpus(self):
        workload = _spec(cpus=2).build_workload()
        assert workload.num_threads == 2


class TestRunResultSerialization:
    def test_round_trip_preserves_cycles_stats_store(self):
        result = run(single_counter(2, 32),
                     SystemConfig(num_cpus=2, max_cycles=20_000_000))
        again = RunResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert again.cycles == result.cycles
        assert again.workload_name == result.workload_name
        assert again.stats.summary() == result.stats.summary()
        assert again.store.snapshot() == result.store.snapshot()
        assert again.config == result.config
        assert again.stats.cpu(0).restart_reasons == \
            result.stats.cpu(0).restart_reasons


class TestSweepAndAppSerialization:
    def _sweep(self) -> SweepResult:
        sweep = SweepResult(name="demo", processor_counts=[2, 4])
        sweep.series[SyncScheme.BASE] = [100, 200]
        sweep.series[SyncScheme.TLR] = [50, None]
        sweep.failures.append(FailedRun(
            workload="single-counter", scheme="TLR", num_cpus=4, seed=0,
            fingerprint="ff", error="SimulationError", message="livelock",
            attempts=3, seeds_tried=[0, 1, 2]))
        return sweep

    def test_sweep_round_trip(self):
        sweep = self._sweep()
        again = SweepResult.from_dict(
            json.loads(json.dumps(sweep.to_dict())))
        assert again.series == sweep.series
        assert again.processor_counts == sweep.processor_counts
        assert again.failures[0].message == "livelock"

    def test_sweep_schemes_serialized_as_strings(self):
        data = self._sweep().to_dict()
        assert set(data["series"]) == {"BASE", "TLR"}

    def test_app_round_trip(self):
        app = AppResult(
            name="demo",
            cycles={SyncScheme.BASE: 1000, SyncScheme.TLR: 500},
            lock_cycles={SyncScheme.BASE: 300, SyncScheme.TLR: 10},
            restarts={SyncScheme.BASE: 0, SyncScheme.TLR: 5},
            resource_fallbacks={SyncScheme.BASE: 0, SyncScheme.TLR: 1},
            critical_sections={SyncScheme.BASE: 10, SyncScheme.TLR: 10})
        again = AppResult.from_dict(json.loads(json.dumps(app.to_dict())))
        assert again.cycles == app.cycles
        assert again.speedup(SyncScheme.TLR) == 2.0


class TestSweepCyclesLookup:
    def _sweep(self) -> SweepResult:
        sweep = SweepResult(name="demo", processor_counts=[2, 4])
        sweep.series[SyncScheme.TLR] = [50, None]
        return sweep

    def test_missing_processor_count_names_available(self):
        with pytest.raises(SweepLookupError, match=r"available processor "
                                                   r"counts: \[2, 4\]"):
            self._sweep().cycles(SyncScheme.TLR, 8)

    def test_missing_scheme_names_available(self):
        with pytest.raises(SweepLookupError, match="available schemes"):
            self._sweep().cycles(SyncScheme.MCS, 2)

    def test_failed_slot_points_at_failures(self):
        with pytest.raises(SweepLookupError, match="failed"):
            self._sweep().cycles(SyncScheme.TLR, 4)

    def test_lookup_error_is_both_key_and_value_error(self):
        # Old callers caught ValueError (list.index); new callers can
        # catch KeyError.  Both must keep working.
        with pytest.raises(ValueError):
            self._sweep().cycles(SyncScheme.TLR, 8)
        with pytest.raises(KeyError):
            self._sweep().cycles(SyncScheme.TLR, 8)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" + "0" * 62) is None
        cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.get("ab" + "0" * 62) == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cd" + "0" * 62, {"x": 1})
        assert cache.invalidate("cd" + "0" * 62)
        assert cache.get("cd" + "0" * 62) is None
        assert not cache.invalidate("cd" + "0" * 62)

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        fingerprint = "ef" + "0" * 62
        cache.put(fingerprint, {"x": 1})
        cache._path(fingerprint).write_text("{not json")
        assert cache.get(fingerprint) is None
        assert not cache._path(fingerprint).exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, {})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_default_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "here"))
        assert ResultCache().root == tmp_path / "here"

    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(tmp_path).root == tmp_path
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert isinstance(resolve_cache(True), ResultCache)


class TestCacheVersioning:
    """Entries live under a per-schema directory; superseded schemas
    (and the original unversioned layout) are prunable garbage."""

    @staticmethod
    def _plant_stale(root):
        """One entry under an old schema dir and one under the legacy
        unversioned two-char fan-out; returns their parent dirs."""
        old_version = root / "v1" / "ab"
        old_version.mkdir(parents=True)
        (old_version / ("ab" + "0" * 62 + ".json")).write_text("{}")
        legacy = root / "cd"
        legacy.mkdir()
        (legacy / ("cd" + "0" * 62 + ".json")).write_text("{}")
        return old_version.parent, legacy

    def test_entries_land_under_current_version_dir(self, tmp_path):
        from repro.harness.spec import FINGERPRINT_VERSION

        cache = ResultCache(tmp_path)
        fingerprint = "ab" + "0" * 62
        cache.put(fingerprint, {"x": 1})
        path = cache._path(fingerprint)
        assert path.is_file()
        assert path.parent.parent == tmp_path / f"v{FINGERPRINT_VERSION}"

    def test_prune_removes_stale_keeps_current(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ee" + "0" * 62, {"keep": 1})
        old_dir, legacy_dir = self._plant_stale(tmp_path)
        assert cache.prune() == 2
        assert not old_dir.exists() and not legacy_dir.exists()
        assert cache.get("ee" + "0" * 62) == {"keep": 1}
        assert len(cache) == 1
        assert cache.prune() == 0  # idempotent

    def test_first_miss_prunes_once_per_instance(self, tmp_path):
        cache = ResultCache(tmp_path)
        old_dir, legacy_dir = self._plant_stale(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert not old_dir.exists() and not legacy_dir.exists()
        # Only the first miss pays the scan: stale dirs planted later
        # survive further misses on the same instance.
        old_dir, _ = self._plant_stale(tmp_path)
        assert cache.get("ff" + "1" * 62) is None
        assert old_dir.exists()

    def test_len_counts_current_schema_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" + "0" * 62, {})
        self._plant_stale(tmp_path)
        assert len(cache) == 1

    def test_clear_spans_all_schema_versions(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" + "0" * 62, {})
        self._plant_stale(tmp_path)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_stale_version_entry_is_never_a_hit(self, tmp_path):
        # The same fingerprint cached under an old schema dir must not
        # satisfy a current-schema lookup.
        fingerprint = "ab" + "0" * 62
        stale = tmp_path / "v1" / "ab" / f"{fingerprint}.json"
        stale.parent.mkdir(parents=True)
        stale.write_text('{"stale": true}')
        assert ResultCache(tmp_path).get(fingerprint) is None


class TestCacheTtl:
    """``prune(ttl=...)`` ages out current-version entries by mtime."""

    @staticmethod
    def _put_aged(cache, fingerprint, age_seconds):
        import os
        import time
        cache.put(fingerprint, {})
        stamp = time.time() - age_seconds
        os.utime(cache._path(fingerprint), (stamp, stamp))

    def test_expired_entries_removed_fresh_kept(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._put_aged(cache, "aa" + "0" * 62, age_seconds=3600)
        self._put_aged(cache, "bb" + "0" * 62, age_seconds=10)
        assert cache.prune(ttl=600) == 1
        assert cache.get("aa" + "0" * 62) is None
        assert cache.get("bb" + "0" * 62) == {}

    def test_eviction_is_oldest_first(self, tmp_path):
        # All three expired: the removal count covers them all, and the
        # (mtime-sorted) order means a crash mid-prune loses the oldest
        # results first.
        cache = ResultCache(tmp_path)
        for i, age in enumerate((300, 100, 200)):
            self._put_aged(cache, f"{i:02d}" + "c" * 62, age)
        assert cache.prune(ttl=50) == 3
        assert len(cache) == 0

    def test_no_ttl_means_no_age_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._put_aged(cache, "dd" + "0" * 62, age_seconds=10**6)
        assert cache.prune() == 0
        assert cache.get("dd" + "0" * 62) == {}

    def test_ttl_also_prunes_superseded_versions(self, tmp_path):
        cache = ResultCache(tmp_path)
        old = tmp_path / "v1" / "ab"
        old.mkdir(parents=True)
        (old / ("ab" + "0" * 62 + ".json")).write_text("{}")
        self._put_aged(cache, "ee" + "0" * 62, age_seconds=3600)
        assert cache.prune(ttl=600) == 2


class TestJobPriority:
    """JobSpec.priority orders serve-queue dispatch but never identity."""

    def _spec(self, priority=0, seeds=1):
        from repro.harness.spec import JobSpec
        return JobSpec(kind="verify", params={"seeds": seeds, "ops": 8},
                       priority=priority)

    def test_priority_excluded_from_fingerprint(self):
        urgent = self._spec(priority=9)
        lazy = self._spec(priority=0)
        assert urgent.fingerprint() == lazy.fingerprint()

    def test_priority_round_trips(self):
        from repro.harness.spec import JobSpec
        spec = self._spec(priority=3)
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again.priority == 3
        # Default priority stays out of the serialized form entirely,
        # so pre-priority payload bytes are unchanged.
        assert "priority" not in self._spec(priority=0).to_dict()

    def test_priority_must_be_an_int(self):
        from repro.harness.spec import JobSpec
        with pytest.raises(TypeError, match="priority"):
            JobSpec(kind="verify", params={}, priority="high")
        with pytest.raises(TypeError, match="priority"):
            JobSpec(kind="verify", params={}, priority=True)

    def test_queue_drains_highest_priority_first_ties_fifo(self):
        from repro.serve.queue import JobQueue
        queue = JobQueue(workers=1, start=False)
        ids = {}
        for name, (priority, seeds) in {
                "low": (0, 1), "urgent": (5, 2),
                "mid": (1, 3), "urgent2": (5, 4)}.items():
            job, coalesced = queue.submit(self._spec(priority, seeds))
            assert not coalesced
            ids[job.id] = name
        drained = [ids[queue._pending.get_nowait()[2]] for _ in range(4)]
        assert drained == ["urgent", "urgent2", "mid", "low"]

    def test_stop_sentinel_sorts_after_pending_jobs(self):
        from repro.serve.queue import JobQueue
        queue = JobQueue(workers=1, start=False)
        queue.submit(self._spec(0, seeds=9))
        queue._stopped = True
        queue._pending.put((float("inf"), next(queue._seq), None))
        first = queue._pending.get_nowait()
        assert first[2] is not None     # the real job drains first
        assert queue._pending.get_nowait()[2] is None

    def test_priority_does_not_defeat_coalescing(self):
        from repro.serve.queue import JobQueue
        queue = JobQueue(workers=1, start=False)
        first, coalesced_a = queue.submit(self._spec(priority=0, seeds=7))
        second, coalesced_b = queue.submit(self._spec(priority=9, seeds=7))
        assert not coalesced_a and coalesced_b
        assert second is first
