"""Tests for the simulator-throughput harness (``repro perf``)."""

import json

import pytest

from repro.harness import perf
from repro.harness.config import SyncScheme


@pytest.fixture(scope="module")
def quick_payload():
    """One real quick-size measurement, shared across the module (the
    simulation dominates the test's cost)."""
    baseline = {"results": {"fig09_single_counter":
                            {"events_per_sec": 1000, "wall_s": 1.0}}}
    return perf.run_perf(quick=True, repeats=1, baseline=baseline,
                         ab=True)


class TestSpecs:
    def test_profiled_workloads(self):
        specs = perf.perf_specs()
        assert set(specs) == {"fig09_single_counter", "fig10_linked_list",
                              "policy_grid_cell", "big_machine"}
        for spec in specs.values():
            assert spec.config.scheme is SyncScheme.TLR
            assert spec.config.seed == 0

    def test_big_machine_is_the_scale_point(self):
        spec = perf.perf_specs()["big_machine"]
        assert spec.config.num_cpus == 64
        assert spec.config.protocol == "directory"

    def test_specs_are_backend_neutral(self):
        # measure_spec applies the backend override; the specs stay on
        # the default so one spec serves both sides of an A/B.
        for spec in perf.perf_specs().values():
            assert spec.config.kernel_backend == "reference"

    def test_quick_sizes_are_smaller(self):
        full = perf.perf_specs(quick=False)
        quick = perf.perf_specs(quick=True)
        for name in full:
            full_size = next(iter(full[name].workload_args.values()))
            quick_size = next(iter(quick[name].workload_args.values()))
            assert quick_size < full_size

    def test_policy_cell_uses_backoff(self):
        spec = perf.perf_specs()["policy_grid_cell"]
        assert spec.config.spec.contention_policy == "backoff"

    def test_specs_are_cacheable_runs(self):
        # A perf workload must fingerprint like any other RunSpec so the
        # artifact's fingerprint column is comparable across commits.
        specs = perf.perf_specs(quick=True)
        fingerprints = {spec.fingerprint() for spec in specs.values()}
        assert len(fingerprints) == len(specs)


class TestMeasurement:
    def test_payload_matches_bench_schema(self, quick_payload):
        assert quick_payload["bench"] == "perf"
        assert set(quick_payload) == {"bench", "config", "results",
                                      "wall_seconds", "schema"}
        assert quick_payload["config"]["quick"] is True
        json.dumps(quick_payload)  # artifact must be serializable

    def test_every_workload_measured(self, quick_payload):
        results = quick_payload["results"]
        assert set(results) == set(perf.perf_specs())
        for row in results.values():
            assert row["events"] > 0
            assert row["cycles"] > 0
            assert row["wall_s"] > 0
            assert row["events_per_sec"] == pytest.approx(
                row["events"] / row["wall_s"], rel=0.01)
            assert row["fingerprint"]

    def test_peak_rss_reported_on_posix(self, quick_payload):
        for row in quick_payload["results"].values():
            assert row["peak_rss_kb"] is None or row["peak_rss_kb"] > 0

    def test_run_shape_is_deterministic(self, quick_payload):
        # Same spec, fresh machine: wall time may move, the simulated
        # shape (events, cycles, fingerprint) may not.
        spec = perf.perf_specs(quick=True)["policy_grid_cell"]
        again = perf.measure_spec(spec, repeats=1)
        row = quick_payload["results"]["policy_grid_cell"]
        assert again["events"] == row["events"]
        assert again["cycles"] == row["cycles"]
        assert again["fingerprint"] == row["fingerprint"]

    def test_baseline_speedup_recorded_under_config(self, quick_payload):
        config = quick_payload["config"]
        assert "baseline" in config and "speedup_events_per_sec" in config
        speedup = config["speedup_events_per_sec"]
        # Only the workload present in the baseline gets a ratio.
        assert set(speedup) == {"fig09_single_counter"}
        current = quick_payload["results"]["fig09_single_counter"]
        assert speedup["fig09_single_counter"] == pytest.approx(
            current["events_per_sec"] / 1000, rel=0.01)

    def test_trend_skips_machine_local_fields(self, quick_payload):
        # baseline/speedup live under config so the cross-commit trend
        # report never diffs one machine's numbers against another's.
        from repro.harness.trend import flatten_results

        flat = flatten_results(quick_payload)
        assert not any("baseline" in path or "speedup" in path
                       for path in flat)
        assert "results.fig09_single_counter.events_per_sec" in flat


class TestThroughputCheck:
    def _payload(self, eps):
        return {"results": {"w": {"events_per_sec": eps}}}

    def test_within_budget_passes(self):
        assert perf.check_throughput(self._payload(80),
                                     self._payload(100)) == []

    def test_beyond_budget_fails_with_context(self):
        failures = perf.check_throughput(self._payload(60),
                                         self._payload(100))
        assert len(failures) == 1
        assert "w" in failures[0] and "40%" in failures[0]

    def test_max_drop_is_configurable(self):
        assert perf.check_throughput(self._payload(60), self._payload(100),
                                     max_drop=0.5) == []

    def test_missing_or_zero_reference_is_skipped(self):
        assert perf.check_throughput(self._payload(60),
                                     {"results": {}}) == []
        assert perf.check_throughput(self._payload(60),
                                     self._payload(0)) == []

    def test_improvement_never_fails(self):
        assert perf.check_throughput(self._payload(500),
                                     self._payload(100)) == []


class TestBackendAB:
    def test_results_hold_reference_rows(self, quick_payload):
        # Trend compatibility: the top-level block is always the
        # reference backend, A/B extras live under config.
        assert quick_payload["config"]["backend"] == "ab"
        assert set(quick_payload["config"]["backends"]) == {"batched"}

    def test_backends_are_bit_identical(self, quick_payload):
        assert perf.check_backend_fingerprints(quick_payload) == []
        batched = quick_payload["config"]["backends"]["batched"]
        for name, row in quick_payload["results"].items():
            assert batched[name]["fingerprint"] == row["fingerprint"]
            assert batched[name]["events"] == row["events"]

    def test_speedup_table_recorded(self, quick_payload):
        speedups = quick_payload["config"]["speedup_batched_vs_reference"]
        assert set(speedups) == set(quick_payload["results"])
        for name, ratio in speedups.items():
            batched = quick_payload["config"]["backends"]["batched"][name]
            reference = quick_payload["results"][name]
            assert ratio == pytest.approx(
                batched["events_per_sec"] / reference["events_per_sec"],
                abs=0.002)

    def test_fingerprint_mismatch_is_reported(self, quick_payload):
        import copy
        broken = copy.deepcopy(quick_payload)
        row = broken["config"]["backends"]["batched"]["big_machine"]
        row["fingerprint"] = "deadbeef" * 8
        row["events"] += 1
        failures = perf.check_backend_fingerprints(broken)
        assert len(failures) == 2  # fingerprint + run shape
        assert all("big_machine" in failure for failure in failures)

    def test_single_backend_payload_has_no_ab_block(self):
        payload = {"results": {"w": {"fingerprint": "x"}}, "config": {}}
        assert perf.check_backend_fingerprints(payload) == []

    def test_measure_spec_backend_override(self):
        spec = perf.perf_specs(quick=True)["policy_grid_cell"]
        rows = {b: perf.measure_spec(spec, repeats=1, backend=b)
                for b in ("reference", "batched")}
        assert rows["reference"]["fingerprint"] \
            == rows["batched"]["fingerprint"]


class TestReferenceLoading:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "ref.json"
        path.write_text(json.dumps({"bench": "perf", "results": {}}))
        assert perf.load_reference(str(path))["bench"] == "perf"

    def test_missing_reference_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no perf reference"):
            perf.load_reference(str(tmp_path / "absent.json"),
                                repo=tmp_path)


class TestRendering:
    def test_table_lists_workloads_and_speedups(self, quick_payload):
        text = perf.render_table(quick_payload)
        assert "events/s" in text
        for name in perf.perf_specs():
            assert name in text
        assert "speedup vs recorded baseline" in text

    def test_table_shows_both_backend_blocks(self, quick_payload):
        text = perf.render_table(quick_payload)
        assert "backend: reference" in text
        assert "backend: batched" in text
        assert "batched vs reference (interleaved A/B)" in text

    def test_single_backend_table_has_no_backend_headers(self):
        payload = {"results": {"w": {
            "events_per_sec": 10, "wall_s": 1.0, "events": 10,
            "cycles": 5, "fingerprint": "ab" * 32}}, "config": {}}
        text = perf.render_table(payload)
        assert "backend:" not in text
