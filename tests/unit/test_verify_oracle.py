"""Unit tests for the serializability oracle and its recorder, using
synthetic histories (no simulator involved)."""

import pytest

from repro.verify.oracle import SerializabilityOracle
from repro.verify.recorder import (COMMIT, PLAIN_WRITE, CommittedTxn,
                                   FootprintRecorder, ReadObservation)

LINE = 0x10
ADDR = LINE * 8  # word 0 of LINE under the 8-words-per-line mapping


def _obs(addr, value, writer=None, line_writer=None, time=0):
    from repro.cpu.isa import line_of
    return ReadObservation(addr=addr, value=value, line=line_of(addr),
                           writer=writer, line_writer=line_writer,
                           epoch=0, time=time)


def _recorder(txns, plain=()):
    """Assemble a FootprintRecorder from synthetic committed txns and
    optional plain writes interleaved by time."""
    recorder = FootprintRecorder()
    recorder.committed = txns
    entries = [(t.commit_time, (COMMIT, t.txn_id)) for t in txns]
    entries += [(time, (PLAIN_WRITE, time, addr, value))
                for time, addr, value in plain]
    recorder.log = [entry for _, entry in sorted(entries,
                                                 key=lambda p: p[0])]
    recorder.plain_writes = len(plain)
    return recorder


class TestWitnessReplay:
    def test_serial_counter_history_passes(self):
        txns = [
            CommittedTxn(0, cpu=0, ts=None, commit_time=100,
                         reads=[_obs(ADDR, 0)], writes={ADDR: 1}),
            CommittedTxn(1, cpu=1, ts=None, commit_time=200,
                         reads=[_obs(ADDR, 1, writer=0, line_writer=0)],
                         writes={ADDR: 2}),
        ]
        report = SerializabilityOracle(_recorder(txns)).check({ADDR: 2})
        assert report.ok, [str(v) for v in report.violations]
        assert report.num_txns == 2
        # 0 -> 1 is both ww (version order) and wr (reads-from); the
        # graph dedupes per (src, dst) so it is counted once, as ww.
        assert report.edges["ww"] == 1

    def test_lost_update_is_a_stale_read(self):
        # Both increments read 0 -- the second commit observed a value
        # the witness order says was already 1.
        txns = [
            CommittedTxn(0, cpu=0, ts=None, commit_time=100,
                         reads=[_obs(ADDR, 0)], writes={ADDR: 1}),
            CommittedTxn(1, cpu=1, ts=None, commit_time=200,
                         reads=[_obs(ADDR, 0)], writes={ADDR: 1}),
        ]
        report = SerializabilityOracle(_recorder(txns)).check({ADDR: 1})
        assert not report.ok
        assert any(v.kind == "stale-read" for v in report.violations)

    def test_final_state_mismatch_detected(self):
        txns = [CommittedTxn(0, cpu=0, ts=None, commit_time=100,
                             reads=[], writes={ADDR: 7})]
        report = SerializabilityOracle(_recorder(txns)).check({ADDR: 9})
        assert any(v.kind == "final-state" for v in report.violations)

    def test_plain_writes_replay_in_time_order(self):
        txns = [CommittedTxn(0, cpu=0, ts=None, commit_time=150,
                             reads=[_obs(ADDR, 5)], writes={ADDR: 6})]
        report = SerializabilityOracle(
            _recorder(txns, plain=[(50, ADDR, 5)])).check({ADDR: 6})
        assert report.ok, [str(v) for v in report.violations]

    def test_read_of_preinitialized_zero_passes(self):
        txns = [CommittedTxn(0, cpu=0, ts=None, commit_time=10,
                             reads=[_obs(ADDR, 0)], writes={})]
        assert SerializabilityOracle(_recorder(txns)).check({}).ok


class TestConflictGraph:
    def test_rw_cycle_detected(self):
        # Classic write-skew on two lines: each txn reads the initial
        # version of the line the other one writes -- value replay can
        # stay silent (disjoint write sets), but no serial order exists
        # at line granularity.
        line_a, line_b = 0x10, 0x20
        addr_a, addr_b = line_a * 8, line_b * 8
        txns = [
            CommittedTxn(0, cpu=0, ts=None, commit_time=100,
                         reads=[_obs(addr_b, 0)], writes={addr_a: 1}),
            CommittedTxn(1, cpu=1, ts=None, commit_time=200,
                         reads=[_obs(addr_a, 0)], writes={addr_b: 1}),
        ]
        report = SerializabilityOracle(_recorder(txns)).check(
            {addr_a: 1, addr_b: 1})
        assert any(v.kind == "cycle" for v in report.violations)
        cycle = next(v for v in report.violations if v.kind == "cycle")
        assert "txn0" in cycle.detail and "txn1" in cycle.detail

    def test_acyclic_chain_passes(self):
        txns = [
            CommittedTxn(i, cpu=i % 2, ts=None, commit_time=100 * (i + 1),
                         reads=[_obs(ADDR, i,
                                     writer=i - 1 if i else None,
                                     line_writer=i - 1 if i else None)],
                         writes={ADDR: i + 1})
            for i in range(4)
        ]
        report = SerializabilityOracle(_recorder(txns)).check({ADDR: 4})
        assert report.ok, [str(v) for v in report.violations]
        assert report.edges["ww"] == 3

    def test_max_violations_caps_reporting(self):
        txns = [
            CommittedTxn(i, cpu=0, ts=None, commit_time=100 * (i + 1),
                         reads=[_obs(ADDR, 0)], writes={ADDR: 1})
            for i in range(10)
        ]
        report = SerializabilityOracle(
            _recorder(txns), max_violations=3).check({ADDR: 1})
        assert len(report.violations) == 3

    def test_summary_mentions_status(self):
        report = SerializabilityOracle(_recorder([])).check({})
        assert "PASS" in report.summary()
