"""Tests for the observability subsystem (``repro.obs``): the metric
primitives, the machine collector, and the guarantee that attaching
telemetry never changes what a run computes."""

import pytest

from repro.harness.config import SyncScheme
from repro.harness.machine import Machine
from repro.harness.runner import (RunResult, execute_workload,
                                  result_fingerprint)
from repro.obs import (DEPTH_BUCKETS, Histogram, MachineMetrics,
                       MetricsRegistry, openmetrics_from_dict,
                       summarize_metrics)
from repro.workloads.microbench import linked_list, single_counter

from tests.conftest import small_config


class TestPrimitives:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(3)
        assert registry.counter("hits") is counter and counter.value == 4
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2 and gauge.max == 5

    def test_histogram_buckets_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        for value in (0, 1, 2, 3, 4, 99):
            hist.observe(value)
        assert hist.counts == [2, 1, 2]  # {0,1}, {2}, {3,4}
        assert hist.overflow == 1        # 99
        assert hist.count == 6 and hist.min == 0 and hist.max == 99
        assert hist.mean == pytest.approx(109 / 6)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(4, 2, 1))
        with pytest.raises(ValueError):
            Histogram("dup", buckets=(1, 1, 2))

    def test_histogram_redeclare_with_other_buckets_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("depth", buckets=DEPTH_BUCKETS)
        registry.histogram("depth", buckets=DEPTH_BUCKETS)  # idempotent
        with pytest.raises(ValueError):
            registry.histogram("depth", buckets=(1, 2, 3))

    def test_to_dict_and_summarize(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(10, 20)).observe(15)
        exported = registry.to_dict()
        assert exported["counters"] == {"a": 2}
        assert exported["gauges"] == {"g": {"value": 7, "max": 7}}
        assert exported["histograms"]["h"]["counts"] == [0, 1]
        flat = summarize_metrics(exported)
        assert flat["a"] == 2
        assert flat["g.last"] == 7 and flat["g.max"] == 7
        assert flat["h.count"] == 1 and flat["h.mean"] == 15
        assert summarize_metrics(None) == {}


class TestMachineCollector:
    def _collected(self, workload):
        machine = Machine(small_config(4, SyncScheme.TLR))
        collector = MachineMetrics().attach(machine)
        machine.run_workload(workload)
        return machine, collector.finalize(machine)

    def test_deferral_and_retry_histograms_populate(self):
        machine, metrics = self._collected(single_counter(4, 128))
        hist = metrics["histograms"]
        depth = hist["defer.queue_depth"]
        assert depth["count"] == machine.stats.total("requests_deferred")
        assert depth["count"] > 0 and depth["max"] >= 1
        retries = hist["nack.retries_per_request"]
        assert retries["count"] > 0  # one sample per completed miss
        assert hist["defer.latency"]["count"] == depth["count"]
        assert hist["miss.latency"]["count"] > 0

    def test_counters_match_machine_stats(self):
        machine, metrics = self._collected(linked_list(4, 128))
        counters = metrics["counters"]
        stats = machine.stats
        assert counters["txn.commits"] == stats.total("elisions_committed")
        assert counters["defer.count"] == stats.total("requests_deferred")
        assert counters["defer.serviced"] == counters["defer.count"]
        assert counters["restart.count"] == stats.restarts
        reason_counts = {key[len("restart.reason."):]: value
                         for key, value in counters.items()
                         if key.startswith("restart.reason.")}
        assert reason_counts == stats.reason_totals()
        assert sum(reason_counts.values()) == stats.restarts

    def test_policy_telemetry_exported_as_gauges(self):
        _, metrics = self._collected(single_counter(4, 128))
        gauges = metrics["gauges"]
        assert "policy.retries" in gauges
        assert "policy.relaxation_deferrals" in gauges
        assert metrics["meta"]["policy"] == "timestamp"
        assert "TLR" in metrics["meta"]["scheme"]


class TestObservationPurity:
    """Telemetry describes a run; it must never change one."""

    def test_metrics_on_off_fingerprints_identical(self):
        cfg_on = small_config(4, SyncScheme.TLR)
        cfg_off = small_config(4, SyncScheme.TLR)
        cfg_off.metrics = False
        on = execute_workload(single_counter(4, 96), cfg_on)
        off = execute_workload(single_counter(4, 96), cfg_off)
        assert result_fingerprint(on) == result_fingerprint(off)
        assert on.metrics is not None
        assert off.metrics is None

    def test_metrics_excluded_from_fingerprint(self):
        result = execute_workload(single_counter(2, 64),
                                   small_config(2, SyncScheme.TLR))
        fingerprint = result_fingerprint(result)
        result.metrics = {"counters": {"tampered": 1}}
        assert result_fingerprint(result) == fingerprint

    def test_run_result_round_trips_metrics(self):
        result = execute_workload(single_counter(2, 64),
                                   small_config(2, SyncScheme.TLR))
        clone = RunResult.from_dict(result.to_dict())
        assert clone.metrics == result.metrics
        assert result_fingerprint(clone) == result_fingerprint(result)

    def test_deterministic_across_identical_runs(self):
        first = execute_workload(single_counter(4, 96),
                                  small_config(4, SyncScheme.TLR))
        second = execute_workload(single_counter(4, 96),
                                   small_config(4, SyncScheme.TLR))
        assert first.metrics == second.metrics


class TestOpenMetrics:
    """OpenMetrics text exposition of a metrics export."""

    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("txn.commits").inc(4)
        registry.gauge("defer.depth").set(3)
        registry.gauge("defer.depth").set(1)
        hist = registry.histogram("defer.latency", buckets=(1, 2, 4))
        for value in (1, 2, 3, 99):
            hist.observe(value)
        return registry

    def test_counter_rendered_with_total_suffix(self):
        text = self._registry().to_openmetrics()
        assert "# TYPE txn_commits counter" in text
        assert "txn_commits_total 4" in text

    def test_gauge_rendered_with_last_and_max(self):
        text = self._registry().to_openmetrics()
        assert "defer_depth 1" in text.splitlines()
        assert "defer_depth_max 3" in text.splitlines()

    def test_histogram_buckets_are_cumulative(self):
        text = self._registry().to_openmetrics()
        assert 'defer_latency_bucket{le="1"} 1' in text
        assert 'defer_latency_bucket{le="2"} 2' in text
        assert 'defer_latency_bucket{le="4"} 3' in text
        # +Inf bucket equals the total count (overflow included).
        assert 'defer_latency_bucket{le="+Inf"} 4' in text
        assert "defer_latency_sum 105" in text
        assert "defer_latency_count 4" in text

    def test_ends_with_eof_line(self):
        text = self._registry().to_openmetrics()
        assert text.endswith("# EOF\n")
        assert openmetrics_from_dict(None) == "# EOF\n"
        assert openmetrics_from_dict({}) == "# EOF\n"

    def test_meta_section_becomes_target_info(self):
        payload = self._registry().to_dict()
        payload["meta"] = {"scheme": "BASE+SLE+TLR", "policy": "timestamp"}
        text = openmetrics_from_dict(payload)
        assert ('target_info{policy="timestamp",scheme="BASE+SLE+TLR"} 1'
                in text)

    def test_names_are_legalized(self):
        registry = MetricsRegistry()
        registry.counter("restart.reason.lock-acquired").inc()
        text = registry.to_openmetrics()
        assert "restart_reason_lock_acquired_total 1" in text

    def test_finalized_machine_payload_renders(self):
        machine = Machine(small_config(4, SyncScheme.TLR))
        collector = MachineMetrics().attach(machine)
        machine.run_workload(single_counter(4, 128))
        text = openmetrics_from_dict(collector.finalize(machine))
        assert "target_info{" in text
        assert "txn_commits_total" in text
        assert 'defer_queue_depth_bucket{le="+Inf"}' in text
        assert text.endswith("# EOF\n")
