"""Tests for the memory-side L2 model and MCS fairness behaviour."""

from repro.coherence.memory import MemoryController
from repro.harness.config import MemoryConfig, SyncScheme
from repro.sim.kernel import Simulator
from repro.sim.stats import SimStats
from repro.workloads.common import AddressSpace

from tests.conftest import run_threads, small_config


def make_memory(capacity=0):
    sim = Simulator()
    return MemoryController(sim, MemoryConfig(), SimStats(),
                            l2_capacity_lines=capacity)


class TestL2Model:
    def test_cold_then_warm(self):
        memory = make_memory()
        cold = memory.supply_latency(5)
        warm = memory.supply_latency(5)
        assert cold >= memory.config.dram_latency
        assert warm <= memory.config.l2_latency + 4
        assert memory.l2_misses == 1 and memory.l2_hits == 1

    def test_unbounded_capacity_never_evicts(self):
        memory = make_memory(capacity=0)
        for line in range(1000):
            memory.supply_latency(line)
        assert all(memory.supply_latency(line)
                   <= memory.config.l2_latency + 4
                   for line in range(1000))

    def test_bounded_capacity_evicts_lru(self):
        memory = make_memory(capacity=2)
        memory.supply_latency(1)
        memory.supply_latency(2)
        memory.supply_latency(3)     # evicts 1
        assert memory.supply_latency(1) >= memory.config.dram_latency
        # 2 was evicted when 1 was refetched; 3 is still warm.
        assert memory.supply_latency(3) <= memory.config.l2_latency + 4

    def test_writeback_installs(self):
        memory = make_memory(capacity=4)
        memory.writeback(9)
        assert memory.supply_latency(9) <= memory.config.l2_latency + 4


class TestMcsFairness:
    def test_handoff_follows_arrival_order(self):
        """MCS grants the lock in queue order: with three contenders
        arriving in a known order, critical sections execute in that
        order (the software FIFO the paper credits MCS's scalability
        to)."""
        space = AddressSpace()
        lock = space.alloc_word()
        order_word = space.alloc_word()
        entered = []

        def contender(tid, delay):
            def thread(env):
                yield env.compute(delay)

                def body(env):
                    yield env.read(order_word, pc="m.ld")
                    entered.append(tid)
                    yield env.compute(800)  # hold long enough to queue all
                    yield env.write(order_word, tid, pc="m.st")

                yield from env.critical(lock, body, pc="m")

            return thread

        cfg = small_config(3, SyncScheme.MCS)
        run_threads([contender(0, 100), contender(1, 400),
                     contender(2, 700)], cfg, space=space)
        assert entered == [0, 1, 2]

    def test_mcs_lock_word_returns_to_null(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()

        def thread(env):
            def body(env):
                value = yield env.read(counter, pc="c.ld")
                yield env.write(counter, value + 1, pc="c.st")

            for _ in range(5):
                yield from env.critical(lock, body, pc="c")
                yield env.compute(env.fair_delay())

        machine = run_threads([thread] * 3,
                              small_config(3, SyncScheme.MCS), space=space)
        assert machine.store.read(counter) == 15
        assert machine.store.read(lock) == 0  # tail back to NULL
