"""Unit tests for the discrete-event kernel."""

import random

import pytest

from repro.sim.kernel import (KNOWN_BACKENDS, BatchedSimulator,
                              DeadlockError, Simulator, SimulationError,
                              resolve_backend)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_cycle_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(7, fired.append, tag)
    sim.run()
    assert fired == list(range(5))


def test_now_advances_with_events():
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda: seen.append(sim.now))
    sim.schedule(12, lambda: seen.append(sim.now))
    end = sim.run()
    assert seen == [5, 12]
    assert end == 12


def test_zero_delay_runs_after_current_cycle_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0, fired.append, "chained")

    sim.schedule(1, first)
    sim.schedule(1, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "chained"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(5, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_events_fired_counts_live_events_only():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    dead = sim.schedule(2, lambda: None)
    dead.cancel()
    sim.schedule(3, lambda: None)
    sim.run()
    assert sim.events_fired == 2


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(10, lambda: fired.append(("inner", sim.now)))

    sim.schedule(3, outer)
    sim.run()
    assert fired == [("outer", 3), ("inner", 13)]


def test_run_until_pauses_and_resumes():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(50, fired.append, "late")
    sim.run(until=10)
    assert fired == ["early"]
    sim.run()
    assert fired == ["early", "late"]


def test_max_cycles_overrun_raises():
    sim = Simulator(max_cycles=10)
    sim.schedule(100, lambda: None)
    with pytest.raises(SimulationError):
        sim.run()


def test_deadlock_detection_with_incomplete_actor():
    class Actor:
        done = False

        def __repr__(self):
            return "<stuck>"

    sim = Simulator()
    sim.add_actor(Actor())
    sim.schedule(1, lambda: None)
    with pytest.raises(DeadlockError, match="stuck"):
        sim.run()


def test_clean_finish_with_completed_actor():
    class Actor:
        done = False

    actor = Actor()
    sim = Simulator()
    sim.add_actor(actor)

    def finish():
        actor.done = True

    sim.schedule(4, finish)
    assert sim.run() == 4


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    dead = sim.schedule(2, lambda: None)
    dead.cancel()
    assert sim.pending() == 1


def test_arguments_passed_to_callback():
    sim = Simulator()
    got = []
    sim.schedule(1, lambda a, b: got.append((a, b)), 1, "two")
    sim.run()
    assert got == [(1, "two")]


def test_run_until_at_max_cycles_returns_for_resumption():
    """Regression: ``run(until=N)`` with ``N == max_cycles`` used to
    raise SimulationError instead of pausing -- an explicit ``until``
    is a pause request even at the budget boundary."""
    sim = Simulator(max_cycles=10)
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(50, fired.append, "late")  # beyond the budget
    assert sim.run(until=10) == 10  # pauses instead of raising
    assert fired == ["early"]
    with pytest.raises(SimulationError):
        sim.run()  # resuming without a pause request overruns at 10


def test_run_until_past_max_cycles_still_raises():
    sim = Simulator(max_cycles=10)
    sim.schedule(100, lambda: None)
    with pytest.raises(SimulationError):
        sim.run(until=11)


def test_choice_hook_reorders_same_cycle_events():
    sim = Simulator()
    fired = []
    # Reverse priority: later-scheduled events get lower prio values.
    order = iter([3, 2, 1])
    sim.set_choice_hook(lambda label: next(order))
    for tag in "abc":
        sim.schedule(7, fired.append, tag)
    sim.run()
    assert fired == ["c", "b", "a"]


def test_choice_hook_ties_fall_back_to_fifo():
    sim = Simulator()
    fired = []
    sim.set_choice_hook(lambda label: 0)
    for tag in range(4):
        sim.schedule(7, fired.append, tag)
    sim.run()
    assert fired == list(range(4))


def test_choice_hook_never_reorders_across_cycles():
    sim = Simulator()
    fired = []
    sim.set_choice_hook(lambda label: 99)
    sim.schedule(5, fired.append, "early")
    sim.set_choice_hook(lambda label: 0)
    sim.schedule(6, fired.append, "late")
    sim.run()
    assert fired == ["early", "late"]


# ----------------------------------------------------------------------
# Allocation optimizations: free-list recycling and lazy-cancel
# compaction must be observationally pure (identical firing order).
# ----------------------------------------------------------------------
class TestEventRecycling:
    def test_reaped_cancelled_event_is_reused(self):
        sim = Simulator()
        dead = sim.schedule(1, lambda: None)
        dead.cancel()
        sim.run()  # reaps the cancelled event onto the free list
        recycled = sim.schedule(5, lambda: None)
        assert recycled is dead
        assert recycled.alive and recycled.time == 5

    def test_fired_event_is_reused_by_callback_schedule(self):
        # Recycling happens *before* dispatch, so a callback that
        # schedules gets back the very object that just fired.
        sim = Simulator()
        children = []
        first = sim.schedule(1, lambda: children.append(
            sim.schedule(1, lambda: None)))
        sim.run()
        assert children[0] is first

    def test_recycling_disabled_allocates_fresh_objects(self):
        sim = Simulator(recycle_events=False)
        dead = sim.schedule(1, lambda: None)
        dead.cancel()
        sim.run()
        assert sim.schedule(5, lambda: None) is not dead

    def test_recycled_event_state_fully_reinitialized(self):
        sim = Simulator()
        fired = []
        dead = sim.schedule(1, fired.append, "stale-arg", label="old")
        dead.cancel()
        sim.run()
        reused = sim.schedule(2, fired.append, "fresh", label="new")
        assert reused is dead
        assert reused.label == "new"
        sim.run()
        assert fired == ["fresh"]


class TestCompaction:
    def test_compaction_drops_dead_events_from_queue(self):
        sim = Simulator(compact_dead_min=1)
        handles = [sim.schedule(t, lambda: None) for t in range(1, 5)]
        for handle in handles[:3]:
            handle.cancel()
        # The most aggressive threshold has compacted by now: no dead
        # event is left in the heap.
        assert len(sim._queue) == sim.pending() == 1

    def test_disabled_compaction_keeps_dead_events_queued(self):
        sim = Simulator(compact_dead_min=None)
        handles = [sim.schedule(t, lambda: None) for t in range(1, 5)]
        for handle in handles[:3]:
            handle.cancel()
        assert len(sim._queue) == 4 and sim.pending() == 1

    def test_compaction_preserves_time_prio_seq_order(self):
        def drive(sim):
            fired = []
            sim.set_choice_hook(lambda label: {"a": 2, "b": 1}.get(label, 0))
            handles = []
            for tag in "abcabcab":
                handles.append(
                    sim.schedule(3, fired.append, tag, label=tag))
            for tag in range(6):  # same-cycle FIFO tail
                handles.append(sim.schedule(7, fired.append, tag))
            for victim in handles[1::2]:
                victim.cancel()
            sim.run()
            return fired

        baseline = drive(Simulator(compact_dead_min=None))
        compacted = drive(Simulator(compact_dead_min=1))
        assert compacted == baseline
        assert baseline  # the scenario fired something


class TestReplayPurity:
    """Property test: a seeded random schedule -- nested scheduling,
    random cancels, same-cycle ties -- fires identically under every
    combination of the allocation flags."""

    @staticmethod
    def _drive(sim, seed):
        rng = random.Random(seed)
        trace = []
        pending = {}
        spawned = [0]

        def fire(tag):
            # Handle contract: drop the reference once fired.
            pending.pop(tag, None)
            trace.append((sim.now, tag))
            if pending and rng.random() < 0.4:
                victim = rng.choice(sorted(pending))
                pending.pop(victim).cancel()
            if spawned[0] < 64 and rng.random() < 0.7:
                spawned[0] += 1
                child = f"s{spawned[0]}"
                pending[child] = sim.schedule(
                    rng.randrange(0, 6), fire, child)

        for i in range(16):
            tag = f"i{i}"
            pending[tag] = sim.schedule(rng.randrange(0, 8), fire, tag)
        sim.run()
        return trace

    @pytest.mark.parametrize("sim_cls", [Simulator, BatchedSimulator])
    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedule_replays_identically_across_flags(
            self, seed, sim_cls):
        configs = [
            dict(),                                      # defaults
            dict(recycle_events=False),
            dict(compact_dead_min=1),
            dict(compact_dead_min=None),
            dict(recycle_events=False, compact_dead_min=1),
        ]
        traces = [self._drive(sim_cls(**kwargs), seed)
                  for kwargs in configs]
        assert traces[0]  # non-trivial scenario
        for trace in traces[1:]:
            assert trace == traces[0]

    @pytest.mark.parametrize("seed", range(5))
    def test_batched_trace_matches_reference(self, seed):
        assert self._drive(BatchedSimulator(), seed) \
            == self._drive(Simulator(), seed)


# ----------------------------------------------------------------------
# The batched calendar-queue backend
# ----------------------------------------------------------------------
class TestBatchedBackend:
    def test_resolve_backend_prefers_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
        assert resolve_backend("reference") == "batched"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bogus")
        with pytest.raises(ValueError):
            resolve_backend("reference")
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        assert resolve_backend("batched") == "batched"
        assert resolve_backend() == "reference"

    def test_known_backends_match_config_mirror(self):
        from repro.harness.config import SystemConfig
        assert SystemConfig.KNOWN_BACKENDS == KNOWN_BACKENDS

    def test_pending_tracks_lazy_cancels(self):
        sim = BatchedSimulator(compact_dead_min=None)
        handles = [sim.schedule(t, lambda: None) for t in range(1, 6)]
        assert sim.pending() == 5
        for handle in handles[:3]:
            handle.cancel()
        assert sim.pending() == 2
        handles[0].cancel()  # idempotent: must not double-count
        assert sim.pending() == 2
        sim.run()
        assert sim.pending() == 0
        assert sim.events_fired == 2

    def test_compaction_counter_and_purge(self):
        sim = BatchedSimulator(compact_dead_min=1)
        handles = [sim.schedule(t, lambda: None) for t in range(1, 5)]
        for handle in handles[:3]:
            handle.cancel()
        assert sim.compactions > 0
        assert sim.pending() == 1
        sim.run()
        assert sim.events_fired == 1

    def test_kernel_stats_batch_histogram(self):
        sim = BatchedSimulator()
        for _ in range(5):           # one 5-wide batch at t=3
            sim.schedule(3, lambda: None)
        sim.schedule(9, lambda: None)  # one singleton batch
        sim.run()
        stats = sim.kernel_stats()
        assert stats["backend"] == "batched"
        # Slot upper bounds are 2**i - 1: the 5-batch lands in the
        # 4..7 slot (key 7), the singleton in the 1 slot.
        assert stats["batch_sizes"] == {1: 1, 7: 1}
        assert sim.events_fired == 6

    def test_reference_kernel_stats_shape(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()
        stats = sim.kernel_stats()
        assert stats["backend"] == "reference"
        assert stats["batch_sizes"] == {}

    def test_run_until_boundary_matches_reference(self):
        def drive(sim):
            fired = []
            for t in (2, 4, 4, 6):
                sim.schedule(t, fired.append, t)
            sim.run(until=4)
            mid = (list(fired), sim.now)
            sim.run()
            return mid, fired, sim.now

        assert drive(BatchedSimulator()) == drive(Simulator())
