"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import DeadlockError, Simulator, SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_cycle_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(7, fired.append, tag)
    sim.run()
    assert fired == list(range(5))


def test_now_advances_with_events():
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda: seen.append(sim.now))
    sim.schedule(12, lambda: seen.append(sim.now))
    end = sim.run()
    assert seen == [5, 12]
    assert end == 12


def test_zero_delay_runs_after_current_cycle_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0, fired.append, "chained")

    sim.schedule(1, first)
    sim.schedule(1, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "chained"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(5, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_events_fired_counts_live_events_only():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    dead = sim.schedule(2, lambda: None)
    dead.cancel()
    sim.schedule(3, lambda: None)
    sim.run()
    assert sim.events_fired == 2


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(10, lambda: fired.append(("inner", sim.now)))

    sim.schedule(3, outer)
    sim.run()
    assert fired == [("outer", 3), ("inner", 13)]


def test_run_until_pauses_and_resumes():
    sim = Simulator()
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(50, fired.append, "late")
    sim.run(until=10)
    assert fired == ["early"]
    sim.run()
    assert fired == ["early", "late"]


def test_max_cycles_overrun_raises():
    sim = Simulator(max_cycles=10)
    sim.schedule(100, lambda: None)
    with pytest.raises(SimulationError):
        sim.run()


def test_deadlock_detection_with_incomplete_actor():
    class Actor:
        done = False

        def __repr__(self):
            return "<stuck>"

    sim = Simulator()
    sim.add_actor(Actor())
    sim.schedule(1, lambda: None)
    with pytest.raises(DeadlockError, match="stuck"):
        sim.run()


def test_clean_finish_with_completed_actor():
    class Actor:
        done = False

    actor = Actor()
    sim = Simulator()
    sim.add_actor(actor)

    def finish():
        actor.done = True

    sim.schedule(4, finish)
    assert sim.run() == 4


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    dead = sim.schedule(2, lambda: None)
    dead.cancel()
    assert sim.pending() == 1


def test_arguments_passed_to_callback():
    sim = Simulator()
    got = []
    sim.schedule(1, lambda a, b: got.append((a, b)), 1, "two")
    sim.run()
    assert got == [(1, "two")]


def test_run_until_at_max_cycles_returns_for_resumption():
    """Regression: ``run(until=N)`` with ``N == max_cycles`` used to
    raise SimulationError instead of pausing -- an explicit ``until``
    is a pause request even at the budget boundary."""
    sim = Simulator(max_cycles=10)
    fired = []
    sim.schedule(5, fired.append, "early")
    sim.schedule(50, fired.append, "late")  # beyond the budget
    assert sim.run(until=10) == 10  # pauses instead of raising
    assert fired == ["early"]
    with pytest.raises(SimulationError):
        sim.run()  # resuming without a pause request overruns at 10


def test_run_until_past_max_cycles_still_raises():
    sim = Simulator(max_cycles=10)
    sim.schedule(100, lambda: None)
    with pytest.raises(SimulationError):
        sim.run(until=11)


def test_choice_hook_reorders_same_cycle_events():
    sim = Simulator()
    fired = []
    # Reverse priority: later-scheduled events get lower prio values.
    order = iter([3, 2, 1])
    sim.set_choice_hook(lambda label: next(order))
    for tag in "abc":
        sim.schedule(7, fired.append, tag)
    sim.run()
    assert fired == ["c", "b", "a"]


def test_choice_hook_ties_fall_back_to_fifo():
    sim = Simulator()
    fired = []
    sim.set_choice_hook(lambda label: 0)
    for tag in range(4):
        sim.schedule(7, fired.append, tag)
    sim.run()
    assert fired == list(range(4))


def test_choice_hook_never_reorders_across_cycles():
    sim = Simulator()
    fired = []
    sim.set_choice_hook(lambda label: 99)
    sim.schedule(5, fired.append, "early")
    sim.set_choice_hook(lambda label: 0)
    sim.schedule(6, fired.append, "late")
    sim.run()
    assert fired == ["early", "late"]
