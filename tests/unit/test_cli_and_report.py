"""Tests for the CLI and the report renderers."""

import pytest

from repro.cli import main as cli_main
from repro.harness.config import SyncScheme
from repro.harness.experiments import AppResult, SweepResult
from repro.harness import report


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "single-counter" in out
        assert "TLR" in out

    def test_run_workload(self, capsys):
        assert cli_main(["run", "single-counter", "--scheme", "TLR",
                         "--cpus", "2", "--ops", "64"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "elisions_committed" in out

    def test_run_rejects_unknown_scheme(self, capsys):
        assert cli_main(["run", "single-counter", "--scheme", "XYZ",
                         "--cpus", "2", "--ops", "32"]) == 2

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "no-such-workload"])

    def test_figure7(self, capsys):
        assert cli_main(["figure7", "--cpus", "2", "--ops", "32"]) == 0
        out = capsys.readouterr().out
        assert "deferrals" in out

    def test_figure8_sweep_with_plot(self, capsys):
        assert cli_main(["figure8", "--procs", "2,4",
                         "--ops", "64", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "procs" in out and "BASE+SLE+TLR" in out
        assert "peak=" in out

    def test_scheme_alias_normalization(self, capsys):
        assert cli_main(["run", "single-counter", "--scheme",
                         "tlr-strict-ts", "--cpus", "2", "--ops", "32"]) == 0

    def test_verify_passes_on_clean_tlr(self, capsys):
        assert cli_main(["verify", "single-counter", "--cpus", "2",
                         "--seeds", "3", "--ops", "32"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "3 seeds" in out

    def test_verify_json_output(self, capsys):
        import json

        assert cli_main(["verify", "single-counter", "--cpus", "2",
                         "--seeds", "2", "--ops", "32", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["workloads"]["single-counter"]["seeds"] == 2

    def test_verify_rejects_unknown_workload(self, capsys):
        assert cli_main(["verify", "no-such-workload",
                         "--seeds", "1"]) == 2

    def test_verify_rejects_unknown_scheme(self, capsys):
        assert cli_main(["verify", "--scheme", "XYZ", "--seeds", "1"]) == 2


def _sweep() -> SweepResult:
    result = SweepResult(name="demo", processor_counts=[2, 4])
    result.series[SyncScheme.BASE] = [100, 200]
    result.series[SyncScheme.TLR] = [50, 25]
    return result


class TestReport:
    def test_sweep_table_alignment(self):
        text = report.sweep_table(_sweep())
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].split() == ["procs", "BASE", "BASE+SLE+TLR"]
        assert lines[1].split() == ["2", "100", "50"]
        # Columns align: every row has the same width.
        assert len({len(line) for line in lines}) == 1

    def test_sweep_cycles_accessor(self):
        sweep = _sweep()
        assert sweep.cycles(SyncScheme.TLR, 4) == 25
        with pytest.raises(ValueError):
            sweep.cycles(SyncScheme.TLR, 3)

    def test_ascii_series_contains_legend(self):
        text = report.ascii_series(_sweep())
        assert "o=BASE" in text
        assert "peak=200" in text

    def test_dict_table_formats_floats(self):
        text = report.dict_table({"a": 1.234, "b": 7}, title="T")
        assert text.splitlines()[0] == "T"
        assert "1.23" in text

    def _app_result(self) -> AppResult:
        return AppResult(
            name="demo",
            cycles={SyncScheme.BASE: 1000, SyncScheme.TLR: 500},
            lock_cycles={SyncScheme.BASE: 300, SyncScheme.TLR: 10},
            restarts={SyncScheme.BASE: 0, SyncScheme.TLR: 5},
            resource_fallbacks={SyncScheme.BASE: 0, SyncScheme.TLR: 1},
            critical_sections={SyncScheme.BASE: 10, SyncScheme.TLR: 10})

    def test_app_speedup(self):
        app = self._app_result()
        assert app.speedup(SyncScheme.TLR) == 2.0
        assert app.speedup(SyncScheme.BASE) == 1.0

    def test_normalized_parts_sum_to_normalized_time(self):
        app = self._app_result()
        lock, nonlock = app.normalized_parts(SyncScheme.TLR)
        assert lock + nonlock == pytest.approx(0.5)
        assert lock == pytest.approx(0.5 * (10 / 500))

    def test_figure11_table_renders_all_schemes(self):
        text = report.figure11_table({"demo": self._app_result()})
        assert "demo" in text
        assert "BASE+SLE+TLR" in text

    def test_speedup_summary(self):
        app = AppResult(
            name="demo",
            cycles={SyncScheme.BASE: 1000, SyncScheme.TLR: 500,
                    SyncScheme.MCS: 800},
            lock_cycles={s: 0 for s in (SyncScheme.BASE, SyncScheme.TLR,
                                        SyncScheme.MCS)},
            restarts={}, resource_fallbacks={}, critical_sections={})
        text = report.speedup_summary({"demo": app})
        assert "2.00" in text   # TLR/BASE
        assert "1.25" in text   # MCS/BASE


class TestCliPerfAndCache:
    def test_perf_quick_prints_table(self, capsys):
        assert cli_main(["perf", "--quick", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert "fig09_single_counter" in out

    def test_perf_check_against_reference_file(self, tmp_path, capsys):
        import json

        easy = tmp_path / "easy.json"
        easy.write_text(json.dumps({"results": {
            "fig09_single_counter": {"events_per_sec": 1}}}))
        out_path = tmp_path / "BENCH_perf.json"
        assert cli_main(["perf", "--quick", "--repeats", "1",
                         "--out", str(out_path),
                         "--check", str(easy)]) == 0
        assert "perf check" in capsys.readouterr().out
        written = json.loads(out_path.read_text())
        assert written["bench"] == "perf"
        # An impossible reference makes the same measurement fail.
        hard = tmp_path / "hard.json"
        hard.write_text(json.dumps({"results": {
            "fig09_single_counter": {"events_per_sec": 10 ** 12}}}))
        assert cli_main(["perf", "--quick", "--repeats", "1",
                         "--check", str(hard)]) == 1
        assert "perf regression" in capsys.readouterr().err

    def test_perf_missing_reference_is_usage_error(self, tmp_path, capsys):
        assert cli_main(["perf", "--quick", "--repeats", "1",
                         "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "perf:" in capsys.readouterr().err

    def test_cache_status_and_prune(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert cli_main(["cache", "--cache-dir", str(cache_dir),
                         "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned 0 superseded entries" in out
        assert str(cache_dir) in out
        assert "0 entries" in out

    def test_cache_clear(self, tmp_path, capsys):
        from repro.harness.cache import ResultCache

        cache_dir = tmp_path / "cache"
        ResultCache(cache_dir).put("ab" + "0" * 62, {})
        assert cli_main(["cache", "--cache-dir", str(cache_dir),
                         "--clear"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert len(ResultCache(cache_dir)) == 0

    def test_run_metrics_openmetrics_format(self, tmp_path, capsys):
        assert cli_main(["run", "single-counter", "--scheme", "TLR",
                         "--cpus", "2", "--ops", "64", "--metrics",
                         "--format", "openmetrics",
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "txn_commits_total" in out
        assert "target_info{" in out
        assert out.endswith("# EOF\n")


class TestCliOpsHandling:
    def test_ops_zero_is_not_silently_defaulted(self, capsys):
        """--ops 0 must produce the minimal workload, not fall back to
        the (much larger) default (falsy-zero regression)."""
        assert cli_main(["run", "single-counter", "--cpus", "2",
                         "--ops", "0"]) == 0
        out = capsys.readouterr().out
        cycles = int(out.split("cycles: ")[1].split()[0])
        assert cycles < 5_000  # default-size runs take >50k cycles

    def test_mp3d_coarse_respects_ops(self, capsys):
        assert cli_main(["run", "mp3d-coarse", "--cpus", "2",
                         "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical_sections: 4" in out
