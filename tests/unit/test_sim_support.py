"""Unit tests for RNG streams, latency perturbation, and statistics."""

from repro.sim.rng import LatencyPerturber, RandomStreams
from repro.sim.stats import CpuStats, SimStats


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("bus")
        b = RandomStreams(7).stream("bus")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_decorrelated(self):
        streams = RandomStreams(7)
        a = streams.stream("bus")
        b = streams.stream("datanet")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("bus")
        b = RandomStreams(2).stream("bus")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_new_consumer_does_not_shift_existing_stream(self):
        one = RandomStreams(3)
        first = one.stream("a").random()
        two = RandomStreams(3)
        two.stream("zzz-new-consumer")
        assert two.stream("a").random() == first


class TestLatencyPerturber:
    def test_jitter_bounded(self):
        streams = RandomStreams(0)
        perturber = LatencyPerturber(streams.stream("lat"), max_jitter=3)
        for _ in range(200):
            value = perturber.perturb(10)
            assert 10 <= value <= 13

    def test_zero_jitter_is_identity(self):
        perturber = LatencyPerturber(RandomStreams(0).stream("x"),
                                     max_jitter=0)
        assert all(perturber.perturb(n) == n for n in (0, 1, 50))


class TestCpuStats:
    def test_charge_stall_buckets(self):
        stats = CpuStats(cpu_id=0)
        stats.charge_stall(10, is_lock=True)
        stats.charge_stall(5, is_lock=False)
        assert stats.lock_stall_cycles == 10
        assert stats.nonlock_stall_cycles == 5
        assert stats.stall_cycles == 15

    def test_charge_nonpositive_ignored(self):
        stats = CpuStats(cpu_id=0)
        stats.charge_stall(0, is_lock=True)
        stats.charge_stall(-3, is_lock=False)
        assert stats.stall_cycles == 0


class TestSimStats:
    def test_cpu_accessor_grows(self):
        stats = SimStats()
        stats.cpu(3).loads += 1
        assert len(stats.cpus) == 4
        assert stats.cpu(3).loads == 1

    def test_total_sums_across_cpus(self):
        stats = SimStats()
        stats.cpu(0).restarts = 2
        stats.cpu(1).restarts = 3
        assert stats.total("restarts") == 5
        assert stats.restarts == 5

    def test_lock_fraction(self):
        stats = SimStats()
        stats.cpu(0).lock_stall_cycles = 30
        stats.cpu(0).nonlock_stall_cycles = 70
        assert abs(stats.lock_fraction() - 0.3) < 1e-9

    def test_lock_fraction_no_stalls(self):
        assert SimStats().lock_fraction() == 0.0

    def test_summary_keys_stable(self):
        summary = SimStats().summary()
        for key in ("total_cycles", "restarts", "elisions_committed",
                    "requests_deferred", "markers_sent", "probes_sent"):
            assert key in summary
