"""Protocol behaviour tests: bus ordering/arbitration, MOESI state
movement, LL/SC semantics, spin-wait wakeups -- driven through small
machines with ad-hoc thread programs."""

import pytest

from repro.coherence.states import State
from repro.cpu import isa
from repro.harness.config import SyncScheme

from tests.conftest import run_threads, small_config


def line_state(machine, cpu, line):
    found = machine.controllers[cpu].cache.lookup(line)
    return found.state if found is not None else State.INVALID


class TestBasicCoherence:
    def test_read_miss_fills_exclusive_when_alone(self):
        def reader(env):
            value = yield env.read(64)
            assert value == 0

        machine = run_threads([reader], small_config(1, SyncScheme.BASE))
        assert line_state(machine, 0, isa.line_of(64)) is State.EXCLUSIVE

    def test_second_reader_gets_shared(self):
        def t0(env):
            yield env.read(64)
            yield env.compute(500)

        def t1(env):
            yield env.compute(200)
            yield env.read(64)

        machine = run_threads([t0, t1], small_config(2, SyncScheme.BASE))
        line = isa.line_of(64)
        # The first reader supplied the line and became its owner.
        states = {line_state(machine, 0, line), line_state(machine, 1, line)}
        assert State.SHARED in states
        assert states <= {State.SHARED, State.OWNED}

    def test_writer_invalidates_reader(self):
        def reader(env):
            yield env.read(64)
            yield env.compute(2000)

        def writer(env):
            yield env.compute(300)
            yield env.write(64, 7)

        machine = run_threads([reader, writer],
                              small_config(2, SyncScheme.BASE))
        line = isa.line_of(64)
        assert line_state(machine, 0, line) is State.INVALID
        assert line_state(machine, 1, line) is State.MODIFIED
        assert machine.store.read(64) == 7

    def test_store_to_shared_upgrades(self):
        def t0(env):
            yield env.read(64)
            yield env.compute(400)
            yield env.write(64, 1)

        def t1(env):
            yield env.read(64)
            yield env.compute(2000)

        machine = run_threads([t0, t1], small_config(2, SyncScheme.BASE))
        assert machine.stats.cpu(0).upgrades >= 1
        assert machine.store.read(64) == 1

    def test_sequential_writers_serialize_values(self):
        def writer(tid):
            def thread(env):
                for i in range(10):
                    value = yield env.read(64, pc="w.ld")
                    yield env.write(64, value + 1, pc="w.st")
                    yield env.compute(env.fair_delay())
            return thread

        machine = run_threads([writer(0), writer(1), writer(2)],
                              small_config(3, SyncScheme.BASE))
        # Unsynchronized increments may race (this is a data race by
        # design) but never exceed the issue count and never go negative.
        assert 0 < machine.store.read(64) <= 30

    def test_writeback_on_eviction(self):
        cfg = small_config(1, SyncScheme.BASE)
        cfg.cache.size_bytes = 1024
        cfg.cache.assoc = 1
        cfg.cache.victim_entries = 1

        def thrasher(env):
            for i in range(8):
                yield env.write(i * cfg.cache.num_sets * 8, i)
                yield env.compute(50)

        machine = run_threads([thrasher], cfg)
        assert machine.stats.cpu(0).writebacks >= 1


class TestBusArbitration:
    def test_bus_counts_transactions(self):
        def reader(addr):
            def thread(env):
                yield env.read(addr)
            return thread

        machine = run_threads([reader(64), reader(128)],
                              small_config(2, SyncScheme.BASE))
        assert machine.stats.bus_transactions >= 2
        assert machine.stats.bus_busy_cycles >= 2 * 2

    def test_occupancy_spaces_grants(self):
        cfg = small_config(4, SyncScheme.BASE)
        cfg.bus.occupancy = 10

        def reader(addr):
            def thread(env):
                yield env.read(addr)
            return thread

        machine = run_threads(
            [reader(64 * (i + 1)) for i in range(4)], cfg)
        # Four transactions at 10-cycle occupancy: the last data arrival
        # cannot be earlier than ~30 cycles after the first grant.
        finish = [machine.stats.cpu(i).finish_time for i in range(4)]
        assert max(finish) - min(finish) >= 20


class TestLoadLinkedStoreConditional:
    def test_uncontended_ll_sc_succeeds(self):
        results = []

        def thread(env):
            value = yield isa.LoadLinked(64, pc="t.ll")
            ok = yield isa.StoreConditional(64, value + 1, pc="t.sc")
            results.append(ok)

        machine = run_threads([thread], small_config(1, SyncScheme.BASE))
        assert results == [True]
        assert machine.store.read(64) == 1

    def test_sc_without_ll_fails(self):
        results = []

        def thread(env):
            ok = yield isa.StoreConditional(64, 5, pc="t.sc")
            results.append(ok)

        machine = run_threads([thread], small_config(1, SyncScheme.BASE))
        assert results == [False]
        assert machine.store.read(64) == 0

    def test_conflicting_store_breaks_link(self):
        results = []

        def linked(env):
            yield isa.LoadLinked(64, pc="a.ll")
            yield env.compute(600)   # give the other thread time to write
            ok = yield isa.StoreConditional(64, 99, pc="a.sc")
            results.append(ok)

        def interferer(env):
            yield env.compute(100)
            yield env.write(64, 7)

        machine = run_threads([linked, interferer],
                              small_config(2, SyncScheme.BASE))
        assert results == [False]
        assert machine.store.read(64) == 7

    def test_competing_sc_only_one_wins(self):
        wins = []

        def contender(tid):
            def thread(env):
                yield isa.LoadLinked(64, pc=f"c{tid}.ll")
                # Both threads hold their links through this window (it
                # dwarfs the start stagger), so the SCs overlap and the
                # loser's link must be broken by the winner's upgrade.
                yield env.compute(500)
                ok = yield isa.StoreConditional(64, tid + 1, pc=f"c{tid}.sc")
                wins.append(bool(ok))
            return thread

        machine = run_threads([contender(0), contender(1)],
                              small_config(2, SyncScheme.BASE))
        assert wins.count(True) == 1


class TestSpinWait:
    def test_watch_wakes_on_remote_write(self):
        order = []

        def waiter(env):
            value = yield env.read(64)
            order.append(("read", value))
            if value == 0:
                yield isa.Watch(64, expect=0)
            value = yield env.read(64)
            order.append(("woke", value))

        def writer(env):
            yield env.compute(800)
            yield env.write(64, 1)

        run_threads([waiter, writer], small_config(2, SyncScheme.BASE))
        assert ("woke", 1) in order

    def test_watch_with_already_changed_value_returns_immediately(self):
        # If the expect-check at registration were missing, this watch
        # would never be woken (no other thread exists) and the run
        # would end in DeadlockError instead of completing.
        done = []

        def thread(env):
            yield env.write(64, 5)
            before = env.processor.sim.now
            yield isa.Watch(64, expect=0)  # 64 != 0 already
            done.append(env.processor.sim.now - before)

        run_threads([thread], small_config(1, SyncScheme.BASE))
        assert done and done[0] <= 2


class TestAtomics:
    def test_swap_returns_old_value(self):
        old = []

        def thread(env):
            yield env.write(64, 3)
            got = yield isa.AtomicSwap(64, 9, pc="t.swap")
            old.append(got)

        machine = run_threads([thread], small_config(1, SyncScheme.MCS))
        assert old == [3]
        assert machine.store.read(64) == 9

    def test_cas_success_and_failure(self):
        got = []

        def thread(env):
            yield env.write(64, 3)
            got.append((yield isa.AtomicCas(64, expect=3, new=5, pc="a")))
            got.append((yield isa.AtomicCas(64, expect=99, new=7, pc="b")))

        machine = run_threads([thread], small_config(1, SyncScheme.MCS))
        assert got == [3, 5]
        assert machine.store.read(64) == 5

    def test_concurrent_swaps_are_atomic(self):
        claimed = []

        def contender(tid):
            def thread(env):
                old = yield isa.AtomicSwap(64, tid + 1, pc=f"s{tid}")
                claimed.append(old)
            return thread

        machine = run_threads([contender(t) for t in range(4)],
                              small_config(4, SyncScheme.MCS))
        # Exactly one contender saw the initial 0; every other value is
        # another contender's deposit, each observed at most once.
        assert claimed.count(0) == 1
        assert len(set(claimed)) == len(claimed)
