"""Tests for the cross-commit BENCH trend report (``repro trend``)."""

import json
import subprocess

import pytest

from repro.cli import main
from repro.harness import trend

ARTIFACT = {
    "bench": "fig09_single_counter",
    "config": {"total_increments": 512, "processor_counts": [2, 4]},
    "results": {
        "processor_counts": [2, 4],
        "cycles": {"BASE": [1000, 2000], "BASE+SLE+TLR": [800, 900]},
        "speedups_over_base": {"BASE+SLE+TLR": [1.25, 2.22]},
        "metrics": {"TLR/4": {"defer.count": 54, "txn.commits": 96}},
    },
    "wall_seconds": 0.5,
}


def _write_artifacts(directory, payload=ARTIFACT):
    directory.mkdir(exist_ok=True)
    (directory / "BENCH_fig09.json").write_text(json.dumps(payload))
    return directory


def _regressed(payload, factor=1.10):
    """A deep copy of ``payload`` with every cycles series scaled up."""
    copy = json.loads(json.dumps(payload))
    copy["results"]["cycles"] = {
        name: [int(value * factor) for value in series]
        for name, series in copy["results"]["cycles"].items()}
    return copy


class TestFlattening:
    def test_numeric_leaves_with_dotted_paths(self):
        flat = trend.flatten_results(ARTIFACT)
        assert flat["results.cycles.BASE.0"] == 1000
        assert flat["results.cycles.BASE+SLE+TLR.1"] == 900
        assert flat["results.metrics.TLR/4.defer.count"] == 54

    def test_config_and_wall_seconds_excluded(self):
        flat = trend.flatten_results(ARTIFACT)
        assert not any(path.startswith("config") for path in flat)
        assert "wall_seconds" not in flat

    def test_booleans_are_not_metrics(self):
        flat = trend.flatten_results({"results": {"ok": True, "n": 1}})
        assert flat == {"results.n": 1}


class TestDirectionAndClassification:
    def test_direction_heuristic(self):
        assert trend.direction_of("results.cycles.BASE.0") == "lower"
        assert trend.direction_of("results.slowdown_vs_timestamp.x") == \
            "lower"
        assert trend.direction_of("results.speedups_over_base.TLR.1") == \
            "higher"
        assert trend.direction_of("results.metrics.defer.count") == \
            "neutral"

    @pytest.mark.parametrize("direction,base,current,expected", [
        ("lower", 100, 120, "regression"),
        ("lower", 100, 80, "improvement"),
        ("lower", 100, 103, "stable"),       # within 5%
        ("higher", 2.0, 1.5, "regression"),
        ("higher", 2.0, 2.5, "improvement"),
        ("neutral", 100, 200, "drift"),
        ("neutral", 100, 100, "stable"),
    ])
    def test_classify(self, direction, base, current, expected):
        delta = trend.Delta(artifact="a", path="p", base=base,
                            current=current, direction=direction)
        assert delta.classify(threshold=0.05) == expected

    def test_zero_baseline_is_infinite_change(self):
        delta = trend.Delta(artifact="a", path="p", base=0, current=5,
                            direction="lower")
        assert delta.rel_change == float("inf")
        assert delta.classify(0.05) == "regression"


class TestCompare:
    def test_identical_sets_are_clean(self):
        report = trend.compare({"BENCH_x.json": ARTIFACT},
                               {"BENCH_x.json": ARTIFACT})
        assert report.ok and report.deltas
        assert report.regressions == []
        assert report.compared_artifacts == ["BENCH_x.json"]

    def test_injected_regression_is_flagged(self):
        report = trend.compare({"BENCH_x.json": ARTIFACT},
                               {"BENCH_x.json": _regressed(ARTIFACT)})
        assert not report.ok
        paths = {d.path for d in report.regressions}
        assert any(path.startswith("results.cycles") for path in paths)
        worst = max(report.regressions, key=lambda d: d.rel_change)
        assert worst.rel_change == pytest.approx(0.10, abs=0.01)

    def test_one_sided_artifacts_listed_not_failed(self):
        report = trend.compare({"BENCH_old.json": ARTIFACT},
                               {"BENCH_new.json": ARTIFACT})
        assert report.ok
        assert report.only_base == ["BENCH_old.json"]
        assert report.only_current == ["BENCH_new.json"]

    def test_markdown_render(self):
        report = trend.compare({"BENCH_x.json": ARTIFACT},
                               {"BENCH_x.json": _regressed(ARTIFACT)})
        text = report.to_markdown()
        assert "## Regressions" in text
        assert "FAIL" in text
        assert "results.cycles" in text
        clean = trend.compare({"BENCH_x.json": ARTIFACT},
                              {"BENCH_x.json": ARTIFACT})
        assert "OK" in clean.to_markdown()


class TestCli:
    def test_identical_artifacts_exit_zero(self, tmp_path, capsys):
        base = _write_artifacts(tmp_path / "base")
        current = _write_artifacts(tmp_path / "current")
        code = main(["trend", "--against", str(base),
                     "--artifacts", str(current)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = _write_artifacts(tmp_path / "base")
        current = _write_artifacts(tmp_path / "current",
                                   _regressed(ARTIFACT))
        code = main(["trend", "--against", str(base),
                     "--artifacts", str(current)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        base = _write_artifacts(tmp_path / "base")
        current = _write_artifacts(tmp_path / "current",
                                   _regressed(ARTIFACT))
        code = main(["trend", "--against", str(base),
                     "--artifacts", str(current), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["regressions"]

    def test_threshold_lets_small_moves_pass(self, tmp_path):
        base = _write_artifacts(tmp_path / "base")
        current = _write_artifacts(tmp_path / "current",
                                   _regressed(ARTIFACT))
        code = main(["trend", "--against", str(base),
                     "--artifacts", str(current), "--threshold", "0.25"])
        assert code == 0

    def test_ref_and_against_together_is_usage_error(self, tmp_path):
        assert main(["trend", "HEAD~1", "--against", "HEAD"]) == 2

    def test_unresolvable_baseline_exits_two(self, tmp_path, capsys):
        current = _write_artifacts(tmp_path / "current")
        code = main(["trend", "--against", str(tmp_path / "nope"),
                     "--artifacts", str(current),
                     "--repo", str(tmp_path)])
        assert code == 2
        assert "trend:" in capsys.readouterr().err

    def test_perf_metrics_have_directions(self):
        """The perf artifact's throughput metrics must classify, not
        drift: falling events/sec and rising wall_s are regressions."""
        assert trend.direction_of(
            "results.fig09_single_counter.events_per_sec") == "higher"
        assert trend.direction_of(
            "results.fig09_single_counter.wall_s") == "lower"
        down = trend.Delta(artifact="BENCH_perf.json", path="p.events_per_sec",
                           base=100_000, current=60_000, direction="higher")
        assert down.classify(threshold=0.05) == "regression"
        up = trend.Delta(artifact="BENCH_perf.json", path="p.wall_s",
                         base=1.0, current=1.5, direction="lower")
        assert up.classify(threshold=0.05) == "regression"

    def test_git_ref_baseline_against_head(self, capsys):
        """The committed artifacts compared against themselves at HEAD
        must be representable (the repo itself is the fixture); any
        regression here would mean uncommitted artifact drift, which is
        exactly what the report exists to surface -- so only the exit
        codes 0 (clean) and 1 (real drift in the working tree) are
        acceptable, never a load error."""
        code = main(["trend", "--against", "HEAD", "--artifacts", "."])
        assert code in (0, 1)
        capsys.readouterr()


def _payload(cycles):
    return {"bench": "x", "config": {"ops": 512},
            "results": {"cycles": {"TLR": [cycles]}, "constant": 7},
            "wall_seconds": 0.1}


@pytest.fixture
def history_repo(tmp_path):
    """A throwaway git repo with two commits of BENCH_x.json (cycles
    1000 then 900) and a working-tree edit to 800."""
    repo = tmp_path / "repo"
    repo.mkdir()

    def git(*argv):
        subprocess.run(["git", "-C", str(repo), *argv], check=True,
                       capture_output=True)

    git("init", "-q")
    git("config", "user.email", "trend@test.invalid")
    git("config", "user.name", "trend-test")
    for cycles in (1000, 900):
        (repo / "BENCH_x.json").write_text(json.dumps(_payload(cycles)))
        git("add", "-A")
        git("commit", "-q", "-m", f"cycles {cycles}")
    (repo / "BENCH_x.json").write_text(json.dumps(_payload(800)))
    return repo


class TestHistory:
    def test_series_spans_commits_and_worktree(self, history_repo):
        report = trend.history_report(1, artifacts_dir=history_repo)
        assert report.refs == ["HEAD~1", "HEAD", "worktree"]
        key = ("BENCH_x.json", "results.cycles.TLR.0")
        assert report.series[key] == [1000, 900, 800]

    def test_window_larger_than_history_degrades_gracefully(
            self, history_repo):
        report = trend.history_report(10, artifacts_dir=history_repo)
        # Only HEAD~1 exists; deeper refs are skipped, not fatal.
        assert report.refs == ["HEAD~1", "HEAD", "worktree"]

    def test_changed_filters_constant_series(self, history_repo):
        report = trend.history_report(1, artifacts_dir=history_repo)
        constant = ("BENCH_x.json", "results.constant")
        assert constant in report.series
        assert constant not in report.changed()
        assert ("BENCH_x.json", "results.cycles.TLR.0") in report.changed()

    def test_markdown_table(self, history_repo):
        text = trend.history_report(
            1, artifacts_dir=history_repo).to_markdown()
        assert "| HEAD~1 | HEAD | worktree |" in text
        assert "results.cycles.TLR.0" in text
        assert "1000 | 900 | 800" in text
        assert "results.constant" not in text  # changed-only by default

    def test_all_metrics_includes_constants(self, history_repo):
        report = trend.history_report(1, artifacts_dir=history_repo)
        text = report.to_markdown(changed_only=False)
        assert "results.constant" in text
        data = report.to_dict(changed_only=False)
        paths = {row["path"] for row in data["series"]}
        assert "results.constant" in paths

    def test_direction_annotated_in_dict(self, history_repo):
        data = trend.history_report(
            1, artifacts_dir=history_repo).to_dict()
        by_path = {row["path"]: row for row in data["series"]}
        assert by_path["results.cycles.TLR.0"]["direction"] == "lower"

    def test_window_below_one_raises(self, history_repo):
        with pytest.raises(trend.TrendError, match=">= 1"):
            trend.history_report(0, artifacts_dir=history_repo)

    def test_cli_history_is_informational_exit_zero(self, history_repo,
                                                    capsys):
        code = main(["trend", "--history", "1",
                     "--artifacts", str(history_repo),
                     "--repo", str(history_repo)])
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH history" in out
        assert "results.cycles.TLR.0" in out

    def test_cli_history_json(self, history_repo, capsys):
        code = main(["trend", "--history", "1", "--json",
                     "--artifacts", str(history_repo),
                     "--repo", str(history_repo)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["refs"] == ["HEAD~1", "HEAD", "worktree"]
        assert payload["series"][0]["values"] == [1000, 900, 800]
