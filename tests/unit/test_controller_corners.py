"""White-box corner cases of the coherence controller and bus directory:
writeback races, capacity pressure during speculation, directory state
movement, and deferral bookkeeping."""

import pytest

from repro.coherence.messages import MEMORY
from repro.coherence.states import State
from repro.cpu import isa
from repro.harness.config import SyncScheme
from repro.harness.machine import Machine
from repro.runtime.program import Workload
from repro.workloads.common import AddressSpace

from tests.conftest import run_threads, small_config


class TestWritebackRace:
    def test_forward_cancels_inflight_writeback(self):
        """A dirty line being written back when another CPU requests it:
        the owner must cancel the WB and supply the data itself."""
        cfg = small_config(2, SyncScheme.BASE)
        cfg.cache.size_bytes = 1024
        cfg.cache.assoc = 1
        cfg.cache.victim_entries = 1
        stride = cfg.cache.num_sets * isa.WORDS_PER_LINE
        hot = 1024 * isa.WORDS_PER_LINE   # set 0

        def evictor(env):
            yield env.write(hot, 42)
            # Conflict-evict the hot line (same set), launching a WB.
            for i in range(1, 4):
                yield env.write(hot + i * stride, i)
            yield env.compute(1000)

        def reader(env):
            yield env.compute(80)   # land mid-writeback
            value = yield env.read(hot)
            assert value == 42

        machine = run_threads([evictor, reader], cfg)
        assert machine.store.read(hot) == 42

    def test_clean_exclusive_eviction_returns_ownership_to_memory(self):
        cfg = small_config(1, SyncScheme.BASE)
        cfg.cache.size_bytes = 1024
        cfg.cache.assoc = 1
        cfg.cache.victim_entries = 0
        stride = cfg.cache.num_sets * isa.WORDS_PER_LINE
        hot = 1024 * isa.WORDS_PER_LINE

        def thread(env):
            yield env.read(hot)         # E grant
            yield env.read(hot + stride)  # evicts the E line
            yield env.compute(500)

        machine = run_threads([thread], cfg)
        assert machine.bus.directory.owner(isa.line_of(hot)) in (
            MEMORY, 0)  # memory after the WB ordered


class TestSpeculativeCapacity:
    def test_victim_cache_extends_transaction_footprint(self):
        """A transaction larger than one set's associativity survives
        through the victim cache (Section 3.3/4)."""
        cfg = small_config(1, SyncScheme.TLR)
        cfg.cache.size_bytes = 1024
        cfg.cache.assoc = 2
        cfg.cache.victim_entries = 4
        stride = cfg.cache.num_sets * isa.WORDS_PER_LINE
        base = 1024 * isa.WORDS_PER_LINE
        space = AddressSpace()
        lock = space.alloc_word()
        words = [base + i * stride for i in range(5)]  # one set, 5 lines

        def thread(env):
            def body(env):
                for i, word in enumerate(words):
                    yield env.write(word, i + 1, pc=f"v{i}")

            yield from env.critical(lock, body, pc="v")

        machine = run_threads([thread], cfg, space=space)
        assert machine.stats.cpu(0).resource_fallbacks == 0
        assert machine.stats.cpu(0).elisions_committed == 1

    def test_overflowing_victim_cache_forces_fallback(self):
        cfg = small_config(1, SyncScheme.TLR)
        cfg.cache.size_bytes = 1024
        cfg.cache.assoc = 2
        cfg.cache.victim_entries = 2
        stride = cfg.cache.num_sets * isa.WORDS_PER_LINE
        base = 1024 * isa.WORDS_PER_LINE
        space = AddressSpace()
        lock = space.alloc_word()
        words = [base + i * stride for i in range(8)]

        def thread(env):
            def body(env):
                for i, word in enumerate(words):
                    yield env.write(word, i + 1, pc=f"o{i}")

            yield from env.critical(lock, body, pc="o")

        machine = run_threads([thread], cfg, space=space)
        assert machine.stats.cpu(0).resource_fallbacks >= 1
        # Completed correctly anyway, via the real lock.
        assert all(machine.store.read(w) == i + 1
                   for i, w in enumerate(words))


class TestDirectory:
    def test_getx_makes_requester_sole_sharer(self):
        def writer(env):
            yield env.write(64, 1)

        machine = run_threads([writer], small_config(1, SyncScheme.BASE))
        line = isa.line_of(64)
        assert machine.bus.directory.owner(line) == 0
        assert machine.bus.directory.sharers(line) == {0}

    def test_gets_accumulates_sharers(self):
        def reader(env):
            yield env.read(64)
            yield env.compute(2000)

        machine = run_threads([reader, reader, reader],
                              small_config(3, SyncScheme.BASE))
        line = isa.line_of(64)
        assert machine.bus.directory.sharers(line) == {0, 1, 2}

    def test_upgrade_clears_other_sharers(self):
        def reader(env):
            yield env.read(64)
            yield env.compute(2500)

        def upgrader(env):
            yield env.read(64)
            yield env.compute(300)
            yield env.write(64, 9)
            yield env.compute(2000)

        machine = run_threads([reader, upgrader],
                              small_config(2, SyncScheme.BASE))
        line = isa.line_of(64)
        assert machine.bus.directory.owner(line) == 1
        assert machine.bus.directory.sharers(line) == {1}


class TestDeferralBookkeeping:
    def test_commit_drains_everything(self):
        """After any run, no controller retains deferred entries,
        obligations, or pinned lines."""
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()

        def thread(env):
            def body(env):
                value = yield env.read(counter, pc="d.ld")
                yield env.write(counter, value + 1, pc="d.st")

            for _ in range(12):
                yield from env.critical(lock, body, pc="d")
                yield env.compute(env.fair_delay())

        machine = run_threads([thread] * 4,
                              small_config(4, SyncScheme.TLR), space=space)
        for controller in machine.controllers:
            assert len(controller.deferred) == 0
            assert len(controller.mshrs) == 0
            assert not controller.speculating
            assert controller.current_ts is None
            assert not controller.evicting

    def test_stats_accounting_consistency(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()

        def thread(env):
            def body(env):
                value = yield env.read(counter, pc="a.ld")
                yield env.write(counter, value + 1, pc="a.st")

            for _ in range(8):
                yield from env.critical(lock, body, pc="a")
                yield env.compute(env.fair_delay())

        machine = run_threads([thread] * 3,
                              small_config(3, SyncScheme.TLR), space=space)
        stats = machine.stats
        # Elisions: started = committed + (attempts that restarted).
        assert stats.total("elisions_started") == (
            stats.total("elisions_committed") + stats.total("restarts")
            - stats.total("lock_fallbacks") * 0)
        # Every committed section incremented the counter exactly once.
        assert machine.store.read(counter) == 24
