"""Schema-versioned serialization: every result ``to_dict`` carries a
``"schema"`` field and every ``from_dict`` round-trips it -- and fails
loudly (``SchemaError``) on missing or mismatched versions instead of
silently mis-parsing a payload from another era."""

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.experiments import (AppResult, PolicyGridResult,
                                       SweepResult)
from repro.harness.jobs import JobResult
from repro.harness.parallel import FailedRun
from repro.harness.runner import RunResult, execute_workload
from repro.harness.spec import (JOBSPEC_SCHEMA, RESULT_SCHEMA, JobSpec,
                                RunSpec, SchemaError, check_schema,
                                stamp_schema)
from repro.workloads.microbench import single_counter


def _failed_run():
    return FailedRun(workload="single-counter", scheme="TLR", num_cpus=2,
                     seed=0, fingerprint="f" * 64, error="SimulationError",
                     message="livelock", attempts=3, seeds_tried=[0, 1, 2])


def _sweep_result():
    return SweepResult(name="figure9", processor_counts=[2, 4],
                       series={SyncScheme.BASE: [100, 200],
                               SyncScheme.TLR: [50, None]},
                       extra={"note": {"k": 1}},
                       failures=[_failed_run()])


def _app_result():
    per = {SyncScheme.BASE: 100, SyncScheme.TLR: 40}
    return AppResult(name="mp3d", cycles=dict(per), lock_cycles=dict(per),
                     restarts={SyncScheme.TLR: 2},
                     resource_fallbacks={SyncScheme.TLR: 0},
                     critical_sections=dict(per),
                     failures=[_failed_run()])


def _grid_result():
    grid = PolicyGridResult(policies=["timestamp"], workloads=["mp3d"],
                            processor_counts=[2], seeds=1)
    grid.cells[grid.key("timestamp", "mp3d", 2)] = {"ok": True,
                                                    "cycles": 123}
    return grid


class TestStampAndCheck:
    def test_stamp_adds_current_version_in_place(self):
        payload = {"x": 1}
        assert stamp_schema(payload) is payload
        assert payload["schema"] == RESULT_SCHEMA

    def test_check_accepts_current_version(self):
        check_schema({"schema": RESULT_SCHEMA}, "Thing")  # no raise

    def test_missing_schema_fails_loudly(self):
        with pytest.raises(SchemaError, match="Thing"):
            check_schema({"x": 1}, "Thing")

    def test_wrong_version_fails_loudly(self):
        with pytest.raises(SchemaError, match="schema v999"):
            check_schema({"schema": 999}, "Thing")

    def test_schema_error_degrades_like_stale_cache(self):
        # Cache readers catch (KeyError, TypeError, ValueError) and
        # re-simulate; SchemaError must be caught by those handlers.
        assert issubclass(SchemaError, ValueError)


class TestRoundTrips:
    def test_run_result(self):
        cfg = SystemConfig(num_cpus=2, scheme=SyncScheme.TLR,
                           max_cycles=20_000_000)
        result = execute_workload(single_counter(2, 16), cfg)
        data = result.to_dict()
        assert data["schema"] == RESULT_SCHEMA
        clone = RunResult.from_dict(data)
        assert clone.to_dict() == data
        assert clone.cycles == result.cycles

    def test_failed_run(self):
        data = _failed_run().to_dict()
        assert data["schema"] == RESULT_SCHEMA
        clone = FailedRun.from_dict(data)
        assert clone.to_dict() == data
        assert clone.seeds_tried == [0, 1, 2]

    def test_sweep_result(self):
        data = _sweep_result().to_dict()
        assert data["schema"] == RESULT_SCHEMA
        clone = SweepResult.from_dict(data)
        assert clone.to_dict() == data
        assert clone.cycles(SyncScheme.BASE, 4) == 200

    def test_app_result(self):
        data = _app_result().to_dict()
        assert data["schema"] == RESULT_SCHEMA
        clone = AppResult.from_dict(data)
        assert clone.to_dict() == data
        assert clone.speedup(SyncScheme.TLR) == pytest.approx(2.5)

    def test_policy_grid_result(self):
        data = _grid_result().to_dict()
        assert data["schema"] == RESULT_SCHEMA
        clone = PolicyGridResult.from_dict(data)
        assert clone.to_dict() == data
        assert clone.ok

    def test_job_result(self):
        job = JobResult(kind="sweep", fingerprint="a" * 64,
                        result={"schema": RESULT_SCHEMA, "name": "x"},
                        telemetry={"simulated": 3}, cached=False,
                        elapsed=1.5, extra={"note": "hi"})
        data = job.to_dict()
        assert data["schema"] == RESULT_SCHEMA
        clone = JobResult.from_dict(data)
        assert clone.to_dict() == data

    def test_jobspec(self):
        spec = JobSpec.sweep("figure9", processor_counts=[2, 4],
                             total_increments=64)
        data = spec.to_dict()
        assert data["schema"] == JOBSPEC_SCHEMA
        clone = JobSpec.from_dict(data)
        assert clone.to_dict() == data
        assert clone.fingerprint() == spec.fingerprint()

    @pytest.mark.parametrize("cls", [RunResult, FailedRun, SweepResult,
                                     AppResult, PolicyGridResult,
                                     JobResult])
    def test_from_dict_rejects_unversioned_payload(self, cls):
        with pytest.raises(SchemaError):
            cls.from_dict({"name": "x"})


class TestJobSpecContract:
    def test_fingerprint_is_stable_across_dict_round_trip(self):
        spec = JobSpec.run(RunSpec(workload="single-counter",
                                   config=SystemConfig(num_cpus=2),
                                   workload_args={"total_increments": 16}))
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.fingerprint() == spec.fingerprint()

    def test_kinds_differ_in_fingerprint(self):
        sweep = JobSpec.sweep("verify", num_cpus=2)
        verify = JobSpec.verify(num_cpus=2)
        assert sweep.fingerprint() != verify.fingerprint()

    def test_perf_jobs_are_not_cacheable(self):
        assert not JobSpec.perf(quick=True).cacheable
        assert JobSpec.sweep("figure9").cacheable
