"""Integration tests for the repro.verify subsystem: clean TLR runs
pass the oracle and monitors, instrumentation does not perturb the
execution, and deliberately broken conflict resolution is caught and
shrunk to a traced minimal reproduction."""

from dataclasses import replace

import pytest

import repro.coherence.controller as controller_module
import repro.policies.base as policy_base_module
import repro.policies.timestamp as policy_timestamp_module
from repro.coherence.messages import beats as real_beats
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.harness.spec import SIZE_PARAM, RunSpec
from repro.verify import (FootprintRecorder, MonitorSuite, VerifyOptions,
                          explore, shrink_failure, verify_run, verify_suite,
                          with_chaos)
from repro.workloads.microbench import single_counter

from tests.conftest import small_config


def _spec(workload="single-counter", scheme=SyncScheme.TLR, num_cpus=4,
          ops=64, seed=0, **config_overrides) -> RunSpec:
    config = SystemConfig(num_cpus=num_cpus, scheme=scheme, seed=seed,
                          max_cycles=20_000_000, **config_overrides)
    return RunSpec(workload, config, {SIZE_PARAM[workload]: ops})


class TestVerifyRun:
    @pytest.mark.parametrize("workload", ["single-counter",
                                          "multiple-counter",
                                          "linked-list"])
    def test_clean_tlr_run_passes(self, workload):
        result, _ = verify_run(_spec(workload))
        assert result.ok, result.headline()
        assert result.num_txns > 0

    @pytest.mark.parametrize("scheme", [SyncScheme.SLE, SyncScheme.BASE,
                                        SyncScheme.MCS])
    def test_other_schemes_pass(self, scheme):
        result, _ = verify_run(_spec(scheme=scheme))
        assert result.ok, result.headline()

    def test_chaos_mode_passes(self):
        result, _ = verify_run(with_chaos(_spec("linked-list"), 3))
        assert result.ok, result.headline()

    def test_recorder_does_not_perturb_execution(self):
        cfg = small_config(4, SyncScheme.TLR)
        plain = Machine(cfg)
        plain_stats = plain.run_workload(single_counter(4, 64))

        instrumented = Machine(small_config(4, SyncScheme.TLR))
        recorder = FootprintRecorder().attach(instrumented)
        monitors = MonitorSuite(instrumented,
                                strict_exclusive=True).attach()
        wrapped_stats = instrumented.run_workload(single_counter(4, 64))

        assert wrapped_stats.total_cycles == plain_stats.total_cycles
        assert plain.store.snapshot() == instrumented.store.snapshot()
        assert not monitors.violations
        assert len(recorder.committed) > 0

    def test_committed_footprints_are_recorded(self):
        spec = _spec(ops=32)
        machine = Machine(spec.config)
        recorder = FootprintRecorder().attach(machine)
        machine.run_workload(spec.build_workload())
        assert len(recorder.committed) == 32  # one txn per increment
        sample = recorder.committed[-1]
        assert sample.writes and sample.commit_time > 0
        # Every non-first increment read the counter from memory.
        assert any(t.reads for t in recorder.committed)


class TestExplore:
    def test_seed_fanout_passes_and_caches(self, tmp_path):
        spec = _spec(ops=48)
        first = explore(spec, seeds=6, cache=tmp_path)
        assert first.ok, first.summary()
        assert len(first.results) == 6
        assert {r.seed for r in first.results} == set(range(6))
        again = explore(spec, seeds=6, cache=tmp_path)
        assert again.ok and again.cache_hits == 6

    def test_parallel_matches_serial(self, tmp_path):
        spec = _spec("linked-list", ops=48)
        serial = explore(spec, seeds=4, jobs=1, cache=False)
        parallel = explore(spec, seeds=4, jobs=2, cache=False)
        assert [r.to_dict() | {"elapsed": 0} for r in serial.results] == \
            [r.to_dict() | {"elapsed": 0} for r in parallel.results]


@pytest.fixture
def inverted_timestamps(monkeypatch):
    """Break TLR's conflict resolution: later timestamps win.  The
    earliest transaction now loses every conflict -- deferral-order
    invariants and (on contended runs) serializability both fail."""

    def inverted(challenger, incumbent):
        if challenger is None or incumbent is None:
            return real_beats(challenger, incumbent)
        return not real_beats(challenger, incumbent)

    # Conflict resolution lives in the contention-policy layer now;
    # invert the comparison everywhere the default policy consults it.
    monkeypatch.setattr(policy_base_module, "beats", inverted)
    monkeypatch.setattr(policy_timestamp_module, "beats", inverted)


@pytest.fixture
def ignored_losses(monkeypatch):
    """Break conflict handling harder: a losing speculation keeps
    running on stale data instead of restarting (lost updates)."""
    monkeypatch.setattr(
        controller_module.CacheController, "_handle_loss",
        lambda self, reason, line_addr, ts=None, aborter=-1: None)


class TestMutationDetection:
    def test_inverted_timestamps_caught_and_shrunk(self,
                                                   inverted_timestamps):
        spec = replace(_spec("linked-list", num_cpus=8, ops=128),
                       validate=False)
        exploration = explore(spec, seeds=8, cache=False)
        assert exploration.failures, \
            "inverted conflict resolution escaped 8 seeds"
        failing = exploration.failures[0]

        shrunk = shrink_failure(spec.with_seed(failing.seed))
        assert not shrunk.result.ok
        # Shrinking found a smaller reproduction and rendered a trace.
        assert shrunk.spec.workload_args[SIZE_PARAM["linked-list"]] <= 128
        assert shrunk.spec.config.num_cpus <= 8
        rendering = shrunk.render()
        assert "minimal reproduction" in rendering
        assert "failure:" in rendering
        assert any(ch.isdigit() for ch in shrunk.trace)

    def test_ignored_losses_caught_by_oracle_alone(self, ignored_losses):
        # Monitors off: the serializability oracle must catch the lost
        # updates by itself.
        spec = replace(_spec(ops=64), validate=False)
        result, _ = verify_run(spec, VerifyOptions(monitors=False))
        assert not result.ok
        assert any("stale-read" in v or "final-state" in v
                   for v in result.violations)


class TestVerifySuite:
    def test_suite_over_two_workloads(self, tmp_path):
        result = verify_suite(("single-counter", "linked-list"),
                              seeds=4, ops=48, cache=tmp_path)
        assert result.ok, result.render()
        assert set(result.explorations) == {"single-counter",
                                            "linked-list"}
        assert result.shrunk is None
        payload = result.to_dict()
        assert payload["ok"] and set(payload["workloads"]) == \
            {"single-counter", "linked-list"}
