"""End-to-end tests for ``repro serve``: HTTP job submission, dedup of
completed jobs through the result cache (second identical sweep does
zero simulation), in-flight coalescing of concurrent submissions, SSE
event streams and the OpenMetrics endpoint.

The autouse cache-isolation fixture points ``REPRO_CACHE_DIR`` at a
fresh tmp dir per test, so ``cache=True`` here never touches (or is
warmed by) the developer's real cache.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.harness.spec import JobSpec
from repro.serve import JobQueue, build_server


def _tiny_sweep():
    return JobSpec.sweep("figure7", num_cpus=2, total_increments=16)


def _post_job(base, spec):
    request = urllib.request.Request(
        base + "/jobs", data=json.dumps(spec.to_dict()).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        assert response.status == 202
        return json.load(response)


def _get_json(base, path):
    with urllib.request.urlopen(base + path) as response:
        return json.load(response)


@pytest.fixture
def server():
    server = build_server(port=0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.queue.stop()
        thread.join(timeout=10)


def _base(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


class TestServeEndToEnd:
    def test_second_identical_sweep_is_fully_cached(self, server):
        base = _base(server)
        spec = _tiny_sweep()

        first = _post_job(base, spec)
        job1 = server.queue.wait(first["id"], timeout=180)
        assert job1.state == "done"
        assert job1.result.cached is False
        assert (job1.result.telemetry or {}).get("simulated", 0) >= 1

        simulated_before = server.queue.metrics.counter(
            "serve.cells.simulated").value

        second = _post_job(base, spec)
        assert second["id"] != first["id"]  # first already completed
        job2 = server.queue.wait(second["id"], timeout=60)
        assert job2.state == "done"
        assert job2.result.cached is True       # replayed, not re-run
        assert job2.result.telemetry is None    # nothing executed

        simulated_after = server.queue.metrics.counter(
            "serve.cells.simulated").value
        assert simulated_after == simulated_before  # zero new simulations

        # Both jobs agree on the payload and its fingerprints.
        assert job1.result.fingerprint == job2.result.fingerprint
        assert job1.result.result == job2.result.result

    def test_job_detail_and_listing(self, server):
        base = _base(server)
        created = _post_job(base, _tiny_sweep())
        server.queue.wait(created["id"], timeout=180)

        detail = _get_json(base, "/jobs/" + created["id"])
        assert detail["state"] == "done"
        assert detail["kind"] == "sweep"
        assert detail["result"]["result"]["cycles"] > 0

        listing = _get_json(base, "/jobs")
        assert any(job["id"] == created["id"] for job in listing["jobs"])

    def test_sse_stream_replays_and_terminates(self, server):
        base = _base(server)
        created = _post_job(base, _tiny_sweep())
        server.queue.wait(created["id"], timeout=180)

        # Late joiner: the stream replays history, then closes because
        # the job is terminal.
        with urllib.request.urlopen(
                base + "/jobs/" + created["id"] + "/events") as response:
            assert response.headers["Content-Type"].startswith(
                "text/event-stream")
            body = response.read().decode()
        events = [line.split(": ", 1)[1] for line in body.splitlines()
                  if line.startswith("event: ")]
        assert events[0] == "queued"
        assert events[-1] == "done"
        assert "running" in events

    def test_metrics_exposition(self, server):
        base = _base(server)
        created = _post_job(base, _tiny_sweep())
        server.queue.wait(created["id"], timeout=180)

        request = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(request) as response:
            text = response.read().decode()
            content_type = response.headers["Content-Type"]
        assert content_type.startswith("application/openmetrics-text")
        assert text.endswith("# EOF\n")
        assert 'target_info{' in text
        assert 'service="repro-serve"' in text
        assert "serve_jobs_submitted_total 1" in text

    def test_healthz_and_errors(self, server):
        base = _base(server)
        assert _get_json(base, "/healthz")["ok"] is True

        with pytest.raises(urllib.error.HTTPError) as notfound:
            urllib.request.urlopen(base + "/jobs/j999999")
        assert notfound.value.code == 404

        bad = urllib.request.Request(base + "/jobs", data=b"not json",
                                     headers={"Content-Type":
                                              "application/json"})
        with pytest.raises(urllib.error.HTTPError) as badreq:
            urllib.request.urlopen(bad)
        assert badreq.value.code == 400


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_job(self):
        queue = JobQueue(workers=1, start=False)  # nothing drains yet
        try:
            spec = _tiny_sweep()
            results = []

            def submit_one():
                results.append(queue.submit(spec))

            threads = [threading.Thread(target=submit_one)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            jobs = {job.id for job, _ in results}
            assert len(jobs) == 1  # one execution, many watchers
            assert sum(1 for _, coalesced in results if coalesced) == 3
            job = results[0][0]
            assert job.coalesced == 3
            assert queue.metrics.counter("serve.jobs.submitted").value == 4
            assert queue.metrics.counter("serve.jobs.coalesced").value == 3

            # Drain: the single job runs once and completes.
            queue.start()
            finished = queue.wait(job.id, timeout=180)
            assert finished.state == "done"
            assert queue.metrics.counter(
                "serve.jobs.completed").value == 1
        finally:
            queue.stop()

    def test_different_specs_do_not_coalesce(self):
        queue = JobQueue(workers=1, start=False)
        try:
            job_a, coalesced_a = queue.submit(_tiny_sweep())
            job_b, coalesced_b = queue.submit(
                JobSpec.sweep("figure7", num_cpus=2, total_increments=32))
            assert not coalesced_a and not coalesced_b
            assert job_a.id != job_b.id
        finally:
            queue.stop()
