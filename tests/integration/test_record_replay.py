"""Integration tests for the record/replay layer.

The load-bearing contracts:

* **Record-on ≡ record-off.**  Attaching the flight recorder must not
  perturb the schedule: a recorded run's fingerprint equals the
  unrecorded golden fingerprints pinned by the policy-lab tests, across
  policies and both coherence protocols.
* **Replay purity.**  Re-executing a log's embedded spec yields
  byte-identical log bytes and the same fingerprint -- for plain runs
  and for verify-harness runs (whose monitor watchdogs are part of the
  recorded schedule).
* **Auto-capture.**  ``shrink_failure`` writes a replayable log of the
  minimal failing schedule and names it in the verdict; ``submit``
  surfaces it as a job artifact the HTTP service serves for download.
* **Litmus conformance.**  The Chong-style TM scenarios pass under the
  real machine and catch an injected conflict-handling bug.
"""

import json
import threading
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

import repro.coherence.controller as controller_module
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.jobs import JobResult, collect_artifacts
from repro.harness.runner import execute_workload, result_fingerprint
from repro.harness.spec import JobSpec, RunSpec, stamp_schema
from repro.record import load_log, record_run, replay_log
from repro.serve import JobQueue
from repro.serve.http import JobServer
from repro.serve.queue import Job
from repro.verify.explorer import (VerifyOptions, explore, shrink_failure,
                                   verify_run)
from repro.workloads.litmus import LITMUS_WORKLOADS

# Pinned by tests/integration/test_policy_lab.py on the pre-refactor
# tree; the recorder must reproduce them bit-for-bit with recording ON.
from tests.integration.test_policy_lab import GOLDEN_DEFAULT


def _spec(workload="single-counter", *, policy=None, protocol="snoop",
          seed=0, ops=48, cpus=4):
    config = SystemConfig(num_cpus=cpus, scheme=SyncScheme.TLR, seed=seed,
                          protocol=protocol)
    if policy is not None:
        config = config.with_policy(policy)
    size = {"single-counter": "total_increments",
            "multiple-counter": "total_increments",
            "linked-list": "total_ops"}.get(workload, "total_rounds")
    return RunSpec(workload=workload, config=config,
                   workload_args={size: ops})


# ----------------------------------------------------------------------
# Record-on ≡ record-off, and replay purity, across the matrix
# ----------------------------------------------------------------------
class TestRecordReplayMatrix:
    @pytest.mark.parametrize("policy", ["timestamp", "nack"])
    @pytest.mark.parametrize("protocol", ["snoop", "directory"])
    def test_replay_byte_identical(self, policy, protocol):
        spec = _spec(policy=policy, protocol=protocol)
        recorded = record_run(spec)
        assert recorded.error is None
        report = replay_log(recorded.log)
        assert report.ok, report.render()
        assert report.log_identical and report.fingerprint_identical
        assert report.records == len(load_log(recorded.log).records)

    @pytest.mark.parametrize("policy", ["timestamp", "nack"])
    @pytest.mark.parametrize("protocol", ["snoop", "directory"])
    def test_recording_does_not_change_the_fingerprint(self, policy,
                                                       protocol):
        spec = _spec("linked-list", policy=policy, protocol=protocol)
        bare = execute_workload(spec.build_workload(), spec.config)
        recorded = record_run(spec)
        assert recorded.fingerprint == result_fingerprint(bare), (
            f"{policy}/{protocol}: attaching the recorder changed "
            f"the schedule")

    def test_record_on_matches_pinned_goldens(self):
        """The strongest record-off ≡ record-on pin: recorded runs
        reproduce the pre-refactor golden fingerprints exactly."""
        for (name, seed), want in GOLDEN_DEFAULT.items():
            recorded = record_run(_spec(name, seed=seed, ops=96))
            assert recorded.fingerprint == want, (
                f"{name}/seed{seed}: recorded fingerprint diverged "
                f"from the golden capture")

    def test_log_embeds_enough_to_reproduce(self):
        recorded = record_run(_spec())
        image = load_log(recorded.log)
        rebuilt = RunSpec.from_dict(image.spec_dict)
        assert rebuilt.workload == "single-counter"
        assert image.header["harness"] == {"kind": "run"}
        assert image.end.fingerprint == recorded.fingerprint


# ----------------------------------------------------------------------
# Verify-harness capture
# ----------------------------------------------------------------------
class TestVerifyCapture:
    def test_verify_recorded_run_replays_pure(self):
        result, _ = verify_run(_spec(), record=True)
        assert result.ok and result.log_bytes
        image = load_log(result.log_bytes)
        assert image.header["harness"]["kind"] == "verify"
        report = replay_log(result.log_bytes)
        assert report.ok, report.render()

    def test_shrink_failure_auto_captures_log(self, monkeypatch,
                                              tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        # Break conflict handling: a losing speculation keeps running
        # on stale data (lost updates) -- the oracle must fail, and the
        # shrunk reproduction must come with a record log.
        monkeypatch.setattr(
            controller_module.CacheController, "_handle_loss",
            lambda self, reason, line_addr, ts=None, aborter=-1: None)
        spec = replace(_spec(ops=64), validate=False)
        result, _ = verify_run(spec)
        assert not result.ok, "injected lost updates went undetected"

        shrunk = shrink_failure(spec)
        assert not shrunk.result.ok
        path = shrunk.result.record_log
        assert path is not None and path.startswith(str(tmp_path))
        image = load_log(path)
        assert image.header["harness"]["kind"] == "verify"
        assert image.end is not None
        assert "record log:" in shrunk.render()


# ----------------------------------------------------------------------
# Litmus conformance
# ----------------------------------------------------------------------
class TestLitmusConformance:
    @pytest.mark.parametrize("workload", LITMUS_WORKLOADS)
    def test_scenarios_hold_on_the_real_machine(self, workload):
        exploration = explore(_spec(workload, ops=48), seeds=3,
                              cache=False)
        assert exploration.ok, exploration.summary()
        assert exploration.total_txns > 0

    def test_atomicity_litmus_catches_lost_updates(self, monkeypatch):
        monkeypatch.setattr(
            controller_module.CacheController, "_handle_loss",
            lambda self, reason, line_addr, ts=None, aborter=-1: None)
        spec = replace(_spec("litmus-atomicity", ops=64), validate=False)
        result, _ = verify_run(spec, VerifyOptions(monitors=False))
        assert not result.ok, (
            "the atomicity litmus missed injected lost updates")

    @pytest.mark.parametrize("workload", LITMUS_WORKLOADS)
    def test_recorded_litmus_replays_pure(self, workload):
        recorded = record_run(_spec(workload, ops=48))
        assert recorded.error is None
        assert replay_log(recorded.log).ok


# ----------------------------------------------------------------------
# Serve: logs as downloadable job artifacts
# ----------------------------------------------------------------------
class TestServeArtifacts:
    def test_collect_artifacts_walks_nested_payloads(self, tmp_path):
        log = tmp_path / "record-single-counter-s3.rlog"
        log.write_bytes(b"RPRL-test")
        payload = {"shrunk": {"result": {"record_log": str(log)}},
                   "noise": [{"record_log": str(tmp_path / "gone.rlog")}]}
        artifacts = collect_artifacts(payload)
        assert artifacts == {log.name: str(log)}  # missing files skipped

    def test_artifact_route_serves_the_log(self, tmp_path):
        log = tmp_path / "record-x-s0.rlog"
        log.write_bytes(b"\x00\x01binary log bytes")
        queue = JobQueue(workers=1)
        job = Job("j-artifact", JobSpec.perf(quick=True), "fp")
        job.state = "done"
        job.result = JobResult(
            kind="verify", fingerprint="fp",
            result=stamp_schema({"ok": False}),
            extra={"artifacts": {log.name: str(log)}})
        queue._jobs[job.id] = job
        server = JobServer(("127.0.0.1", 0), queue)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            with urllib.request.urlopen(
                    f"{base}/jobs/j-artifact/artifacts") as response:
                listing = json.load(response)
            assert listing == {"artifacts": [log.name]}
            with urllib.request.urlopen(
                    f"{base}/jobs/j-artifact/artifacts/{log.name}") as r:
                assert r.read() == log.read_bytes()
                assert r.headers["Content-Type"] == \
                    "application/octet-stream"
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(
                    f"{base}/jobs/j-artifact/artifacts/nope.rlog")
            assert exc.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            queue.stop()
            thread.join(timeout=10)
