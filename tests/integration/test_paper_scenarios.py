"""Reconstructions of the paper's worked examples.

* Figure 2: two processors writing A and B in opposite orders livelock
  under conflict-free-less speculation -- plain SLE resolves it only by
  falling back to the lock.
* Figure 4: under TLR the earlier timestamp retains ownership of both
  lines by deferring the later requester, which restarts; both commit.
* Figure 6: three processors and two lines form a cyclic wait that
  markers and probes must break.
* Figure 7: pure single-line conflict turns into a hardware queue on the
  data itself -- ideally no restarts at all.
"""

import pytest

from repro.harness.config import SyncScheme
from repro.workloads.common import AddressSpace

from tests.conftest import run_threads, small_config


def two_line_thread(lock, first, second, iters, label):
    """Write two shared lines inside one critical section."""

    def thread(env):
        def body(env):
            for addr in (first, second):
                value = yield env.read(addr, pc=f"{label}.{addr}.ld")
                yield env.compute(30)
                yield env.write(addr, value + 1, pc=f"{label}.{addr}.st")

        for _ in range(iters):
            yield from env.critical(lock, body, pc=label)
            yield env.compute(env.fair_delay())

    return thread


class TestFigure2And4:
    """Opposite-order writers: P1 writes A then B, P2 writes B then A."""

    ITERS = 12

    def build(self, space):
        lock = space.alloc_word()
        a = space.alloc_word()
        b = space.alloc_word()
        return lock, a, b

    def run_scheme(self, scheme):
        space = AddressSpace()
        lock, a, b = self.build(space)
        machine = run_threads(
            [two_line_thread(lock, a, b, self.ITERS, "p1"),
             two_line_thread(lock, b, a, self.ITERS, "p2")],
            small_config(2, scheme), space=space)
        assert machine.store.read(a) == 2 * self.ITERS
        assert machine.store.read(b) == 2 * self.ITERS
        return machine

    def test_figure2_sle_survives_via_lock_fallback(self):
        machine = self.run_scheme(SyncScheme.SLE)
        # SLE cannot resolve the cross conflict speculatively: it must
        # have restarted and then acquired the lock at least once.
        assert machine.stats.total("lock_fallbacks") > 0

    def test_figure4_tlr_resolves_without_locks(self):
        machine = self.run_scheme(SyncScheme.TLR)
        # Every critical section committed as a lock-free transaction:
        # no fallback lock acquisitions at all.
        assert machine.stats.total("lock_fallbacks") == 0
        assert machine.stats.total("elisions_committed") == 2 * self.ITERS

    def test_figure4_conflicts_were_actually_exercised(self):
        machine = self.run_scheme(SyncScheme.TLR)
        summary = machine.stats.summary()
        assert summary["requests_deferred"] + summary["restarts"] > 0

    def test_base_reference(self):
        machine = self.run_scheme(SyncScheme.BASE)
        assert machine.stats.total("elisions_started") == 0


class TestFigure6ProbeChain:
    """Three+ processors, multiple lines, cyclic-wait potential."""

    def test_cycle_broken_by_markers_and_probes(self):
        space = AddressSpace()
        lock = space.alloc_word()
        lines = [space.alloc_word() for _ in range(3)]
        iters = 10

        def rotated(offset):
            order = lines[offset:] + lines[:offset]

            def thread(env):
                def body(env):
                    for addr in order:
                        value = yield env.read(addr, pc=f"r{offset}.{addr}")
                        yield env.compute(25)
                        yield env.write(addr, value + 1,
                                        pc=f"r{offset}.{addr}.st")

                for _ in range(iters):
                    yield from env.critical(lock, body, pc=f"r{offset}")
                    yield env.compute(env.fair_delay())

            return thread

        machine = run_threads([rotated(i) for i in range(3)],
                              small_config(3, SyncScheme.TLR), space=space)
        for addr in lines:
            assert machine.store.read(addr) == 3 * iters
        # The chain machinery was exercised.
        summary = machine.stats.summary()
        assert summary["markers_sent"] > 0
        assert machine.stats.total("lock_fallbacks") == 0

    def test_probes_resolve_priority_inversion(self):
        """Same shape with more processors: probes must fire."""
        space = AddressSpace()
        lock = space.alloc_word()
        lines = [space.alloc_word() for _ in range(3)]
        iters = 8
        num = 6

        def rotated(offset):
            order = lines[offset % 3:] + lines[:offset % 3]

            def thread(env):
                def body(env):
                    for addr in order:
                        value = yield env.read(addr, pc=f"q{offset}.{addr}")
                        yield env.write(addr, value + 1,
                                        pc=f"q{offset}.{addr}.st")

                for _ in range(iters):
                    yield from env.critical(lock, body, pc=f"q{offset}")
                    yield env.compute(env.fair_delay())

            return thread

        machine = run_threads([rotated(i) for i in range(num)],
                              small_config(num, SyncScheme.TLR), space=space)
        for addr in lines:
            assert machine.store.read(addr) == num * iters
        assert machine.stats.total("probes_sent") > 0


class TestFigure7QueueOnData:
    def test_single_line_conflict_queues_without_restarts(self):
        """Section 6.1: with one contended line, TLR's deferral queue
        passes the data processor to processor; restarts should be rare
        (the paper: none)."""
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        iters = 16
        num = 4

        def incrementer(env):
            def body(env):
                value = yield env.read(counter, pc="f7.ld")
                yield env.compute(10)
                yield env.write(counter, value + 1, pc="f7.st")

            for _ in range(iters):
                yield from env.critical(lock, body, pc="f7")
                yield env.compute(env.fair_delay())

        machine = run_threads([incrementer] * num,
                              small_config(num, SyncScheme.TLR), space=space)
        assert machine.store.read(counter) == num * iters
        summary = machine.stats.summary()
        assert summary["requests_deferred"] > 0
        # Deferral (not restart) is the dominant resolution mechanism.
        assert summary["restarts"] <= summary["requests_deferred"]
