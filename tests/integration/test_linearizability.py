"""Linearizability of TLR commits (the paper's Figure 1 claim).

Critical sections overlap in physical time, but each must appear to be
inserted atomically and instantly into one global order.  The commit
listeners expose each transaction's commit instant and committed write
set; replaying the commit log in commit order against a sequential
model verifies the global order exists and matches commit time.
"""

import pytest

from repro.harness.config import SyncScheme
from repro.harness.machine import Machine
from repro.workloads.microbench import linked_list, single_counter

from tests.conftest import small_config

HEAD_OFFSET, TAIL_OFFSET = 1, 2  # relative line layout; read from meta


def _attach_log(machine: Machine):
    log = []
    for processor in machine.processors:
        processor.commit_listeners.append(
            lambda t, cpu, wb: log.append((t, cpu, wb)))
    return log


class TestCounterLinearizability:
    @pytest.mark.parametrize("scheme",
                             [SyncScheme.TLR, SyncScheme.TLR_STRICT_TS],
                             ids=lambda s: s.value)
    def test_committed_values_follow_commit_order(self, scheme):
        machine = Machine(small_config(4, scheme))
        log = _attach_log(machine)
        workload = single_counter(4, 256)
        counter = workload.meta["counter"]
        machine.run_workload(workload)

        values = [wb[counter] for _, _, wb in log if counter in wb]
        assert values == list(range(1, len(values) + 1)), (
            "counter commits are not a linear history")

    def test_commit_log_is_time_ordered(self):
        machine = Machine(small_config(4, SyncScheme.TLR))
        log = _attach_log(machine)
        machine.run_workload(single_counter(4, 128))
        times = [t for t, _, _ in log]
        assert times == sorted(times)

    def test_every_processor_commits(self):
        """Starvation-freedom, observed through the commit log."""
        machine = Machine(small_config(4, SyncScheme.TLR))
        log = _attach_log(machine)
        machine.run_workload(single_counter(4, 256))
        committers = {cpu for _, cpu, _ in log}
        assert committers == {0, 1, 2, 3}


class TestQueueLinearizability:
    def test_commit_log_replays_against_model_queue(self):
        """Every committed dequeue/enqueue, taken in commit order, is a
        legal step of a sequential queue."""
        machine = Machine(small_config(4, SyncScheme.TLR))
        log = _attach_log(machine)
        workload = linked_list(4, 256)
        head = workload.meta["head"]
        tail = workload.meta["tail"]
        model = list(workload.meta["nodes"])  # the initializer's queue
        machine.run_workload(workload)

        held: dict[int, int] = {}
        for time, cpu, wb in log:
            if tail in wb and wb[tail] != 0:
                # Enqueue (possibly to an empty queue, which also sets
                # head): the node must be one this thread dequeued.
                node = wb[tail]
                assert held.get(cpu) == node, (
                    f"t={time} cpu{cpu} enqueued {node:#x} it does not "
                    f"hold ({held})")
                model.append(node)
                del held[cpu]
            elif head in wb:
                # Dequeue: the new head must be the model's second node
                # (or NULL when the model empties).
                assert model, f"t={time} cpu{cpu} dequeued from empty"
                node = model.pop(0)
                expected_head = model[0] if model else 0
                assert wb[head] == expected_head, (
                    f"t={time} cpu{cpu} dequeue set head={wb[head]:#x}, "
                    f"model expected {expected_head:#x}")
                if not model:
                    assert wb.get(tail) == 0, "emptying dequeue kept tail"
                held[cpu] = node
        assert len(model) == len(workload.meta["nodes"])
        assert not held
