"""Integration tests for the contention-policy lab.

Four angles:

* **Behavior preservation.**  The policy refactor moved the paper's
  conflict decision out of the controller and behind an interface; the
  golden fingerprints below were captured on the pre-refactor tree, so
  the default policy (and the legacy ``retention_policy="nack"``
  spelling) must reproduce them bit-for-bit.
* **Liveness contrast.**  Requester-wins without its lock fallback is
  the paper's Figure 2 livelock; the verify layer's starvation watchdog
  must flag it, while every bounded policy finishes the same workload.
* **Correctness under every policy.**  A seed-fanned verify pass (the
  serializability oracle + policy-aware invariant monitors) over two
  workloads must hold for all four policies -- swapping the conflict
  rule may cost cycles, never serializability.
* **Corners.**  The NACK policy's chained-request fallback (a refusal
  is impossible past the order point, so retention degrades to
  deferral) and the ABORT_REQUESTER verdict path.
"""

import pytest

from repro.harness.config import SpeculationConfig, SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.harness.runner import execute_workload, result_fingerprint
from repro.harness.spec import RunSpec
from repro.policies import POLICY_NAMES, PolicyDecision
from repro.policies.timestamp import TimestampDeferral
from repro.verify import VerifyOptions, verify_run
from repro.verify.monitors import InvariantViolation, MonitorSuite
from repro.workloads.microbench import linked_list, single_counter

# Captured on the pre-refactor tree (inline controller decisions),
# num_cpus=4, scheme=TLR, ops=96, seeds 0..2.
GOLDEN_DEFAULT = {
    ("single-counter", 0):
        "82410a9c42a59bb8534b24107080cd6a07e383a0328d03aa899614b6aadf6888",
    ("single-counter", 1):
        "8c439d071317a1cf21f980e734bc28cd96fcdd7e55d8959e0a77a36ce2c27afc",
    ("single-counter", 2):
        "6e23d069e8adcea0c6d1f05e83f4327fdfc310fdf4d73c43c34be04fb385c06f",
    ("linked-list", 0):
        "b0198d2bb44e712dcf0ce5dea9713ec47fae62c58822eb60e386822eb61bced0",
    ("linked-list", 1):
        "205a17cc5d17c4c91a099eb015adb61d51eb9505b0f7b95e86ba72910843922e",
    ("linked-list", 2):
        "7b3e123ff421ed6ef71453c25c9247cd3f9bdd29cde839361986bbdc886fc519",
}
# Same capture with the legacy SpeculationConfig(retention_policy="nack")
# spelling (now normalized onto contention_policy="nack").
GOLDEN_LEGACY_NACK = {
    0: "a4959cd5c45404b603536e00ab0e3be96f6567fd9bc06d11a69772b5e739493b",
    1: "14092355cc258cd315a6169e646f109f0d2a0d054f0a4fbc62514c282bafc250",
    2: "5fa15cdd96bd0f9c8aa3ff6b611be483c831e080e7cfcb544bfe4d7555172d10",
}

BUILDERS = {"single-counter": single_counter, "linked-list": linked_list}


# ----------------------------------------------------------------------
# Behavior preservation: pre-refactor golden fingerprints
# ----------------------------------------------------------------------
def test_default_policy_matches_pre_refactor_goldens():
    for (name, seed), want in GOLDEN_DEFAULT.items():
        cfg = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR, seed=seed)
        result = execute_workload(BUILDERS[name](4, 96), cfg)
        assert result_fingerprint(result) == want, (
            f"{name}/seed{seed}: the timestamp policy diverged from the "
            f"pre-refactor controller")


def test_legacy_nack_spelling_matches_pre_refactor_goldens():
    for seed, want in GOLDEN_LEGACY_NACK.items():
        cfg = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR, seed=seed,
                           spec=SpeculationConfig(retention_policy="nack"))
        assert cfg.spec.contention_policy == "nack"
        result = execute_workload(single_counter(4, 96), cfg)
        assert result_fingerprint(result) == want, (
            f"seed{seed}: legacy retention_policy='nack' diverged")


# ----------------------------------------------------------------------
# Liveness: Figure 2 with the guard rails removed
# ----------------------------------------------------------------------
def _livelock_config():
    cfg = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR).with_policy(
        "requester-wins", fallback_k=None)
    cfg.max_cycles = 3_000_000
    return cfg


def test_requester_wins_without_fallback_livelocks():
    """The starvation watchdog must flag the livelock long before the
    cycle budget would -- and name the policy."""
    machine = Machine(_livelock_config())
    MonitorSuite(machine, fail_fast=True,
                 watchdog_period=2_000, watchdog_patience=5).attach()
    with pytest.raises(InvariantViolation, match="starvation") as exc:
        machine.run_workload(
            single_counter(4, total_increments=64, think_cycles=200))
    assert "requester-wins" in str(exc.value)
    assert machine.sim.now < 100_000  # caught early, not at the budget
    stats = machine.stats.summary()
    assert stats["restarts"] > 100  # the abort storm was real


def test_bounded_policies_finish_the_livelock_workload():
    for policy in POLICY_NAMES:
        cfg = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR).with_policy(
            policy)  # requester-wins keeps its default lock fallback
        result = execute_workload(
            single_counter(4, total_increments=64, think_cycles=200), cfg)
        assert result.stats is not None, policy
    # The fallback is what saved requester-wins: the same workload with
    # fallback_k=4 completes with real lock acquisitions.
    result = execute_workload(
        single_counter(4, total_increments=64, think_cycles=200),
        SystemConfig(num_cpus=4, scheme=SyncScheme.TLR).with_policy(
            "requester-wins", fallback_k=4))
    assert result.stats.summary()["lock_fallbacks"] > 0


# ----------------------------------------------------------------------
# Correctness: every policy, seed-fanned oracle + monitors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("workload", ("single-counter", "linked-list"))
def test_policy_serializability_fanout(policy, workload):
    base = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR).with_policy(
        policy)
    size_key = ("total_increments" if workload == "single-counter"
                else "total_ops")
    for seed in range(25):
        spec = RunSpec(workload=workload,
                       config=SystemConfig(
                           num_cpus=4, scheme=SyncScheme.TLR,
                           seed=seed, spec=base.spec),
                       workload_args={size_key: 96})
        result, _ = verify_run(spec, VerifyOptions())
        assert result.ok, (f"{policy}/{workload}/seed{seed}: "
                           f"{result.violations or result.error}")
        assert result.num_txns > 0


# ----------------------------------------------------------------------
# Corners
# ----------------------------------------------------------------------
def test_nack_chained_request_corner():
    """At 4 CPUs the NACK policy hits both retention mechanisms in one
    run: snoop-time refusals AND order-point deferrals (requests that
    chain behind the holder's in-flight fill, where a NACK is no longer
    possible).  Both must coexist with a verified execution."""
    spec = RunSpec(workload="single-counter",
                   config=SystemConfig(num_cpus=4, scheme=SyncScheme.TLR)
                   .with_policy("nack"),
                   workload_args={"total_increments": 96})
    result, _ = verify_run(spec, VerifyOptions())
    assert result.ok, result.violations or result.error
    assert result.summary["nacks_sent"] > 0
    assert result.summary["requests_deferred"] > 0


def test_abort_requester_verdict_serves_and_kills():
    """A policy verdict of ABORT_REQUESTER surfaces as a remote abort:
    the holder serves the data, the requester's speculation dies.  No
    built-in policy uses it, so install a stub post-construction."""

    class HolderAlwaysWins(TimestampDeferral):
        name = "holder-always-wins"
        ordering = "none"

        def resolve(self, ctx):
            return PolicyDecision.ABORT_REQUESTER

    cfg = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR)
    machine = Machine(cfg)
    for controller in machine.controllers:
        controller.policy = HolderAlwaysWins(cfg, controller.cpu_id)
    stats = machine.run_workload(single_counter(4, 96))
    # The workload validator ran (counter correct); conflicts were
    # resolved by killing requesters, not by deferral.
    assert stats.summary()["restarts"] > 0
    assert stats.summary()["requests_deferred"] == 0


def test_monitor_flags_deferral_under_no_ordering_policy():
    """The deferral monitor reads the policy's declared ordering
    contract: a policy that claims ``ordering="none"`` must never be
    seen deferring.  Force the contradiction by lying about the
    contract on a machine that really defers."""
    machine = Machine(SystemConfig(num_cpus=4, scheme=SyncScheme.TLR))
    for controller in machine.controllers:
        controller.policy.ordering = "none"
    MonitorSuite(machine, fail_fast=True).attach()
    with pytest.raises(InvariantViolation, match="deferral-order"):
        machine.run_workload(single_counter(4, 96))


def test_oracle_handles_mixed_lock_and_transactional_history():
    """Era regression: lock-fallback critical sections interleave plain
    writes with committed transactions on the same lines.  The oracle's
    per-(line, era) version order must not fabricate rw-cycles across
    the plain writes (fallback_k=1 maximizes the mixing)."""
    for seed in range(5):
        cfg = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR, seed=seed
                           ).with_policy("requester-wins", fallback_k=1)
        spec = RunSpec(workload="single-counter", config=cfg,
                       workload_args={"total_increments": 96})
        result, _ = verify_run(spec, VerifyOptions())
        assert result.ok, result.violations or result.error
        assert result.summary["lock_fallbacks"] > 0  # mixing occurred
