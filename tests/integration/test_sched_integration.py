"""Integration tests for preemptive scheduling (repro.sched).

Four angles:

* **Inertness.**  Attaching any scheduler with ``threads == cpus``
  (one thread per slot) must reproduce the scheduler-off golden
  fingerprints bit-for-bit, at any quantum -- the property that lets
  the subsystem land without invalidating every pinned behavior.
* **Liveness under preemption.**  A preempted lock holder must never
  block the other threads' progress under any contention policy: TLR's
  lock-free claim is exactly that the lock is never actually held
  during speculation, so descheduling the "holder" aborts its elision
  and everyone else keeps committing.
* **Record/replay.**  A scheduler-on run records OP_SCHED records, the
  log replays byte-identically, and the timeline can answer who was
  on-CPU at any cycle.
* **The grid.**  A small ``sched_grid`` verifies every cell through
  the oracle and carries context-switch-abort counts.
"""

from dataclasses import replace

from repro.harness.config import SchedConfig, SyncScheme, SystemConfig
from repro.harness.runner import execute_workload, result_fingerprint
from repro.harness.spec import RunSpec
from repro.policies import POLICY_NAMES
from repro.sched import KNOWN_SCHEDULERS

from test_policy_lab import BUILDERS, GOLDEN_DEFAULT


def _sched_cfg(scheduler, quantum, threads_per_cpu, policy=None, seed=0,
               cpus=4, migrate=False):
    cfg = SystemConfig(num_cpus=cpus, seed=seed).with_scheme(SyncScheme.TLR)
    if policy:
        cfg = cfg.with_policy(policy)
    return replace(cfg, sched=SchedConfig(
        scheduler=scheduler, quantum=quantum,
        threads_per_cpu=threads_per_cpu, migrate=migrate))


# ----------------------------------------------------------------------
# Inertness: scheduler attached, threads == cpus -> golden fingerprints
# ----------------------------------------------------------------------
def test_every_scheduler_is_inert_at_threads_equals_cpus():
    for scheduler in KNOWN_SCHEDULERS:
        for quantum in (64, 10**8):     # frantic ticks and one giant slice
            for (name, seed), want in GOLDEN_DEFAULT.items():
                cfg = _sched_cfg(scheduler, quantum, threads_per_cpu=1,
                                 seed=seed)
                result = execute_workload(BUILDERS[name](4, 96), cfg)
                assert result_fingerprint(result) == want, (
                    f"{scheduler}/q{quantum} perturbed {name}/seed{seed} "
                    f"despite one thread per slot")
                # Inert means *no trace*, not just same outcome.
                assert not any(k.startswith("sched.")
                               for k in result.stats.extra)


# ----------------------------------------------------------------------
# Liveness: preempting a speculating thread must not block the others
# ----------------------------------------------------------------------
def test_preempted_holder_blocks_nobody_under_any_policy():
    for policy in POLICY_NAMES:
        cfg = _sched_cfg("rr", quantum=150, threads_per_cpu=2,
                         policy=policy)
        result = execute_workload(BUILDERS["single-counter"](4, 96), cfg)
        reasons = result.stats.reason_totals()
        assert reasons.get("deschedule", 0) > 0, (
            f"{policy}: quantum 150 never hit a speculating thread; "
            f"the test lost its subject")
        assert result.stats.total("elisions_committed") > 0, policy


def test_all_schedulers_complete_a_contended_multiplexed_run():
    for scheduler in KNOWN_SCHEDULERS:
        for workload in ("single-counter", "linked-list"):
            cfg = _sched_cfg(scheduler, quantum=200, threads_per_cpu=2)
            result = execute_workload(BUILDERS[workload](4, 96), cfg)
            assert result.stats.extra["sched.preemptions"] > 0, (
                scheduler, workload)


def test_verifier_accepts_preemptive_runs():
    from repro.verify import verify_run
    for scheduler in KNOWN_SCHEDULERS:
        cfg = _sched_cfg(scheduler, quantum=150, threads_per_cpu=2)
        spec = RunSpec(workload="single-counter", config=cfg,
                       workload_args={"total_increments": 96})
        outcome, _trace = verify_run(spec)
        assert outcome.ok, (scheduler, outcome.violations, outcome.error)
        assert outcome.num_txns > 0


# ----------------------------------------------------------------------
# Record / replay
# ----------------------------------------------------------------------
def test_sched_run_records_and_replays_byte_identically():
    from repro.record import Timeline, load_log, record_run, replay_log
    cfg = _sched_cfg("rr", quantum=400, threads_per_cpu=2)
    spec = RunSpec(workload="single-counter", config=cfg,
                   workload_args={"total_increments": 48})
    recorded = record_run(spec)
    assert recorded.error is None

    image = load_log(recorded.log)
    sched_records = [r for r in image.records if r.op == "sched"]
    assert sched_records, "scheduler-on log carries no OP_SCHED records"
    kinds = {r.label for r in sched_records}
    assert "switch-in" in kinds and "switch-out" in kinds

    report = replay_log(recorded.log)
    assert report.ok, report.render()

    timeline = Timeline(image)
    # At t=0 the initial dispatch put one thread on each slot.
    on_start = timeline.who_on_cpu(0)
    assert set(on_start) == {0, 1}
    assert all(t is not None for t in on_start.values())
    spans = timeline.sched_spans()
    assert spans
    for slot, thread, on, off in spans:
        assert off >= on
        assert thread % 2 == slot       # home-slot pinning, migrate off


def test_scheduler_off_log_has_no_sched_records():
    from repro.record import load_log, record_run
    cfg = SystemConfig(num_cpus=2, seed=0).with_scheme(SyncScheme.TLR)
    spec = RunSpec(workload="single-counter", config=cfg,
                   workload_args={"total_increments": 32})
    image = load_log(record_run(spec).log)
    assert not any(r.op == "sched" for r in image.records)


# ----------------------------------------------------------------------
# The grid experiment
# ----------------------------------------------------------------------
def test_small_sched_grid_verifies_and_counts_aborts():
    import json

    from repro.harness.experiments import SchedGridResult, sched_grid
    from repro.harness.report import sched_grid_table

    grid = sched_grid(schedulers=("rr", "cfs"), quanta=(150,),
                      policies=("timestamp",),
                      workloads=("single-counter",),
                      seeds=2, ops=96, cache=False)
    assert grid.ok, grid.failures
    for key, cell in grid.cells.items():
        assert cell["preemptions"] > 0, key
        assert cell["context_switch_aborts"] > 0, key
        assert cell["metrics"] is not None

    table = sched_grid_table(grid)
    assert "single-counter" in table and "rr/q150" in table

    again = SchedGridResult.from_dict(
        json.loads(json.dumps(grid.to_dict())))
    assert again.to_dict() == grid.to_dict()


def test_sched_jobspec_round_trips_and_routes():
    from repro.harness.jobs import submit
    from repro.harness.spec import JobSpec

    spec = JobSpec.sched(schedulers=("rr",), quanta=(200,),
                         policies=("timestamp",),
                         workloads=("single-counter",), seeds=1, ops=64)
    again = JobSpec.from_dict(spec.to_dict())
    assert again.fingerprint() == spec.fingerprint()
    job = submit(spec, cache=False)
    from repro.harness.experiments import SchedGridResult
    grid = SchedGridResult.from_dict(job.result)
    assert grid.ok
