"""Section 4 contracts: the architecturally-specified footprint
guarantee and thread termination."""

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.runtime.program import Workload
from repro.sim.kernel import SimulationError
from repro.sync.locks import FREE
from repro.tlr.guarantee import FootprintGuarantee, guaranteed_footprint
from repro.workloads.common import AddressSpace
from repro.cpu.isa import WORDS_PER_LINE

from tests.conftest import small_config


class TestFootprintGuarantee:
    def test_paper_worked_example(self):
        """'16 entry victim cache and a 4-way data cache ... any
        transaction accessing 20 cache lines or less' -- minus the slot
        the elided lock's own line occupies."""
        cfg = SystemConfig()
        assert cfg.cache.assoc == 4 and cfg.cache.victim_entries == 16
        guarantee = guaranteed_footprint(cfg)
        assert guarantee.total_lines == 19
        assert guarantee.admits(read_lines=19)
        assert not guarantee.admits(read_lines=20)

    def test_written_lines_bounded_by_write_buffer(self):
        cfg = SystemConfig()
        cfg.spec.write_buffer_entries = 8
        guarantee = guaranteed_footprint(cfg)
        assert guarantee.written_lines == 8
        assert guarantee.admits(read_lines=4, written_lines=8)
        assert not guarantee.admits(read_lines=4, written_lines=9)

    def test_nesting_bound(self):
        guarantee = FootprintGuarantee(total_lines=10, written_lines=10,
                                       nesting_depth=2)
        assert guarantee.admits(1, nesting=2)
        assert not guarantee.admits(1, nesting=3)

    def _same_set_transaction(self, num_lines, cfg):
        """A single transaction writing ``num_lines`` lines that all map
        to cache set 0 -- the adversarial footprint."""
        space = AddressSpace()
        lock = space.alloc_word()
        stride = cfg.cache.num_sets * WORDS_PER_LINE
        base = 1024 * WORDS_PER_LINE
        # Align the base to set 0 and keep clear of the lock's set.
        words = [base + i * stride for i in range(num_lines)]

        def thread(env):
            def body(env):
                for i, word in enumerate(words):
                    yield env.write(word, i + 1, pc=f"g{i}")

            yield from env.critical(lock, body, pc="g")

        return Workload(name="footprint", threads=[thread],
                        meta={"space": space}), lock, words

    def test_within_guarantee_never_falls_back(self):
        cfg = small_config(1, SyncScheme.TLR)
        cfg.cache.victim_entries = 8
        guarantee = guaranteed_footprint(cfg)
        workload, lock, words = self._same_set_transaction(
            guarantee.total_lines, cfg)
        machine = Machine(cfg)
        machine.run_workload(workload, validate=False)
        assert machine.stats.cpu(0).resource_fallbacks == 0
        assert machine.stats.cpu(0).elisions_committed == 1
        assert machine.store.read(words[-1]) == len(words)

    def test_beyond_guarantee_falls_back_but_stays_correct(self):
        cfg = small_config(1, SyncScheme.TLR)
        cfg.cache.victim_entries = 8
        guarantee = guaranteed_footprint(cfg)
        workload, lock, words = self._same_set_transaction(
            guarantee.total_lines + 4, cfg)
        machine = Machine(cfg)
        machine.run_workload(workload, validate=False)
        assert machine.stats.cpu(0).resource_fallbacks >= 1
        assert machine.store.read(lock) == FREE
        assert machine.store.read(words[-1]) == len(words)


class TestTermination:
    def _workload(self):
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()

        def victim(env):
            def body(env):
                value = yield env.read(counter, pc="v.ld")
                yield env.compute(5000)
                yield env.write(counter, value + 1, pc="v.st")

            yield from env.critical(lock, body, pc="v")

        def bystander(env):
            def body(env):
                value = yield env.read(counter, pc="b.ld")
                yield env.write(counter, value + 1, pc="b.st")

            for _ in range(4):
                yield from env.critical(lock, body, pc="b")
                yield env.compute(env.fair_delay())

        return (Workload(name="kill", threads=[victim, bystander],
                         meta={"space": space}), lock, counter)

    def test_tlr_killed_holder_leaves_lock_free(self):
        workload, lock, counter = self._workload()
        machine = Machine(small_config(2, SyncScheme.TLR))
        machine.sim.schedule(700, machine.processors[0].terminate)
        machine.run_workload(workload, validate=False)
        # The bystander completed everything; the victim's partial work
        # vanished entirely (failure atomicity).
        assert machine.store.read(counter) == 4
        assert machine.store.read(lock) == FREE
        assert machine.processors[1].done

    def test_base_killed_holder_wedges_the_system(self):
        workload, lock, counter = self._workload()
        machine = Machine(small_config(2, SyncScheme.BASE))
        machine.config.max_cycles = 150_000
        machine.sim.max_cycles = 150_000
        machine.sim.schedule(700, machine.processors[0].terminate)
        with pytest.raises(SimulationError):
            machine.run_workload(workload, validate=False)
        # The lock is still marked held by a dead thread.
        assert machine.store.read(lock) != FREE
        assert not machine.processors[1].done

    def test_terminate_is_idempotent_and_safe_after_finish(self):
        workload, lock, counter = self._workload()
        machine = Machine(small_config(2, SyncScheme.TLR))
        machine.sim.schedule(700, machine.processors[0].terminate)
        machine.sim.schedule(701, machine.processors[0].terminate)
        machine.run_workload(workload, validate=False)
        machine.processors[1].terminate()  # already done: no-op
        assert machine.store.read(counter) == 4
