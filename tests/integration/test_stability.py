"""Section 4 stability properties: non-blocking execution, failure
atomicity under thread termination, and starvation freedom."""

import pytest

from repro.harness.config import SyncScheme
from repro.harness.machine import Machine
from repro.runtime.program import Workload
from repro.sim.kernel import SimulationError
from repro.sync.locks import FREE
from repro.workloads.common import AddressSpace

from tests.conftest import small_config


def _build(scheme, deschedule_at, reschedule_at=None, iters=6,
           victim_work=4000):
    """One victim thread that gets descheduled inside its critical
    section, plus two bystanders incrementing the same counter."""
    space = AddressSpace()
    lock, counter = space.alloc_word(), space.alloc_word()
    cfg = small_config(3, scheme)
    machine = Machine(cfg)

    def victim(env):
        def body(env):
            value = yield env.read(counter, pc="v.ld")
            yield env.compute(victim_work)  # descheduled in this window
            yield env.write(counter, value + 1, pc="v.st")

        yield from env.critical(lock, body, pc="v")

    def bystander(env):
        def body(env):
            value = yield env.read(counter, pc="b.ld")
            yield env.write(counter, value + 1, pc="b.st")

        for _ in range(iters):
            yield from env.critical(lock, body, pc="b")
            yield env.compute(env.fair_delay())

    workload = Workload(name="stability",
                        threads=[victim, bystander, bystander],
                        meta={"space": space})
    machine.sim.schedule(deschedule_at, machine.processors[0].deschedule)
    if reschedule_at is not None:
        machine.sim.schedule(reschedule_at, machine.processors[0].reschedule)
    return machine, workload, lock, counter


class TestNonBlocking:
    def test_tlr_bystanders_progress_past_descheduled_lock_holder(self):
        machine, workload, lock, counter = _build(
            SyncScheme.TLR, deschedule_at=600, reschedule_at=60_000)
        machine.run_workload(workload, validate=False)
        # All 13 increments landed: 12 bystander + the victim's (replayed
        # after reschedule).
        assert machine.store.read(counter) == 13
        assert machine.store.read(lock) == FREE
        # Bystanders finished long before the victim was rescheduled:
        # they were never blocked on the victim's critical section.
        bystander_finish = max(machine.stats.cpu(1).finish_time,
                               machine.stats.cpu(2).finish_time)
        assert bystander_finish < 60_000

    def test_base_bystanders_block_behind_descheduled_holder(self):
        machine, workload, lock, counter = _build(
            SyncScheme.BASE, deschedule_at=600, reschedule_at=80_000)
        machine.run_workload(workload, validate=False)
        assert machine.store.read(counter) == 13
        # Under BASE the lock stayed held while the victim slept, so at
        # least one bystander finished only after the reschedule.
        bystander_finish = max(machine.stats.cpu(1).finish_time,
                               machine.stats.cpu(2).finish_time)
        assert bystander_finish > 80_000

    def test_base_without_reschedule_never_completes(self):
        machine, workload, lock, counter = _build(
            SyncScheme.BASE, deschedule_at=600, reschedule_at=None)
        machine.config.max_cycles = 200_000
        machine.sim.max_cycles = 200_000
        with pytest.raises(SimulationError):
            machine.run_workload(workload, validate=False)

    def test_tlr_without_reschedule_bystanders_still_complete(self):
        machine, workload, lock, counter = _build(
            SyncScheme.TLR, deschedule_at=600, reschedule_at=None)
        # The victim never comes back; the run cannot fully finish, but
        # the bystanders must complete all their sections first.
        machine.sim.max_cycles = 200_000
        with pytest.raises(SimulationError):
            machine.run_workload(workload, validate=False)
        assert machine.processors[1].done
        assert machine.processors[2].done
        assert machine.store.read(counter) == 12


class TestFailureAtomicity:
    def test_descheduled_transaction_leaves_no_partial_writes(self):
        space = AddressSpace()
        lock = space.alloc_word()
        words = [space.alloc_word() for _ in range(3)]
        cfg = small_config(1, SyncScheme.TLR)
        machine = Machine(cfg)

        def victim(env):
            def body(env):
                yield env.write(words[0], 1, pc="v.0")
                yield env.compute(3000)
                yield env.write(words[1], 1, pc="v.1")
                yield env.write(words[2], 1, pc="v.2")

            yield from env.critical(lock, body, pc="v")

        workload = Workload(name="atomicity", threads=[victim],
                            meta={"space": space})
        machine.sim.schedule(500, machine.processors[0].deschedule)

        def check_mid():
            # Mid-deschedule: none of the speculative writes is visible.
            assert all(machine.store.read(w) == 0 for w in words)

        machine.sim.schedule(2_000, check_mid)
        machine.sim.schedule(4_000, machine.processors[0].reschedule)
        machine.run_workload(workload, validate=False)
        assert all(machine.store.read(w) == 1 for w in words)


class TestStarvationFreedom:
    def test_every_thread_completes_under_heavy_conflict(self):
        """All contenders finish: retained timestamps guarantee each
        eventually becomes the oldest and wins."""
        space = AddressSpace()
        lock, counter = space.alloc_word(), space.alloc_word()
        iters = 24
        num = 6

        def incrementer(env):
            def body(env):
                value = yield env.read(counter, pc="s.ld")
                yield env.write(counter, value + 1, pc="s.st")

            for _ in range(iters):
                yield from env.critical(lock, body, pc="s")
                yield env.compute(env.fair_delay(lo=1, hi=20))

        cfg = small_config(num, SyncScheme.TLR_STRICT_TS)
        machine = Machine(cfg)
        workload = Workload(name="starvation",
                            threads=[incrementer] * num,
                            meta={"space": space})
        machine.run_workload(workload, validate=False)
        assert machine.store.read(counter) == num * iters
        assert all(machine.processors[i].done for i in range(num))
