"""The full workload x scheme validation grid.

Every microbenchmark and every application kernel must complete and pass
its functional validator under every synchronization scheme -- this is
the suite-level serializability check (the role of the paper's
functional checker simulator).
"""

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.parallel import run
from repro.workloads.apps import ALL_APPS, mp3d
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)

from tests.conftest import ALL_SCHEMES

MICRO = [
    ("multiple-counter", lambda n: multiple_counter(n, 256)),
    ("single-counter", lambda n: single_counter(n, 256)),
    ("linked-list", lambda n: linked_list(n, 256)),
]


def _config(scheme, num_cpus, seed=0):
    cfg = SystemConfig(num_cpus=num_cpus, scheme=scheme, seed=seed,
                       max_cycles=50_000_000)
    return cfg


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize("name,builder", MICRO, ids=[m[0] for m in MICRO])
def test_microbenchmark_validates(name, builder, scheme):
    result = run(builder(4), _config(scheme, 4))
    assert result.cycles > 0


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize("num_cpus", [1, 2, 3, 8])
def test_single_counter_odd_configurations(scheme, num_cpus):
    result = run(single_counter(num_cpus, 128), _config(scheme, num_cpus))
    assert result.cycles > 0


@pytest.mark.parametrize("scheme",
                         [SyncScheme.BASE, SyncScheme.TLR, SyncScheme.MCS],
                         ids=lambda s: s.value)
@pytest.mark.parametrize("app", sorted(ALL_APPS), ids=str)
def test_application_validates(app, scheme):
    workload = ALL_APPS[app](4)
    result = run(workload, _config(scheme, 4))
    assert result.cycles > 0


@pytest.mark.parametrize("scheme",
                         [SyncScheme.BASE, SyncScheme.TLR],
                         ids=lambda s: s.value)
def test_coarse_mp3d_validates(scheme):
    result = run(mp3d(4, coarse=True), _config(scheme, 4))
    assert result.cycles > 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seed_variation_still_validates(seed):
    result = run(single_counter(4, 256), _config(SyncScheme.TLR, 4, seed))
    assert result.cycles > 0


def test_determinism_same_seed_same_cycles():
    first = run(linked_list(4, 128), _config(SyncScheme.TLR, 4, seed=7))
    second = run(linked_list(4, 128), _config(SyncScheme.TLR, 4, seed=7))
    assert first.cycles == second.cycles
    assert first.stats.summary() == second.stats.summary()


def test_different_seeds_usually_differ():
    cycles = {run(single_counter(4, 128),
                  _config(SyncScheme.TLR, 4, seed=s)).cycles
              for s in range(4)}
    assert len(cycles) > 1


def test_more_threads_than_cpus_rejected():
    with pytest.raises(ValueError):
        run(single_counter(8, 64), _config(SyncScheme.BASE, 4))
