"""Qualitative performance-shape assertions from the paper's evaluation.

These do not pin absolute cycle counts (timing-approximate model, scaled
workloads); they assert the *orderings and trends* the paper reports:
who wins, roughly where, and which mechanisms fire.
"""

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.runner import execute_workload
from repro.workloads.apps import mp3d, radiosity, water_nsq
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)


def _cfg(num_cpus):
    return SystemConfig(num_cpus=num_cpus, max_cycles=300_000_000)


def _cycles(builder, schemes, num_cpus):
    return {scheme: execute_workload(
                builder(), _cfg(num_cpus).with_scheme(scheme)).cycles
            for scheme in schemes}


class TestFigure8Shape:
    """Coarse-grain/no-conflicts: SLE == TLR, both crush BASE and MCS."""

    def test_sle_equals_tlr_without_conflicts(self):
        cycles = _cycles(lambda: multiple_counter(8, 512),
                         (SyncScheme.SLE, SyncScheme.TLR), 8)
        assert cycles[SyncScheme.SLE] == cycles[SyncScheme.TLR]

    def test_elision_beats_base_and_mcs(self):
        cycles = _cycles(lambda: multiple_counter(8, 512),
                         (SyncScheme.BASE, SyncScheme.MCS, SyncScheme.TLR), 8)
        assert cycles[SyncScheme.TLR] < cycles[SyncScheme.MCS]
        assert cycles[SyncScheme.TLR] < cycles[SyncScheme.BASE]

    def test_base_degrades_with_contention(self):
        few = _cycles(lambda: multiple_counter(2, 512),
                      (SyncScheme.BASE,), 2)[SyncScheme.BASE]
        many = _cycles(lambda: multiple_counter(12, 512),
                       (SyncScheme.BASE,), 12)[SyncScheme.BASE]
        # Same total work, more processors: BASE gets *slower*.
        assert many > few

    def test_tlr_scales_with_processors(self):
        few = _cycles(lambda: multiple_counter(2, 512),
                      (SyncScheme.TLR,), 2)[SyncScheme.TLR]
        many = _cycles(lambda: multiple_counter(12, 512),
                       (SyncScheme.TLR,), 12)[SyncScheme.TLR]
        assert many < few  # true concurrency exploited


class TestFigure9Shape:
    """Fine-grain/high-conflict: TLR queues on the data and wins big;
    SLE collapses back to BASE; strict timestamps cost restarts."""

    def test_tlr_beats_everyone(self):
        cycles = _cycles(lambda: single_counter(8, 512),
                         (SyncScheme.BASE, SyncScheme.MCS, SyncScheme.SLE,
                          SyncScheme.TLR), 8)
        tlr = cycles[SyncScheme.TLR]
        assert tlr < cycles[SyncScheme.MCS]
        assert tlr < cycles[SyncScheme.BASE]
        assert tlr < cycles[SyncScheme.SLE]

    def test_sle_tracks_base_under_conflicts(self):
        cycles = _cycles(lambda: single_counter(8, 512),
                         (SyncScheme.BASE, SyncScheme.SLE), 8)
        ratio = cycles[SyncScheme.SLE] / cycles[SyncScheme.BASE]
        assert 0.8 < ratio < 1.25

    def test_strict_ts_worse_than_relaxed(self):
        cycles = _cycles(lambda: single_counter(8, 512),
                         (SyncScheme.TLR, SyncScheme.TLR_STRICT_TS), 8)
        assert cycles[SyncScheme.TLR] < cycles[SyncScheme.TLR_STRICT_TS]

    def test_mcs_scales_but_pays_constant_overhead(self):
        mcs2 = _cycles(lambda: single_counter(2, 512),
                       (SyncScheme.MCS,), 2)[SyncScheme.MCS]
        mcs12 = _cycles(lambda: single_counter(12, 512),
                        (SyncScheme.MCS,), 12)[SyncScheme.MCS]
        # Scalable: no contention collapse with 6x the processors.
        assert mcs12 < mcs2 * 1.5


class TestFigure10Shape:
    """Dynamic conflicts: TLR exploits enqueue/dequeue concurrency."""

    def test_tlr_wins_on_linked_list(self):
        cycles = _cycles(lambda: linked_list(8, 512),
                         (SyncScheme.BASE, SyncScheme.MCS, SyncScheme.SLE,
                          SyncScheme.TLR), 8)
        tlr = cycles[SyncScheme.TLR]
        assert tlr < cycles[SyncScheme.BASE]
        assert tlr < cycles[SyncScheme.MCS]
        assert tlr < cycles[SyncScheme.SLE]


class TestFigure11Shapes:
    """Spot checks of the application suite orderings at reduced scale."""

    def test_radiosity_tlr_big_win(self):
        # Contention on the task queue builds with processor count; the
        # paper's point is at 16 processors.
        cycles = _cycles(lambda: radiosity(16),
                         (SyncScheme.BASE, SyncScheme.TLR), 16)
        assert cycles[SyncScheme.BASE] / cycles[SyncScheme.TLR] > 1.3

    def test_mp3d_mcs_loses_to_base(self):
        cycles = _cycles(lambda: mp3d(8),
                         (SyncScheme.BASE, SyncScheme.MCS), 8)
        assert cycles[SyncScheme.MCS] > cycles[SyncScheme.BASE]

    def test_water_tlr_roughly_neutral(self):
        cycles = _cycles(lambda: water_nsq(8),
                         (SyncScheme.BASE, SyncScheme.TLR), 8)
        speedup = cycles[SyncScheme.BASE] / cycles[SyncScheme.TLR]
        assert 0.95 < speedup < 1.35

    def test_coarse_mp3d_tlr_beats_fine_base(self):
        fine_base = _cycles(lambda: mp3d(8),
                            (SyncScheme.BASE,), 8)[SyncScheme.BASE]
        coarse_tlr = _cycles(lambda: mp3d(8, coarse=True),
                             (SyncScheme.TLR,), 8)[SyncScheme.TLR]
        coarse_base = _cycles(lambda: mp3d(8, coarse=True),
                              (SyncScheme.BASE,), 8)[SyncScheme.BASE]
        assert coarse_tlr < fine_base
        assert coarse_base > 2 * fine_base  # coarse is terrible for BASE
