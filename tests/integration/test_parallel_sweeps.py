"""Integration: the parallel sweep engine against real figure sweeps.

The load-bearing guarantee is determinism -- ``jobs=4`` must be
bit-identical to ``jobs=1`` for the same seeds -- plus cache
incrementality and livelock degradation at the figure level.
"""

import pytest

from repro.harness.cache import ResultCache
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.experiments import figure9_single_counter
from repro.harness.parallel import FailedRun, execute
from repro.harness.spec import RunSpec

PROCS = (2, 4)
OPS = 64


def _cfg(seed=0, max_cycles=20_000_000) -> SystemConfig:
    return SystemConfig(seed=seed, max_cycles=max_cycles)


class TestParallelSerialEquivalence:
    def test_figure9_jobs4_matches_jobs1_bit_for_bit(self):
        serial = figure9_single_counter(total_increments=OPS,
                                        processor_counts=PROCS,
                                        config=_cfg(), jobs=1)
        fanned = figure9_single_counter(total_increments=OPS,
                                        processor_counts=PROCS,
                                        config=_cfg(), jobs=4)
        assert serial.series == fanned.series
        for scheme in serial.series:
            for n in PROCS:
                assert serial.cycles(scheme, n) == fanned.cycles(scheme, n)
        assert not serial.failures and not fanned.failures

    def test_parallel_telemetry_reports_every_run(self):
        sweep = figure9_single_counter(total_increments=OPS,
                                       processor_counts=PROCS,
                                       config=_cfg(), jobs=4)
        telemetry = sweep.extra["telemetry"]
        expected = len(sweep.series) * len(PROCS)
        assert telemetry["total_runs"] == expected
        assert telemetry["simulated"] == expected
        assert telemetry["jobs"] == 4


class TestSweepCaching:
    def test_second_sweep_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(total_increments=OPS, processor_counts=PROCS,
                      config=_cfg(), cache=cache)
        first = figure9_single_counter(jobs=2, **kwargs)
        second = figure9_single_counter(jobs=2, **kwargs)
        assert second.extra["telemetry"]["cache_hits"] == \
            first.extra["telemetry"]["total_runs"]
        assert second.extra["telemetry"]["simulated"] == 0
        assert first.series == second.series

    def test_cached_and_parallel_agree_with_serial(self, tmp_path):
        serial = figure9_single_counter(total_increments=OPS,
                                        processor_counts=PROCS,
                                        config=_cfg(), jobs=1)
        cached = figure9_single_counter(total_increments=OPS,
                                        processor_counts=PROCS,
                                        config=_cfg(), jobs=2,
                                        cache=ResultCache(tmp_path))
        assert serial.series == cached.series


class TestLivelockDegradation:
    def test_one_pathological_config_does_not_abort_the_sweep(self):
        # One spec gets a cycle budget it cannot meet; the engine must
        # finish the others and report the failure in place.
        good = [RunSpec(workload="single-counter", config=_cfg(),
                        workload_args={"total_increments": OPS})
                for _ in range(2)]
        good[1].config.num_cpus = 4
        bad = RunSpec(workload="single-counter",
                      config=_cfg(max_cycles=500),
                      workload_args={"total_increments": OPS})
        outcomes, telemetry = execute([good[0], bad, good[1]],
                                      jobs=4, retries=1)
        assert not isinstance(outcomes[0], FailedRun)
        assert isinstance(outcomes[1], FailedRun)
        assert not isinstance(outcomes[2], FailedRun)
        assert outcomes[1].attempts == 2
        assert telemetry.failures == 1

    def test_figure_level_failure_lands_in_failures_list(self):
        sweep = figure9_single_counter(
            total_increments=OPS, processor_counts=PROCS,
            config=_cfg(max_cycles=3500), jobs=2, retries=1)
        assert sweep.failures, "expected at least one failed cell"
        # TLR still completes at some point of the sweep even under
        # this budget; the sweep as a whole must not have aborted.
        assert any(value is not None
                   for series in sweep.series.values()
                   for value in series)
        for failed in sweep.failures:
            assert failed.error in ("SimulationError", "DeadlockError")
            assert failed.attempts == 2


class TestParallelFigureShape:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_tlr_beats_base_under_contention_any_jobs(self, jobs):
        sweep = figure9_single_counter(total_increments=256,
                                       processor_counts=(4,),
                                       config=_cfg(), jobs=jobs,
                                       include_strict_ts=False)
        assert sweep.cycles(SyncScheme.TLR, 4) < \
            sweep.cycles(SyncScheme.BASE, 4)
