"""The directory-based substrate: same workloads, same schemes, an
unordered network -- everything must still serialize."""

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.parallel import run
from repro.workloads.generator import WorkloadSpec, generate
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)

from tests.conftest import ALL_SCHEMES


def _cfg(scheme, num_cpus=4, seed=0):
    return SystemConfig(num_cpus=num_cpus, scheme=scheme, seed=seed,
                        protocol="directory", max_cycles=100_000_000)


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize("builder", [multiple_counter, single_counter,
                                     linked_list],
                         ids=["multi", "single", "list"])
def test_microbenchmarks_validate_on_directory(builder, scheme):
    result = run(builder(4, 256), _cfg(scheme))
    assert result.cycles > 0


def test_bad_protocol_rejected():
    with pytest.raises(ValueError):
        SystemConfig(protocol="token-coherence")


def test_unordered_network_preserves_tlr_shape():
    cycles = {}
    for scheme in (SyncScheme.BASE, SyncScheme.TLR):
        cycles[scheme] = run(single_counter(8, 512),
                             _cfg(scheme, num_cpus=8)).cycles
    assert cycles[SyncScheme.TLR] < cycles[SyncScheme.BASE]


def test_directory_scales_disjoint_traffic_better_than_bus():
    """Homes are line-interleaved: disjoint-line traffic has no global
    serialization point, unlike the shared bus.  Four pairs of CPUs
    ping-ponging four *different* lines serialize through one slow bus
    but spread across four slow homes."""
    from repro.harness.machine import Machine
    from repro.runtime.program import Workload
    from repro.workloads.common import AddressSpace

    def build():
        space = AddressSpace()
        hot = space.alloc_lines(4)

        def pinger(pair):
            def thread(env):
                for i in range(48):
                    value = yield env.read(hot[pair], pc=f"p{pair}.ld")
                    yield env.write(hot[pair], value + 1, pc=f"p{pair}.st")
                    yield env.compute(5)
            return thread

        threads = [pinger(pair) for pair in range(4) for _ in range(2)]
        return Workload(name="pingpong", threads=threads,
                        meta={"space": space})

    bus_cfg = SystemConfig(num_cpus=8, scheme=SyncScheme.BASE)
    bus_cfg.bus.occupancy = 24  # a slow shared ordering point
    dir_cfg = _cfg(SyncScheme.BASE, num_cpus=8)
    dir_cfg.directory.home_occupancy = 24  # equally slow, but many homes

    bus_machine = Machine(bus_cfg)
    bus_machine.run_workload(build())
    dir_machine = Machine(dir_cfg)
    dir_machine.run_workload(build())
    assert dir_machine.stats.total_cycles < bus_machine.stats.total_cycles


def test_nack_policy_on_directory():
    from dataclasses import replace
    cfg = _cfg(SyncScheme.TLR)
    cfg.spec = replace(cfg.spec, retention_policy="nack")
    result = run(linked_list(4, 256), cfg)
    assert result.cycles > 0


@pytest.mark.parametrize("fuzz_seed", [11, 23, 37, 59])
def test_fuzzed_workloads_on_directory(fuzz_seed):
    import random
    from repro.workloads.generator import random_spec
    spec = random_spec(random.Random(fuzz_seed), num_threads=3)
    result = run(generate(spec), _cfg(SyncScheme.TLR, num_cpus=3))
    assert result.cycles > 0


def test_determinism_on_directory():
    a = run(single_counter(4, 128), _cfg(SyncScheme.TLR, seed=5))
    b = run(single_counter(4, 128), _cfg(SyncScheme.TLR, seed=5))
    assert a.cycles == b.cycles
