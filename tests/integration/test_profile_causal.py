"""Integration tests for the causal profiling layer.

The load-bearing contracts:

* **Profiler-on ≡ profiler-off.**  Attaching the lock profiler (and the
  OP_TXN-writing recorder sink) must not perturb the schedule: with
  metrics on or off, run fingerprints equal the golden fingerprints
  pinned by the policy-lab tests.
* **Live ≡ post-hoc.**  The conflict matrix -- and in fact the whole
  profile snapshot -- computed live from taps is byte-identical to the
  one recomputed from the ``.rlog`` via :mod:`repro.obs.causal`, across
  workloads and contention policies.
* **Abort spans carry causes.**  ``Timeline.txn_spans`` labels aborted
  windows with the restart reason folded from OP_TXN records.
* **CLI surfacing.**  ``repro profile`` renders live and from-log in
  all three formats.
"""

import json

import pytest

from repro.cli import main
from repro.harness.runner import execute_workload, result_fingerprint
from repro.obs.causal import profile_from_log
from repro.obs.profile import matrix_canonical_json
from repro.record import load_log, record_run
from repro.record.timeline import Timeline

from tests.integration.test_policy_lab import GOLDEN_DEFAULT
from tests.integration.test_record_replay import _spec


# ----------------------------------------------------------------------
# Golden: the profiler is schedule-invisible
# ----------------------------------------------------------------------
class TestProfilerPurity:
    @pytest.mark.parametrize("metrics", [True, False])
    def test_fingerprints_match_pre_profiler_goldens(self, metrics):
        for (name, seed), want in GOLDEN_DEFAULT.items():
            spec = _spec(name, seed=seed, ops=96)
            spec.config.metrics = metrics
            result = execute_workload(spec.build_workload(), spec.config)
            assert result_fingerprint(result) == want, (name, seed)

    def test_profile_rides_metrics_without_joining_the_fingerprint(self):
        spec = _spec("linked-list")
        on = execute_workload(spec.build_workload(), spec.config)
        spec_off = _spec("linked-list")
        spec_off.config.metrics = False
        off = execute_workload(spec_off.build_workload(), spec_off.config)
        assert on.metrics["profile"]["totals"]["attempts"] > 0
        assert off.metrics is None
        assert result_fingerprint(on) == result_fingerprint(off)


# ----------------------------------------------------------------------
# Live ≡ post-hoc causal attribution
# ----------------------------------------------------------------------
class TestLiveVsPostHoc:
    @pytest.mark.parametrize("policy", ["timestamp", "nack"])
    @pytest.mark.parametrize("workload", ["linked-list",
                                          "multiple-counter"])
    def test_conflict_matrix_byte_identical(self, workload, policy):
        spec = _spec(workload, policy=policy, ops=96)
        recorded = record_run(spec)
        assert recorded.error is None
        live = recorded.result.metrics["profile"]
        posthoc = profile_from_log(recorded.log)
        assert matrix_canonical_json(live) == \
            matrix_canonical_json(posthoc)
        # Stronger than the acceptance floor: the entire snapshot --
        # histograms, chains, folded stacks -- round-trips the log.
        assert json.dumps(live, sort_keys=True) == \
            json.dumps(posthoc, sort_keys=True)

    def test_directory_protocol_attributes_probe_aborts(self):
        spec = _spec("linked-list", policy="timestamp",
                     protocol="directory", ops=96)
        recorded = record_run(spec)
        live = recorded.result.metrics["profile"]
        assert json.dumps(live, sort_keys=True) == \
            json.dumps(profile_from_log(recorded.log), sort_keys=True)
        # Directory probes reach victims with origin=MEMORY; the folder
        # must still name a champion cpu, not the unknown column.
        if live["conflicts"]:
            aborters = {a for row in live["conflicts"].values()
                        for a in row}
            assert aborters != {"-1"}


# ----------------------------------------------------------------------
# Satellite: abort-cause labels on replay timelines
# ----------------------------------------------------------------------
class TestAbortSpanLabels:
    def test_txn_spans_carry_restart_reasons(self):
        recorded = record_run(_spec("linked-list", ops=96))
        spans = Timeline(load_log(recorded.log)).txn_spans()
        outcomes = {outcome for _, _, _, outcome in spans}
        assert any(o == "commit" for o in outcomes)
        labelled = [o for o in outcomes
                    if ":" in o and not o.startswith("commit")]
        assert labelled, outcomes
        # Reasons come from the processor's restart vocabulary.
        assert all(o.split(":", 1)[1] for o in labelled)


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------
class TestProfileCli:
    def test_live_markdown(self, capsys):
        assert main(["profile", "single-counter", "--cpus", "2",
                     "--ops", "48"]) == 0
        out = capsys.readouterr().out
        assert "elision attempts" in out
        assert "| lock |" in out

    def test_from_log_json_matches_live(self, tmp_path, capsys):
        spec = _spec("single-counter")
        recorded = record_run(spec)
        log = tmp_path / "run.rlog"
        log.write_bytes(recorded.log)
        assert main(["profile", "--from-log", str(log),
                     "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot == recorded.result.metrics["profile"]

    def test_folded_output(self, capsys):
        assert main(["profile", "single-counter", "--cpus", "2",
                     "--ops", "48", "--format", "folded"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and all(len(line.rsplit(" ", 1)) == 2
                             and line.count(";") == 2
                             for line in lines)

    def test_from_log_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.rlog"
        bad.write_bytes(b"not a log")
        assert main(["profile", "--from-log", str(bad)]) == 2
