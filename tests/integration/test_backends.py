"""Cross-backend equivalence: the batched event core (and its
flat-array L1 fast path) is contractually *bit-identical* to the
reference kernel.

Three layers of evidence:

* pinned golden fingerprints that **both** backends must reproduce --
  agreeing with each other is not enough, they must also agree with
  recorded history;
* the full verify/record instrumentation attached over every
  backend x protocol cell -- this is what catches a fused fast leg
  that bypasses an observer shim (the execution would stay identical
  while the oracle sees a different run);
* a seed-fanned fuzz grid comparing fingerprints cell by cell.
"""

import itertools

import pytest

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.runner import execute_workload, result_fingerprint
from repro.harness.spec import SIZE_PARAM, RunSpec
from repro.sim import kernel

BACKENDS = SystemConfig.KNOWN_BACKENDS


def _spec(workload, backend, num_cpus=4, ops=96, seed=0,
          **config_overrides) -> RunSpec:
    config = SystemConfig(num_cpus=num_cpus, scheme=SyncScheme.TLR,
                          seed=seed, kernel_backend=backend,
                          max_cycles=20_000_000, **config_overrides)
    return RunSpec(workload, config, {SIZE_PARAM[workload]: ops})


def _fingerprint(spec: RunSpec, validate: bool = True) -> str:
    result = execute_workload(spec.build_workload(), spec.config,
                              validate=validate)
    return result_fingerprint(result)


def test_known_backends_stay_in_sync():
    """The config mirror and the kernel registry must agree, or a
    backend could be configurable but unbuildable (or vice versa)."""
    assert SystemConfig.KNOWN_BACKENDS == kernel.KNOWN_BACKENDS


class TestGoldenFingerprints:
    """Pinned digests (4 CPUs, TLR, 96 ops) -- movement in any cell
    means simulated behaviour changed, whichever backend ran it."""

    GOLDEN = {
        ("single-counter", 0):
            "82410a9c42a59bb8534b24107080cd6a"
            "07e383a0328d03aa899614b6aadf6888",
        ("single-counter", 1):
            "8c439d071317a1cf21f980e734bc28cd"
            "96fcdd7e55d8959e0a77a36ce2c27afc",
        ("single-counter", 2):
            "6e23d069e8adcea0c6d1f05e83f4327f"
            "dfc310fdf4d73c43c34be04fb385c06f",
        ("linked-list", 0):
            "b0198d2bb44e712dcf0ce5dea9713ec4"
            "7fae62c58822eb60e386822eb61bced0",
        ("linked-list", 1):
            "205a17cc5d17c4c91a099eb015adb61d"
            "51eb9505b0f7b95e86ba72910843922e",
        ("linked-list", 2):
            "7b3e123ff421ed6ef71453c25c9247cd"
            "3f9bdd29cde839361986bbdc886fc519",
    }

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("cell", sorted(GOLDEN))
    def test_backend_reproduces_golden(self, cell, backend):
        workload, seed = cell
        assert _fingerprint(_spec(workload, backend, seed=seed)) \
            == self.GOLDEN[cell]


class TestInstrumentedEquivalence:
    """The fast path must stay *observable*: verify and record wrap
    processor/store entry points after machine construction, so a
    fused leg that early-binds one of them diverges here even though
    the uninstrumented execution is identical."""

    @pytest.mark.parametrize("protocol", ["snoop", "directory"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_verify_oracle_passes(self, backend, protocol):
        from repro.verify import verify_run
        result, _ = verify_run(_spec("linked-list", backend,
                                     protocol=protocol, seed=1))
        assert result.ok, result.headline()
        assert result.num_txns > 0

    @pytest.mark.parametrize("protocol", ["snoop", "directory"])
    def test_record_logs_agree(self, protocol):
        """Both backends record the same event stream (the binary logs
        differ only in the serialized config image) and both replays
        are pure."""
        from repro.record import record_run, replay_log
        recorded = {b: record_run(_spec("linked-list", b,
                                        protocol=protocol, ops=48))
                    for b in BACKENDS}
        fingerprints = {b: r.fingerprint for b, r in recorded.items()}
        assert len(set(fingerprints.values())) == 1, fingerprints
        for backend, run in recorded.items():
            assert run.error is None, (backend, run.error)
            report = replay_log(run.log)
            assert report.ok, (backend, report.render())


class TestGridPlumbing:
    """The experiment grids accept the backend knob and produce the
    same verdicts and cycle counts either way."""

    def _cells(self, backend):
        from repro.harness.experiments import policy_grid
        grid = policy_grid(policies=("backoff",),
                           workloads=("single-counter",),
                           processor_counts=(2,), seeds=1, ops=24,
                           backend=backend, cache=False)
        assert grid.ok, grid.failures
        return grid.cells

    def test_policy_grid_backend_equivalent(self):
        cells = {b: self._cells(b) for b in BACKENDS}
        reference, batched = (cells[b] for b in BACKENDS)
        assert set(reference) == set(batched)
        for key in reference:
            assert reference[key]["cycles"] == batched[key]["cycles"], key

    def test_sched_grid_accepts_backend(self):
        from repro.harness.experiments import sched_grid
        grid = sched_grid(schedulers=("rr",), quanta=(150,),
                          policies=("timestamp",),
                          workloads=("single-counter",),
                          seeds=1, ops=24, backend="batched", cache=False)
        assert grid.ok, grid.failures


class TestSeedFan:
    """25-cell fuzz: workloads x seeds, reference vs batched."""

    CELLS = list(itertools.product(
        ["single-counter", "multiple-counter", "linked-list",
         "litmus-write-skew", "litmus-atomicity"],
        range(5)))
    assert len(CELLS) == 25

    @pytest.mark.parametrize("workload,seed", CELLS)
    def test_backends_agree(self, workload, seed):
        prints = {b: _fingerprint(_spec(workload, b, ops=48, seed=seed),
                                  validate=False)
                  for b in BACKENDS}
        assert len(set(prints.values())) == 1, (workload, seed, prints)
