"""End-to-end serializability properties (hypothesis).

Random lock-based programs are generated and executed under every
synchronization scheme; final memory must match the sequential
specification.  Increment-only workloads have a unique serial outcome
(any serializable schedule conserves the counts), so validation is
exact without enumerating interleavings.
"""

from hypothesis import given, settings, strategies as st

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.runtime.program import Workload
from repro.sync.locks import FREE
from repro.workloads.common import AddressSpace

SCHEMES = [SyncScheme.BASE, SyncScheme.MCS, SyncScheme.SLE, SyncScheme.TLR,
           SyncScheme.TLR_STRICT_TS]


def _run_program(scheme, num_threads, plans, num_counters, seed):
    """``plans[tid]`` is a list of (counter_index, in_cs_work) tuples:
    each entry is one critical section incrementing that counter."""
    space = AddressSpace()
    lock = space.alloc_word()
    counters = space.alloc_lines(num_counters)

    def make_thread(tid):
        def thread(env):
            for counter_idx, work in plans[tid]:
                counter = counters[counter_idx]

                def body(env, counter=counter, work=work):
                    value = yield env.read(counter, pc=f"p.{counter_idx}.ld")
                    if work:
                        yield env.compute(work)
                    yield env.write(counter, value + 1,
                                    pc=f"p.{counter_idx}.st")

                yield from env.critical(lock, body, pc="p")
                yield env.compute(env.fair_delay(lo=1, hi=40))

        return thread

    cfg = SystemConfig(num_cpus=num_threads, scheme=scheme, seed=seed,
                       max_cycles=50_000_000)
    machine = Machine(cfg)
    workload = Workload(name="prop", threads=[make_thread(t)
                                              for t in range(num_threads)],
                        meta={"space": space})
    machine.run_workload(workload)
    return machine, lock, counters


plan_entry = st.tuples(st.integers(0, 2), st.integers(0, 30))
plans_strategy = st.lists(st.lists(plan_entry, max_size=8),
                          min_size=2, max_size=4)


@settings(max_examples=12, deadline=None)
@given(plans=plans_strategy, seed=st.integers(0, 5))
def test_tlr_conserves_all_increments(plans, seed):
    _check(SyncScheme.TLR, plans, seed)


@settings(max_examples=8, deadline=None)
@given(plans=plans_strategy, seed=st.integers(0, 5))
def test_strict_ts_conserves_all_increments(plans, seed):
    _check(SyncScheme.TLR_STRICT_TS, plans, seed)


@settings(max_examples=8, deadline=None)
@given(plans=plans_strategy, seed=st.integers(0, 5))
def test_sle_conserves_all_increments(plans, seed):
    _check(SyncScheme.SLE, plans, seed)


@settings(max_examples=6, deadline=None)
@given(plans=plans_strategy, seed=st.integers(0, 3))
def test_base_and_mcs_conserve_all_increments(plans, seed):
    _check(SyncScheme.BASE, plans, seed)
    _check(SyncScheme.MCS, plans, seed)


def _check(scheme, plans, seed):
    machine, lock, counters = _run_program(scheme, len(plans), plans, 3, seed)
    expected = [0, 0, 0]
    for plan in plans:
        for counter_idx, _ in plan:
            expected[counter_idx] += 1
    got = [machine.store.read(c) for c in counters]
    assert got == expected, f"{scheme}: {got} != {expected}"
    assert machine.store.read(lock) == FREE
