"""Property-based tests over richer program shapes: nested locks,
multi-line transactions, and fault injection (deschedule/terminate)."""

from hypothesis import given, settings, strategies as st

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.runtime.program import Workload
from repro.sync.locks import FREE
from repro.workloads.common import AddressSpace


def _machine(scheme, num_cpus, seed=0):
    return Machine(SystemConfig(num_cpus=num_cpus, scheme=scheme,
                                seed=seed, max_cycles=50_000_000))


# ----------------------------------------------------------------------
# Nested-lock programs
# ----------------------------------------------------------------------
# Each op is (outer lock index, counter index).  The inner lock is
# derived from the counter (``counter % 2``) so every access to a given
# counter is guarded by the same inner lock: with a free choice of inner
# lock, two threads can increment the same counter under disjoint lock
# sets, and a lost update is then a legal sequentially-consistent
# outcome rather than a simulator bug (hypothesis found exactly that).
nested_plan = st.lists(
    st.tuples(st.integers(0, 1),      # outer lock index
              st.integers(0, 2)),     # counter index
    min_size=1, max_size=6)


@settings(max_examples=10, deadline=None)
@given(plans=st.lists(nested_plan, min_size=2, max_size=3),
       scheme=st.sampled_from([SyncScheme.TLR, SyncScheme.SLE,
                               SyncScheme.BASE]))
def test_nested_lock_programs_conserve_increments(plans, scheme):
    space = AddressSpace()
    outer_locks = [space.alloc_word() for _ in range(2)]
    inner_locks = [space.alloc_word() for _ in range(2)]
    counters = space.alloc_lines(3)

    def make_thread(tid):
        def thread(env):
            for outer_idx, counter_idx in plans[tid]:
                counter = counters[counter_idx]

                def inner_body(env, counter=counter):
                    value = yield env.read(counter, pc="n.ld")
                    yield env.write(counter, value + 1, pc="n.st")

                def outer_body(env, inner=inner_locks[counter_idx % 2],
                               inner_body=inner_body):
                    yield from env.critical(inner, inner_body, pc="n.in")

                yield from env.critical(outer_locks[outer_idx], outer_body,
                                        pc="n.out")
                yield env.compute(env.fair_delay(lo=1, hi=30))

        return thread

    machine = _machine(scheme, len(plans))
    workload = Workload(name="nested",
                        threads=[make_thread(t) for t in range(len(plans))],
                        meta={"space": space})
    machine.run_workload(workload)

    expected = [0, 0, 0]
    for plan in plans:
        for _, counter_idx in plan:
            expected[counter_idx] += 1
    got = [machine.store.read(c) for c in counters]
    assert got == expected
    for lock in outer_locks + inner_locks:
        assert machine.store.read(lock) == FREE


# ----------------------------------------------------------------------
# Fault injection: deschedule/reschedule at arbitrary instants
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(deschedule_at=st.integers(10, 4000),
       sleep=st.integers(100, 8000),
       victim=st.integers(0, 2),
       seed=st.integers(0, 3))
def test_deschedule_anywhere_preserves_serializability(deschedule_at,
                                                       sleep, victim, seed):
    """Whatever instant the OS picks to deschedule a TLR thread, no
    increment is lost or duplicated once it is rescheduled."""
    space = AddressSpace()
    lock, counter = space.alloc_word(), space.alloc_word()
    iters = 6
    num = 3

    def incrementer(env):
        def body(env):
            value = yield env.read(counter, pc="f.ld")
            yield env.compute(25)
            yield env.write(counter, value + 1, pc="f.st")

        for _ in range(iters):
            yield from env.critical(lock, body, pc="f")
            yield env.compute(env.fair_delay(lo=1, hi=40))

    machine = _machine(SyncScheme.TLR, num, seed)
    workload = Workload(name="fault", threads=[incrementer] * num,
                        meta={"space": space})
    proc = machine.processors[victim]
    machine.sim.schedule(deschedule_at, proc.deschedule)
    machine.sim.schedule(deschedule_at + sleep, proc.reschedule)
    machine.run_workload(workload, validate=False)
    assert machine.store.read(counter) == num * iters
    assert machine.store.read(lock) == FREE


@settings(max_examples=10, deadline=None)
@given(kill_at=st.integers(10, 3000), seed=st.integers(0, 3))
def test_terminate_anywhere_never_corrupts_survivors(kill_at, seed):
    """Killing a TLR thread at any instant leaves the other threads'
    increments exact and the lock free."""
    space = AddressSpace()
    lock, counter = space.alloc_word(), space.alloc_word()
    survivor_iters = 8

    def victim(env):
        def body(env):
            value = yield env.read(counter, pc="v.ld")
            yield env.compute(40)
            yield env.write(counter, value + 1, pc="v.st")

        while True:
            yield from env.critical(lock, body, pc="v")
            yield env.compute(env.fair_delay(lo=1, hi=40))

    def survivor(env):
        def body(env):
            value = yield env.read(counter, pc="s.ld")
            yield env.write(counter, value + 1, pc="s.st")

        for _ in range(survivor_iters):
            yield from env.critical(lock, body, pc="s")
            yield env.compute(env.fair_delay(lo=1, hi=40))

    machine = _machine(SyncScheme.TLR, 2, seed)
    workload = Workload(name="kill", threads=[victim, survivor],
                        meta={"space": space})
    machine.sim.schedule(kill_at, machine.processors[0].terminate)
    machine.run_workload(workload, validate=False)
    final = machine.store.read(counter)
    # The victim completed some whole number of sections before dying;
    # the survivor completed all of its own.  Nothing was half-applied.
    assert final >= survivor_iters
    assert machine.store.read(lock) == FREE
    assert machine.processors[1].done
