"""Protocol fuzzing: random workload specs under every scheme.

``random_spec``/``generate`` draw diverse locking signatures (skewed
popularity, rotated write orders, nesting, shared locks) and each
generated workload self-validates against its sequential specification.
This is the broadest serializability net in the suite: any protocol bug
that survives the targeted tests tends to fall out here.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.parallel import run
from repro.workloads.generator import WorkloadSpec, generate, random_spec


def _cfg(scheme, num_cpus, seed=0):
    return SystemConfig(num_cpus=num_cpus, scheme=scheme, seed=seed,
                        max_cycles=100_000_000)


@settings(max_examples=15, deadline=None)
@given(fuzz_seed=st.integers(0, 10_000),
       scheme=st.sampled_from([SyncScheme.TLR, SyncScheme.TLR_STRICT_TS]))
def test_fuzzed_workloads_serialize_under_tlr(fuzz_seed, scheme):
    spec = random_spec(random.Random(fuzz_seed), num_threads=3)
    result = run(generate(spec), _cfg(scheme, spec.num_threads))
    assert result.cycles > 0


@settings(max_examples=8, deadline=None)
@given(fuzz_seed=st.integers(0, 10_000))
def test_fuzzed_workloads_serialize_under_sle_and_base(fuzz_seed):
    spec = random_spec(random.Random(fuzz_seed), num_threads=3)
    for scheme in (SyncScheme.SLE, SyncScheme.BASE):
        result = run(generate(spec), _cfg(scheme, spec.num_threads))
        assert result.cycles > 0


@settings(max_examples=6, deadline=None)
@given(fuzz_seed=st.integers(0, 10_000))
def test_fuzzed_workloads_serialize_under_mcs(fuzz_seed):
    spec = random_spec(random.Random(fuzz_seed), num_threads=3)
    result = run(generate(spec), _cfg(SyncScheme.MCS, spec.num_threads))
    assert result.cycles > 0


class TestSpecValidation:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_threads=0)

    def test_rejects_negative_footprint(self):
        with pytest.raises(ValueError):
            WorkloadSpec(cs_writes=-1)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_regions=2, region_weights=[1.0])

    def test_rejects_zero_nesting(self):
        with pytest.raises(ValueError):
            WorkloadSpec(nesting=0)


def test_generate_is_deterministic_per_spec():
    spec = WorkloadSpec(seed=42, num_threads=2, iters_per_thread=4)
    a = run(generate(spec), _cfg(SyncScheme.TLR, 2, seed=1))
    b = run(generate(spec), _cfg(SyncScheme.TLR, 2, seed=1))
    assert a.cycles == b.cycles


def test_single_lock_spec_uses_one_lock():
    spec = WorkloadSpec(single_lock=True, num_regions=4)
    workload = generate(spec)
    assert len(workload.lock_addrs) == 1


def test_nested_spec_uses_two_lock_rings():
    spec = WorkloadSpec(nesting=2, num_regions=3)
    workload = generate(spec)
    assert len(workload.lock_addrs) == 6
