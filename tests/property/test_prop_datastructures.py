"""Property-based tests on the core data structures (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.coherence.cache import CacheArray
from repro.coherence.memory import ValueStore
from repro.coherence.messages import beats
from repro.coherence.states import State
from repro.cpu.isa import line_of
from repro.cpu.writebuffer import WriteBuffer, WriteBufferOverflow
from repro.harness.config import CacheConfig
from repro.tlr.deferral import DeferredQueue
from repro.tlr.timestamp import TimestampAuthority
from repro.coherence.messages import BusRequest, ReqKind

addresses = st.integers(min_value=0, max_value=511)
values = st.integers(min_value=-2**31, max_value=2**31)


class TestWriteBufferModel:
    @given(ops=st.lists(st.tuples(addresses, values), max_size=80))
    def test_matches_dict_model(self, ops):
        buffer = WriteBuffer(capacity_lines=1 << 30)
        model: dict[int, int] = {}
        for addr, value in ops:
            buffer.write(addr, value)
            model[addr] = value
        for addr in {a for a, _ in ops}:
            assert buffer.read(addr) == model[addr]
        store = ValueStore()
        buffer.drain(store)
        for addr, value in model.items():
            assert store.read(addr) == value
        assert not buffer

    @given(ops=st.lists(st.tuples(addresses, values), min_size=1,
                        max_size=200))
    def test_capacity_is_exactly_unique_lines(self, ops):
        lines = {line_of(a) for a, _ in ops}
        buffer = WriteBuffer(capacity_lines=len(lines))
        for addr, value in ops:   # must never overflow
            buffer.write(addr, value)
        tight = WriteBuffer(capacity_lines=len(lines) - 1) \
            if len(lines) > 1 else None
        if tight is not None:
            overflowed = False
            try:
                for addr, value in ops:
                    tight.write(addr, value)
            except WriteBufferOverflow:
                overflowed = True
            assert overflowed


class TestCacheModel:
    @given(ops=st.lists(st.tuples(addresses,
                                  st.sampled_from([State.SHARED,
                                                   State.MODIFIED,
                                                   State.EXCLUSIVE])),
                        max_size=120))
    @settings(max_examples=50)
    def test_installed_lines_remain_findable_until_dropped(self, ops):
        cache = CacheArray(CacheConfig(size_bytes=64 * 1024, assoc=4,
                                       victim_entries=16))
        # With 1024-line capacity and <=512 distinct addresses, nothing
        # is ever evicted: every installed line must be found with the
        # state it was last installed in.
        last: dict[int, State] = {}
        for addr, state in ops:
            cache.install(addr, state)
            last[addr] = state
        for addr, state in last.items():
            line = cache.lookup(addr)
            assert line is not None and line.state is state

    @given(ops=st.lists(addresses, min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_small_cache_never_loses_pinned_lines(self, ops):
        cache = CacheArray(CacheConfig(size_bytes=1024, assoc=2,
                                       victim_entries=4))
        pinned = ops[0]
        cache.install(pinned, State.MODIFIED)
        cache.pin(pinned)
        for addr in ops[1:]:
            if addr == pinned:
                continue
            try:
                cache.install(addr, State.SHARED)
            except Exception:
                continue
        assert cache.lookup(pinned) is not None
        cache.unpin(pinned)


class TestTimestampProperties:
    @given(events=st.lists(
        st.one_of(st.just("commit"),
                  st.just("abandon"),
                  st.tuples(st.integers(0, 100), st.integers(0, 15))),
        max_size=60))
    def test_clock_never_decreases(self, events):
        authority = TimestampAuthority(cpu_id=0)
        previous = authority.clock
        for event in events:
            authority.begin()
            if event == "commit":
                authority.commit()
                assert authority.clock > previous
                previous = authority.clock
            elif event == "abandon":
                authority.abandon()
                assert authority.clock == previous
            else:
                authority.observe_conflict(event)

    @given(clock_pairs=st.lists(st.tuples(st.integers(0, 50),
                                          st.integers(0, 15),
                                          st.integers(0, 50),
                                          st.integers(0, 15)),
                                max_size=60))
    def test_priority_is_total_and_antisymmetric(self, clock_pairs):
        for c1, p1, c2, p2 in clock_pairs:
            a, b = (c1, p1), (c2, p2)
            if a == b:
                assert not beats(a, b) and not beats(b, a)
            else:
                assert beats(a, b) != beats(b, a)


class TestDeferredQueueProperties:
    @given(lines=st.lists(st.integers(0, 40), unique=True, max_size=20))
    def test_drain_order_is_arrival_order(self, lines):
        queue = DeferredQueue(capacity=64)
        for i, line in enumerate(lines):
            queue.push(BusRequest(ReqKind.GETX, line=line, requester=0,
                                  ts=(i, 0)), now=i)
        drained = [e.line for e in queue.drain()]
        assert drained == lines
