"""Shared test fixtures and helpers.

``small_config`` keeps simulations fast: a small L1 (so capacity tests
can exercise evictions), short workloads, and a hard cycle cap so a
liveness bug fails the test instead of hanging the suite.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional

import pytest

from repro.harness.config import (CacheConfig, SpeculationConfig, SyncScheme,
                                  SystemConfig)
from repro.harness.machine import Machine
from repro.runtime.env import ThreadEnv
from repro.runtime.program import Workload
from repro.workloads.common import AddressSpace


def small_config(num_cpus: int = 2,
                 scheme: SyncScheme = SyncScheme.TLR,
                 seed: int = 0, **overrides) -> SystemConfig:
    cfg = SystemConfig(num_cpus=num_cpus, scheme=scheme, seed=seed,
                       max_cycles=20_000_000)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def run_threads(threads: Iterable[Callable[[ThreadEnv], Generator]],
                config: Optional[SystemConfig] = None,
                validate: Optional[Callable] = None,
                space: Optional[AddressSpace] = None,
                name: str = "inline") -> Machine:
    """Run ad-hoc thread generators on a fresh machine; returns the
    machine (stats, store, processors all reachable from it)."""
    threads = list(threads)
    config = config or small_config(num_cpus=len(threads))
    machine = Machine(config)
    workload = Workload(name=name, threads=threads, validate=validate,
                        meta={"space": space or AddressSpace()})
    machine.run_workload(workload)
    return machine


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the sweep engine's on-disk result cache at a per-test
    directory so tests never read from (or write into) the user's real
    ``~/.cache/repro-tlr``."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


ALL_SCHEMES = (SyncScheme.BASE, SyncScheme.MCS, SyncScheme.SLE,
               SyncScheme.TLR, SyncScheme.TLR_STRICT_TS)
SPEC_SCHEMES = (SyncScheme.SLE, SyncScheme.TLR, SyncScheme.TLR_STRICT_TS)
