"""VCD (Value Change Dump) waveform export.

Renders a record log as IEEE-1364 VCD signals so any standard waveform
viewer (GTKWave, Surfer, WaveTrace...) can display a run: per-CPU
transaction state, per-CPU deferral-queue depth, per-lock owner and
bus occupancy, one timeline tick per simulated cycle (1 ns at the
paper's 1 GHz target clock).

The export is deterministic -- no date stamp, signal ids assigned in
declaration order -- so exporting the same log twice yields identical
files (the same discipline as the log itself).
"""

from __future__ import annotations

from typing import Optional, TextIO, Union

from repro.record.format import LogImage
from repro.record.timeline import _TXN_CLOSE, _TXN_OPEN, Timeline

#: VCD identifier alphabet (printable, per the spec).
_ID_FIRST = 33   # '!'
_ID_LAST = 126   # '~'


def _ident(index: int) -> str:
    """Compact VCD identifier for signal ``index``."""
    span = _ID_LAST - _ID_FIRST + 1
    out = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, span)
        out = chr(_ID_FIRST + digit) + out
    return out


def _bits(value: int, width: int) -> str:
    return format(value & ((1 << width) - 1), f"0{width}b")


class _Signal:
    def __init__(self, ident: str, name: str, width: int):
        self.ident = ident
        self.name = name
        self.width = width
        self.value: Optional[int] = None

    def declare(self) -> str:
        kind = "wire" if self.width == 1 else "reg"
        return f"$var {kind} {self.width} {self.ident} {self.name} $end"

    def emit(self, value: int) -> Optional[str]:
        if value == self.value:
            return None
        self.value = value
        if self.width == 1:
            return f"{value & 1}{self.ident}"
        return f"b{_bits(value, self.width)} {self.ident}"


def export_vcd(source: Union[Timeline, LogImage, bytes, str],
               out: TextIO) -> int:
    """Write the log's signals as VCD into ``out``; returns the number
    of value changes emitted."""
    timeline = source if isinstance(source, Timeline) else Timeline(source)
    spec = timeline.image.spec_dict
    num_cpus = spec["config"]["num_cpus"]
    workload = spec["workload"]

    signals: list[_Signal] = []

    def make(name: str, width: int) -> _Signal:
        signal = _Signal(_ident(len(signals)), name, width)
        signals.append(signal)
        return signal

    txn = {cpu: make(f"cpu{cpu}_txn", 1) for cpu in range(num_cpus)}
    depth = {cpu: make(f"cpu{cpu}_defer_depth", 8)
             for cpu in range(num_cpus)}
    owner = {line: make(f"lock_{line:x}_owner", 8)
             for line in timeline.lock_lines}
    bus = make("bus_outstanding", 16)

    out.write("$comment repro.record VCD export: "
              f"workload {workload} $end\n")
    out.write("$timescale 1ns $end\n")
    out.write("$scope module repro $end\n")
    for signal in signals:
        out.write(signal.declare() + "\n")
    out.write("$upscope $end\n$enddefinitions $end\n")

    # Initial values at t=0.
    out.write("$dumpvars\n")
    changes = 0
    for signal in signals:
        initial = 0xFF if signal in owner.values() else 0
        out.write(signal.emit(initial) + "\n")
        changes += 1
    out.write("$end\n")

    current_time = 0
    pending: list[str] = []
    outstanding: set[int] = set()
    lock_lines = set(timeline.lock_lines)

    def flush(new_time: int) -> None:
        nonlocal current_time
        if pending:
            out.write(f"#{current_time}\n")
            for change in pending:
                out.write(change + "\n")
            pending.clear()
        current_time = new_time

    def push(signal: Optional[_Signal], value: int) -> None:
        nonlocal changes
        if signal is None:
            return
        change = signal.emit(value)
        if change is not None:
            pending.append(change)
            changes += 1

    for record in timeline.records:
        if record.time != current_time:
            flush(record.time)
        if record.op == "tap":
            kind = record.label
            if kind == _TXN_OPEN:
                push(txn.get(record.cpu), 1)
            elif kind in _TXN_CLOSE:
                push(txn.get(record.cpu), 0)
            elif kind == "request" and record.ref is not None:
                outstanding.add(record.ref)
                push(bus, len(outstanding))
            elif kind == "data" and record.ref is not None:
                outstanding.discard(record.ref)
                push(bus, len(outstanding))
        elif record.op == "defer":
            push(depth.get(record.cpu), record.depth or 0)
        elif record.op == "state" and record.line in lock_lines:
            signal = owner.get(record.line)
            if record.label in ("M", "E"):
                push(signal, record.cpu)
            elif signal is not None and signal.value == record.cpu:
                push(signal, 0xFF)
    flush(timeline.final_time)
    out.write(f"#{timeline.final_time}\n")
    return changes
