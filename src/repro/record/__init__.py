"""repro.record -- deterministic binary event log, replay and waveforms.

The correctness-tooling backbone for schedule-level debugging:

* :mod:`repro.record.format` -- the compact, versioned, streamable
  binary log format (write, read, diff);
* :mod:`repro.record.recorder` -- :class:`FlightRecorder`, the pure
  observer that taps the kernel and machine without perturbing the
  schedule, and :func:`record_run`;
* :mod:`repro.record.replay` -- the replay-purity check
  (:func:`replay_log`) with first-divergence bisection;
* :mod:`repro.record.timeline` -- time-travel state reconstruction
  from the log alone (seek, interval queries, txn spans);
* :mod:`repro.record.vcd` -- VCD waveform export for GTKWave etc.
"""

from repro.record.format import (LOG_SCHEMA, SCHEMA_HISTORY, Divergence,
                                 LogFormatError, LogImage, LogRecord,
                                 first_divergence, load_log)
from repro.record.recorder import (FlightRecorder, RecordedRun,
                                   artifact_dir, record_run)
from repro.record.replay import ReplayReport, replay_log
from repro.record.timeline import MachineSnapshot, Timeline
from repro.record.vcd import export_vcd

__all__ = [
    "LOG_SCHEMA", "SCHEMA_HISTORY", "Divergence", "LogFormatError",
    "LogImage", "LogRecord", "first_divergence", "load_log",
    "FlightRecorder", "RecordedRun", "artifact_dir", "record_run",
    "ReplayReport", "replay_log", "MachineSnapshot", "Timeline",
    "export_vcd",
]
