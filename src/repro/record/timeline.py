"""Time-travel state reconstruction from a record log alone.

A :class:`Timeline` answers debugger queries -- "what did the machine
look like at cycle N", "who touched line X between cycles A and B",
"when was CPU 2 inside a transaction" -- purely by folding the decoded
log records, never by re-simulating.  That is what makes seeking cheap
and what makes the queries trustworthy while debugging a determinism
bug: the answers come from the captured execution, not from a re-run
that might diverge.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cpu.isa import line_of
from repro.record.format import (DEFER_PUSH, TXN_ABORT, LogImage, LogRecord,
                                 load_log)

#: Tap kinds that open/close a CPU's transaction window.
_TXN_OPEN = "txn-begin"
_TXN_CLOSE = frozenset({"commit", "abort", "loss"})


@dataclass
class CpuState:
    """One CPU's reconstructed view at a point in time."""

    cpu: int
    in_txn: bool = False
    txn_since: Optional[int] = None
    restarts: int = 0
    commits: int = 0
    defer_depth: int = 0

    def render(self) -> str:
        txn = (f"in txn since t={self.txn_since}" if self.in_txn
               else "idle")
        return (f"cpu{self.cpu}: {txn}, commits={self.commits}, "
                f"restarts={self.restarts}, "
                f"deferred={self.defer_depth}")


@dataclass
class MachineSnapshot:
    """The whole reconstructed machine at one cycle."""

    time: int
    cpus: dict[int, CpuState] = field(default_factory=dict)
    #: (cpu, line) -> (state letter, flags) as last recorded.
    lines: dict[tuple[int, int], tuple[str, int]] = field(
        default_factory=dict)
    #: lock line -> owning cpu (writable holder), None when free.
    lock_owners: dict[int, Optional[int]] = field(default_factory=dict)
    bus_outstanding: int = 0
    #: CPU slot -> workload thread on it (repro.sched OP_SCHED records);
    #: empty for scheduler-off logs.
    on_slot: dict[int, Optional[int]] = field(default_factory=dict)

    def render(self) -> str:
        out = [f"state at t={self.time}:"]
        for cpu in sorted(self.cpus):
            out.append("  " + self.cpus[cpu].render())
        if self.on_slot:
            slots = ", ".join(
                f"slot{slot}=" + ("idle" if thread is None
                                  else f"thread{thread}")
                for slot, thread in sorted(self.on_slot.items()))
            out.append(f"  sched: {slots}")
        if self.lock_owners:
            owners = ", ".join(
                f"{line:#x}=" + ("free" if owner is None else f"cpu{owner}")
                for line, owner in sorted(self.lock_owners.items()))
            out.append(f"  locks: {owners}")
        out.append(f"  bus: {self.bus_outstanding} outstanding")
        held = {}
        for (cpu, line), (state, _flags) in sorted(self.lines.items()):
            if state not in ("I", "-"):
                held.setdefault(line, []).append(f"cpu{cpu}:{state}")
        for line in sorted(held):
            out.append(f"  line {line:#x}: " + " ".join(held[line]))
        return "\n".join(out)


class Timeline:
    """Seekable, queryable view over one decoded log."""

    def __init__(self, image: Union[LogImage, bytes, str]):
        if not isinstance(image, LogImage):
            image = load_log(image)
        self.image = image
        self.records = image.records
        self._times = [record.time for record in self.records]
        # Lock *lines* derived from the lock word addresses the
        # recorder embedded at capture time.
        self.lock_lines = sorted({line_of(addr)
                                  for addr in image.header.get("locks", [])})

    # ------------------------------------------------------------------
    # Seeking
    # ------------------------------------------------------------------
    @property
    def final_time(self) -> int:
        return self.image.end.final_time if self.image.end else (
            self._times[-1] if self._times else 0)

    def index_at(self, cycle: int) -> int:
        """Number of records with ``time <= cycle``."""
        return bisect.bisect_right(self._times, cycle)

    def state_at(self, cycle: int) -> MachineSnapshot:
        """Fold the log up to (and including) ``cycle``."""
        snap = MachineSnapshot(time=cycle)
        cpus = snap.cpus
        outstanding: set[int] = set()
        lock_lines = set(self.lock_lines)
        for record in self.records[:self.index_at(cycle)]:
            if record.op == "tap":
                cpu = record.cpu
                state = cpus.get(cpu)
                if state is None and cpu is not None and cpu >= 0:
                    state = cpus[cpu] = CpuState(cpu=cpu)
                kind = record.label
                if kind == _TXN_OPEN and state is not None:
                    state.in_txn = True
                    state.txn_since = record.time
                elif kind in _TXN_CLOSE and state is not None:
                    state.in_txn = False
                    state.txn_since = None
                    if kind == "commit":
                        state.commits += 1
                elif kind == "misspec" and state is not None:
                    state.restarts += 1
                elif kind == "request" and record.ref is not None:
                    outstanding.add(record.ref)
                elif kind == "data" and record.ref is not None:
                    outstanding.discard(record.ref)
            elif record.op == "state":
                snap.lines[(record.cpu, record.line)] = (record.label,
                                                         record.flags or 0)
                if record.line in lock_lines:
                    self._update_lock_owner(snap, record)
            elif record.op == "defer":
                state = cpus.get(record.cpu)
                if state is None and record.cpu is not None:
                    state = cpus[record.cpu] = CpuState(cpu=record.cpu)
                if state is not None:
                    state.defer_depth = record.depth or 0
            elif record.op == "sched":
                if record.label == "switch-in":
                    snap.on_slot[record.cpu] = record.ref
                elif record.label == "switch-out" \
                        and snap.on_slot.get(record.cpu) == record.ref:
                    snap.on_slot[record.cpu] = None
        snap.bus_outstanding = len(outstanding)
        for line in self.lock_lines:
            snap.lock_owners.setdefault(line, None)
        return snap

    @staticmethod
    def _update_lock_owner(snap: MachineSnapshot,
                           record: LogRecord) -> None:
        """A lock's owner is the CPU holding its line writable (M/E);
        dropping below that releases the claim."""
        if record.label in ("M", "E"):
            snap.lock_owners[record.line] = record.cpu
        elif snap.lock_owners.get(record.line) == record.cpu:
            snap.lock_owners[record.line] = None

    # ------------------------------------------------------------------
    # Interval queries
    # ------------------------------------------------------------------
    def line_history(self, line: int, since: int = 0,
                     until: Optional[int] = None) -> list[LogRecord]:
        """Every record touching ``line`` in ``[since, until]`` -- the
        "who touched line X between cycles A and B" query."""
        out = []
        for record in self.records:
            if record.time < since:
                continue
            if until is not None and record.time > until:
                break
            if record.line == line:
                out.append(record)
        return out

    def cpu_history(self, cpu: int, since: int = 0,
                    until: Optional[int] = None) -> list[LogRecord]:
        out = []
        for record in self.records:
            if record.time < since:
                continue
            if until is not None and record.time > until:
                break
            if record.cpu == cpu:
                out.append(record)
        return out

    def txn_spans(self, cpu: Optional[int] = None
                  ) -> list[tuple[int, int, int, str]]:
        """(cpu, begin, end, outcome) for every closed transaction
        window, in begin order.

        Aborted windows carry the restart reason from the co-located
        ``OP_TXN`` abort record (e.g. ``loss:conflict-lost``,
        ``abort:deschedule``) -- the same reason vocabulary
        :mod:`repro.cpu.processor` uses.  Logs whose txn records were
        capacity-dropped fall back to the bare closing tap kind.
        """
        reasons = {(record.cpu, record.time): record.label
                   for record in self.records
                   if record.op == "txn" and record.flags == TXN_ABORT}
        open_since: dict[int, int] = {}
        spans: list[tuple[int, int, int, str]] = []
        for record in self.records:
            if record.op != "tap" or record.cpu is None:
                continue
            if record.label == _TXN_OPEN:
                open_since.setdefault(record.cpu, record.time)
            elif record.label in _TXN_CLOSE:
                begin = open_since.pop(record.cpu, None)
                if begin is not None:
                    outcome = record.label
                    if outcome != "commit":
                        reason = reasons.get((record.cpu, record.time))
                        if reason is not None:
                            outcome = f"{outcome}:{reason}"
                    spans.append((record.cpu, begin, record.time, outcome))
        if cpu is not None:
            spans = [s for s in spans if s[0] == cpu]
        spans.sort(key=lambda s: (s[1], s[0]))
        return spans

    def who_on_cpu(self, cycle: int) -> dict[int, Optional[int]]:
        """``slot -> thread`` occupancy at ``cycle``, folded from the
        OP_SCHED records alone (empty dict for scheduler-off logs) --
        the "who was on-CPU at cycle N" replay query."""
        on_slot: dict[int, Optional[int]] = {}
        for record in self.records[:self.index_at(cycle)]:
            if record.op != "sched":
                continue
            if record.label == "switch-in":
                on_slot[record.cpu] = record.ref
            elif record.label == "switch-out" \
                    and on_slot.get(record.cpu) == record.ref:
                on_slot[record.cpu] = None
        return on_slot

    def sched_spans(self) -> list[tuple[int, int, int, int]]:
        """(slot, thread, on_time, off_time) for every closed slot
        occupancy window, in switch-in order.  A thread still on-CPU at
        the end of the log closes at :attr:`final_time`."""
        open_since: dict[int, tuple[int, int]] = {}
        spans: list[tuple[int, int, int, int]] = []
        for record in self.records:
            if record.op != "sched":
                continue
            if record.label == "switch-in":
                open_since[record.cpu] = (record.ref, record.time)
            elif record.label == "switch-out":
                opened = open_since.pop(record.cpu, None)
                if opened is not None and opened[0] == record.ref:
                    spans.append((record.cpu, record.ref, opened[1],
                                  record.time))
        for slot, (thread, since) in sorted(open_since.items()):
            spans.append((slot, thread, since, self.final_time))
        spans.sort(key=lambda s: (s[2], s[0]))
        return spans

    def counts(self) -> dict[str, int]:
        """Histogram over record ops and tap kinds."""
        histogram: dict[str, int] = {}
        for record in self.records:
            key = (f"tap:{record.label}" if record.op == "tap"
                   else record.op)
            histogram[key] = histogram.get(key, 0) + 1
        return histogram
