"""The binary record-log format.

A record log is a compact, versioned, streamable capture of one
simulation: every kernel dispatch, every tapped controller/processor/bus
event, every coherence line-state change and every deferral-queue edit,
in exact execution order.  Because the simulator is deterministic, the
log doubles as a *proof of schedule*: re-running the embedded
:class:`~repro.harness.spec.RunSpec` with a recorder attached must
reproduce the log byte for byte (the replay-purity contract checked by
:mod:`repro.record.replay`).

Layout::

    magic   b"RPRL"
    u16     LOG_SCHEMA (little-endian)
    u32     header length
    bytes   header JSON (spec, locks, fingerprint version)
    ...     records, each: u8 opcode + LEB128-varint fields
    OP_END  final time, events fired, result fingerprint
    u32     CRC-32 of everything before it

Space comes from three choices: record times are delta-encoded against
a running clock shared by all record kinds (most deltas fit one byte);
strings (event labels, tap kinds) are interned -- an ``OP_STR``
definition is emitted inline on first use, so the table needs no
separate section and the stream stays single-pass; and every integer
field is an unsigned LEB128 varint.

Versioning: :data:`LOG_SCHEMA` names the format generation and
:data:`SCHEMA_HISTORY` must carry a migration note for every generation
ever shipped -- the ``replay-smoke`` CI job fails a schema bump that
forgets its note, and readers refuse logs from other generations
loudly rather than misparse them.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Union

MAGIC = b"RPRL"

#: Format generation.  Bump whenever the record layout, the opcode set
#: or the header contract changes -- and add the migration note below.
LOG_SCHEMA = 3

#: One entry per format generation ever shipped: version -> what
#: changed and how to handle old logs.  CI gates on completeness.
SCHEMA_HISTORY: dict[int, str] = {
    1: "initial format: dispatch/tap/state/defer records, inline "
       "string interning, delta times, trailing CRC-32.",
    2: "added OP_SCHED (0x06): scheduler switch-in/out/migration "
       "records from repro.sched.  v1 logs contain no such records; "
       "re-record from the embedded spec to upgrade.",
    3: "added OP_TXN (0x07): normalized transaction begin/commit/abort "
       "records (lock line, elision-site pc, restart reason, aborter "
       "cpu) for post-hoc contention profiling, and the misspec tap "
       "now fires on controller-initiated losses too.  v2 logs carry "
       "neither; re-record from the embedded spec to upgrade.",
}

# Opcodes.
OP_STR = 0x01        # varint id, varint len, utf-8 bytes
OP_DISPATCH = 0x02   # varint dt, varint label_id
OP_TAP = 0x03        # varint dt, varint cpu+1, varint kind_id,
                     # varint line+1, varint ref
OP_STATE = 0x04      # varint dt, varint cpu+1, varint line,
                     # u8 state index, u8 access flags
OP_DEFER = 0x05      # varint dt, varint cpu+1, u8 op, varint depth
OP_SCHED = 0x06      # varint dt, u8 kind, varint slot+1, varint thread+1
OP_TXN = 0x07        # varint dt, u8 kind, varint cpu+1, then per kind:
                     #   begin:  varint lock_line+1, varint pc_id,
                     #           varint attempts
                     #   commit: (nothing further)
                     #   abort:  varint reason_id, varint conflict_line+1,
                     #           varint aborter+1
OP_END = 0xFF        # varint final_time, varint events_fired,
                     # u8 fp len, fingerprint bytes

#: ``OP_STATE`` state-index vocabulary (MOESI order plus "absent": the
#: line left this cache entirely).
STATE_NAMES = ("M", "O", "E", "S", "I", "-")
STATE_ABSENT = 5

#: ``OP_DEFER`` edit kinds.
DEFER_PUSH = 0
DEFER_DRAIN = 1

#: ``OP_SCHED`` kinds (mirrors repro.sched.engine.SCHED_*: a unit test
#: keeps the vocabularies in sync without an import cycle).
SCHED_KIND_NAMES = ("switch-in", "switch-out", "migrate")

#: ``OP_TXN`` kinds.
TXN_BEGIN = 0
TXN_COMMIT = 1
TXN_ABORT = 2
TXN_KIND_NAMES = ("begin", "commit", "abort")

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


class LogFormatError(ValueError):
    """The bytes are not a record log this code can read."""


# ----------------------------------------------------------------------
# Varint helpers (unsigned LEB128)
# ----------------------------------------------------------------------
def _pack_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class LogWriter:
    """Streams records into ``stream`` (any ``.write(bytes)`` object).

    Not thread-safe; the simulator is single-threaded.  Callers must
    finish with :meth:`end` exactly once.
    """

    def __init__(self, stream, header: dict):
        self._stream = stream
        self._crc = 0
        self._strings: dict[str, int] = {}
        self._last_time = 0
        self.records = 0
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")).encode("utf-8")
        self._emit(MAGIC + _U16.pack(LOG_SCHEMA)
                   + _U32.pack(len(header_bytes)) + header_bytes)

    def _emit(self, data: bytes) -> None:
        self._crc = zlib.crc32(data, self._crc)
        self._stream.write(data)

    def _delta(self, out: bytearray, time: int) -> None:
        _pack_varint(out, time - self._last_time)
        self._last_time = time

    def intern(self, text: str) -> int:
        ident = self._strings.get(text)
        if ident is None:
            ident = len(self._strings)
            self._strings[text] = ident
            raw = text.encode("utf-8")
            out = bytearray((OP_STR,))
            _pack_varint(out, ident)
            _pack_varint(out, len(raw))
            out += raw
            self._emit(bytes(out))
        return ident

    def dispatch(self, time: int, label_id: int) -> None:
        out = bytearray((OP_DISPATCH,))
        self._delta(out, time)
        _pack_varint(out, label_id)
        self._emit(bytes(out))
        self.records += 1

    def tap(self, time: int, cpu: int, kind_id: int,
            line: Optional[int], ref: Optional[int]) -> None:
        out = bytearray((OP_TAP,))
        self._delta(out, time)
        _pack_varint(out, cpu + 1)
        _pack_varint(out, kind_id)
        _pack_varint(out, 0 if line is None else line + 1)
        _pack_varint(out, 0 if ref is None else ref)
        self._emit(bytes(out))
        self.records += 1

    def state(self, time: int, cpu: int, line: int, state_index: int,
              flags: int) -> None:
        out = bytearray((OP_STATE,))
        self._delta(out, time)
        _pack_varint(out, cpu + 1)
        _pack_varint(out, line)
        out.append(state_index)
        out.append(flags)
        self._emit(bytes(out))
        self.records += 1

    def defer_edit(self, time: int, cpu: int, op: int, depth: int) -> None:
        out = bytearray((OP_DEFER,))
        self._delta(out, time)
        _pack_varint(out, cpu + 1)
        out.append(op)
        _pack_varint(out, depth)
        self._emit(bytes(out))
        self.records += 1

    def sched(self, time: int, kind: int, slot: int, thread: int) -> None:
        out = bytearray((OP_SCHED,))
        self._delta(out, time)
        out.append(kind)
        _pack_varint(out, slot + 1)
        _pack_varint(out, thread + 1)
        self._emit(bytes(out))
        self.records += 1

    def txn_begin(self, time: int, cpu: int, lock_line: Optional[int],
                  pc_id: int, attempts: int) -> None:
        out = bytearray((OP_TXN,))
        self._delta(out, time)
        out.append(TXN_BEGIN)
        _pack_varint(out, cpu + 1)
        _pack_varint(out, 0 if lock_line is None else lock_line + 1)
        _pack_varint(out, pc_id)
        _pack_varint(out, attempts)
        self._emit(bytes(out))
        self.records += 1

    def txn_commit(self, time: int, cpu: int) -> None:
        out = bytearray((OP_TXN,))
        self._delta(out, time)
        out.append(TXN_COMMIT)
        _pack_varint(out, cpu + 1)
        self._emit(bytes(out))
        self.records += 1

    def txn_abort(self, time: int, cpu: int, reason_id: int,
                  conflict_line: Optional[int], aborter: int) -> None:
        out = bytearray((OP_TXN,))
        self._delta(out, time)
        out.append(TXN_ABORT)
        _pack_varint(out, cpu + 1)
        _pack_varint(out, reason_id)
        _pack_varint(out, 0 if conflict_line is None else conflict_line + 1)
        _pack_varint(out, aborter + 1)
        self._emit(bytes(out))
        self.records += 1

    def end(self, final_time: int, events_fired: int,
            fingerprint: str) -> None:
        raw = fingerprint.encode("ascii")
        out = bytearray((OP_END,))
        _pack_varint(out, final_time)
        _pack_varint(out, events_fired)
        out.append(len(raw))
        out += raw
        self._emit(bytes(out))
        # The CRC trailer covers every byte before it, header included.
        self._stream.write(_U32.pack(self._crc))


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogRecord:
    """One decoded record, with interned strings resolved.

    ``op`` is ``"dispatch"``/``"tap"``/``"state"``/``"defer"``/
    ``"sched"``/``"txn"``; the remaining fields are populated per kind
    (``None`` where a kind has no such field).  ``label`` carries the
    dispatch label or the tap kind; for state records it is the state
    letter.  Sched records reuse ``cpu`` for the CPU *slot* and ``ref``
    for the workload thread; ``label`` is the :data:`SCHED_KIND_NAMES`
    entry.  Txn records put the :data:`TXN_KIND_NAMES` index in
    ``flags``; ``label`` is the elision-site pc (begin) or restart
    reason (abort), ``line`` the lock line (begin) or conflicting line
    (abort), ``ref`` the attempt count (begin) or aborter cpu (abort,
    ``None`` = unknown).
    """

    op: str
    time: int
    cpu: Optional[int] = None
    label: Optional[str] = None
    line: Optional[int] = None
    ref: Optional[int] = None
    flags: Optional[int] = None
    depth: Optional[int] = None

    def render(self) -> str:
        where = f" line={self.line:#x}" if self.line is not None else ""
        who = f" cpu{self.cpu}" if self.cpu is not None else ""
        extra = ""
        if self.op == "state":
            bits = ""
            if self.flags:
                bits = ":" + ("a" if self.flags & 1 else "") + (
                    "w" if self.flags & 2 else "")
            extra = f" -> {self.label}{bits}"
            return f"{self.time:>9} {self.op:<9}{who}{where}{extra}"
        if self.op == "defer":
            extra = (f" {'push' if self.flags == DEFER_PUSH else 'drain'}"
                     f" depth={self.depth}")
            return f"{self.time:>9} {self.op:<9}{who}{extra}"
        if self.op == "sched":
            return (f"{self.time:>9} {self.op:<9} slot{self.cpu} "
                    f"{self.label} thread={self.ref}")
        if self.op == "txn":
            kind = TXN_KIND_NAMES[self.flags]
            if self.flags == TXN_BEGIN:
                extra = f" {self.label}{where} attempts={self.ref}"
            elif self.flags == TXN_ABORT:
                by = f" by cpu{self.ref}" if self.ref is not None else ""
                extra = f" {self.label}{where}{by}"
            return f"{self.time:>9} {self.op:<9}{who} {kind}{extra}"
        if self.ref:
            extra = f" #{self.ref}"
        return f"{self.time:>9} {self.op:<9}{who} {self.label}{where}{extra}"


@dataclass
class LogEnd:
    """The END summary record."""

    final_time: int
    events_fired: int
    fingerprint: str


@dataclass
class LogImage:
    """A fully decoded log."""

    header: dict
    records: list[LogRecord]
    end: Optional[LogEnd]

    @property
    def spec_dict(self) -> dict:
        return self.header["spec"]


def read_header(data: bytes) -> tuple[dict, int]:
    """Decode and validate the file header; returns (header, offset of
    the first record)."""
    if data[:4] != MAGIC:
        raise LogFormatError("not a record log (bad magic)")
    (version,) = _U16.unpack_from(data, 4)
    if version != LOG_SCHEMA:
        note = SCHEMA_HISTORY.get(version, "unknown generation")
        raise LogFormatError(
            f"log schema v{version}, this reader speaks v{LOG_SCHEMA} "
            f"({note})")
    (header_len,) = _U32.unpack_from(data, 6)
    start = 10
    header = json.loads(data[start:start + header_len].decode("utf-8"))
    return header, start + header_len


def iter_records(data: bytes, pos: int
                 ) -> Iterator[Union[LogRecord, LogEnd]]:
    """Stream-decode records from ``pos``; yields :class:`LogRecord`
    instances and finally one :class:`LogEnd`."""
    strings: dict[int, str] = {}
    last_time = 0
    limit = len(data) - 4  # trailing CRC
    while pos < limit:
        op = data[pos]
        pos += 1
        if op == OP_STR:
            ident, pos = _read_varint(data, pos)
            length, pos = _read_varint(data, pos)
            strings[ident] = data[pos:pos + length].decode("utf-8")
            pos += length
        elif op == OP_DISPATCH:
            dt, pos = _read_varint(data, pos)
            label_id, pos = _read_varint(data, pos)
            last_time += dt
            yield LogRecord(op="dispatch", time=last_time,
                            label=strings[label_id])
        elif op == OP_TAP:
            dt, pos = _read_varint(data, pos)
            cpu, pos = _read_varint(data, pos)
            kind_id, pos = _read_varint(data, pos)
            line, pos = _read_varint(data, pos)
            ref, pos = _read_varint(data, pos)
            last_time += dt
            yield LogRecord(op="tap", time=last_time, cpu=cpu - 1,
                            label=strings[kind_id],
                            line=line - 1 if line else None,
                            ref=ref or None)
        elif op == OP_STATE:
            dt, pos = _read_varint(data, pos)
            cpu, pos = _read_varint(data, pos)
            line, pos = _read_varint(data, pos)
            state_index = data[pos]
            flags = data[pos + 1]
            pos += 2
            last_time += dt
            yield LogRecord(op="state", time=last_time, cpu=cpu - 1,
                            label=STATE_NAMES[state_index], line=line,
                            flags=flags)
        elif op == OP_DEFER:
            dt, pos = _read_varint(data, pos)
            cpu, pos = _read_varint(data, pos)
            edit = data[pos]
            pos += 1
            depth, pos = _read_varint(data, pos)
            last_time += dt
            yield LogRecord(op="defer", time=last_time, cpu=cpu - 1,
                            flags=edit, depth=depth)
        elif op == OP_SCHED:
            dt, pos = _read_varint(data, pos)
            kind = data[pos]
            pos += 1
            slot, pos = _read_varint(data, pos)
            thread, pos = _read_varint(data, pos)
            last_time += dt
            yield LogRecord(op="sched", time=last_time, cpu=slot - 1,
                            label=SCHED_KIND_NAMES[kind], ref=thread - 1,
                            flags=kind)
        elif op == OP_TXN:
            dt, pos = _read_varint(data, pos)
            kind = data[pos]
            pos += 1
            cpu, pos = _read_varint(data, pos)
            last_time += dt
            if kind == TXN_BEGIN:
                line, pos = _read_varint(data, pos)
                pc_id, pos = _read_varint(data, pos)
                attempts, pos = _read_varint(data, pos)
                yield LogRecord(op="txn", time=last_time, cpu=cpu - 1,
                                label=strings[pc_id],
                                line=line - 1 if line else None,
                                ref=attempts, flags=kind)
            elif kind == TXN_COMMIT:
                yield LogRecord(op="txn", time=last_time, cpu=cpu - 1,
                                flags=kind)
            else:
                reason_id, pos = _read_varint(data, pos)
                line, pos = _read_varint(data, pos)
                aborter, pos = _read_varint(data, pos)
                yield LogRecord(op="txn", time=last_time, cpu=cpu - 1,
                                label=strings[reason_id],
                                line=line - 1 if line else None,
                                ref=aborter - 1 if aborter else None,
                                flags=kind)
        elif op == OP_END:
            final_time, pos = _read_varint(data, pos)
            fired, pos = _read_varint(data, pos)
            fp_len = data[pos]
            pos += 1
            fingerprint = data[pos:pos + fp_len].decode("ascii")
            pos += fp_len
            yield LogEnd(final_time=final_time, events_fired=fired,
                         fingerprint=fingerprint)
            return
        else:
            raise LogFormatError(f"unknown opcode {op:#x} at byte {pos - 1}")
    raise LogFormatError("log truncated: no END record")


def load_log(source: Union[str, bytes, "os.PathLike"]) -> LogImage:
    """Read and fully decode a log from a path or raw bytes, verifying
    the CRC trailer."""
    if isinstance(source, (bytes, bytearray)):
        data = bytes(source)
    else:
        with open(source, "rb") as fh:
            data = fh.read()
    if len(data) < 14:
        raise LogFormatError("log truncated: shorter than any header")
    (stored_crc,) = _U32.unpack_from(data, len(data) - 4)
    actual_crc = zlib.crc32(data[:-4])
    if stored_crc != actual_crc:
        raise LogFormatError(
            f"CRC mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x} (corrupt or truncated log)")
    header, pos = read_header(data)
    records: list[LogRecord] = []
    end: Optional[LogEnd] = None
    for item in iter_records(data, pos):
        if isinstance(item, LogEnd):
            end = item
        else:
            records.append(item)
    return LogImage(header=header, records=records, end=end)


# ----------------------------------------------------------------------
# Divergence search
# ----------------------------------------------------------------------
@dataclass
class Divergence:
    """Where two logs first disagree."""

    index: int                      # record index of the first mismatch
    ours: Optional[LogRecord]       # None = log A ended early
    theirs: Optional[LogRecord]     # None = log B ended early
    context: list[LogRecord]        # the shared records just before it

    def render(self, context: int = 8) -> str:
        lines = [f"first divergence at record #{self.index}:"]
        for record in self.context[-context:]:
            lines.append("    " + record.render())
        lines.append("  A: " + (self.ours.render() if self.ours
                                else "<log ends>"))
        lines.append("  B: " + (self.theirs.render() if self.theirs
                                else "<log ends>"))
        return "\n".join(lines)


def first_divergence(a: LogImage, b: LogImage,
                     context: int = 16) -> Optional[Divergence]:
    """The first record where ``a`` and ``b`` differ (None if the
    record streams are identical -- headers and END summaries are not
    compared here)."""
    recent: list[LogRecord] = []
    for index in range(max(len(a.records), len(b.records))):
        ours = a.records[index] if index < len(a.records) else None
        theirs = b.records[index] if index < len(b.records) else None
        if ours != theirs:
            return Divergence(index=index, ours=ours, theirs=theirs,
                              context=list(recent))
        if ours is not None:
            recent.append(ours)
            if len(recent) > context:
                recent.pop(0)
    return None
