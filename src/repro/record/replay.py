"""Deterministic replay: re-execute a log's run and prove it identical.

The replay-purity contract: a record log embeds the full
:class:`~repro.harness.spec.RunSpec` (and the harness mode) that
produced it, so re-executing it with a fresh recorder must yield
**byte-identical** log bytes and the same run fingerprint.  When it
does not, something non-deterministic leaked into the simulator -- and
the divergence report names the first record where the schedules part
ways, with the shared context right before it, which is the bisection
anchor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.harness.spec import RunSpec
from repro.record.format import (Divergence, LogFormatError, LogImage,
                                 first_divergence, load_log)
from repro.record.recorder import record_run


@dataclass
class ReplayReport:
    """Outcome of one replay-purity check."""

    ok: bool                      # bytes AND fingerprint both match
    log_identical: bool
    fingerprint_identical: bool
    original_fingerprint: str
    replay_fingerprint: str
    records: int                  # records in the original log
    events_fired: int
    final_time: int
    divergence: Optional[Divergence] = None
    error: Optional[str] = None   # replay-side run error, if any

    def render(self) -> str:
        if self.ok:
            return (f"replay pure: {self.records} records, "
                    f"{self.events_fired} events to t={self.final_time}, "
                    f"fingerprint {self.original_fingerprint[:12]}… "
                    f"byte-identical")
        lines = ["REPLAY DIVERGED:"]
        if not self.fingerprint_identical:
            lines.append(f"  fingerprint: {self.original_fingerprint} "
                         f"!= {self.replay_fingerprint}")
        if not self.log_identical and self.divergence is not None:
            lines.append(self.divergence.render())
        if self.error:
            lines.append(f"  replay error: {self.error}")
        return "\n".join(lines)


def _reexecute(image: LogImage) -> tuple[bytes, str, Optional[str]]:
    """Re-run the embedded spec under the harness mode the log names;
    returns (log bytes, fingerprint, error)."""
    spec = RunSpec.from_dict(image.spec_dict)
    harness = image.header.get("harness") or {"kind": "run"}
    if harness.get("kind") == "verify":
        # Verify runs carry monitor instrumentation whose watchdog
        # events are part of the recorded schedule; replay must attach
        # the same monitors with the same options.
        from repro.verify.explorer import VerifyOptions, verify_run
        options = VerifyOptions.from_dict(harness["options"])
        result, _ = verify_run(spec, options, record=True)
        log = result.log_bytes or b""
        return log, _end_fingerprint(log), result.error
    recorded = record_run(spec)
    return recorded.log, recorded.fingerprint, recorded.error


def _end_fingerprint(log_bytes: bytes) -> str:
    if not log_bytes:
        return ""
    image = load_log(log_bytes)
    return image.end.fingerprint if image.end is not None else ""


def replay_log(source: Union[str, bytes, "os.PathLike"]) -> ReplayReport:
    """Replay ``source`` (path or raw bytes) and compare byte-for-byte."""
    if isinstance(source, (bytes, bytearray)):
        original = bytes(source)
    else:
        with open(source, "rb") as fh:
            original = fh.read()
    image = load_log(original)
    if image.end is None:
        raise LogFormatError("log has no END record; cannot replay-check")
    replayed, replay_fp, error = _reexecute(image)
    log_identical = replayed == original
    fingerprint_identical = replay_fp == image.end.fingerprint
    divergence = None
    if not log_identical:
        divergence = first_divergence(image, load_log(replayed))
    return ReplayReport(
        ok=log_identical and fingerprint_identical,
        log_identical=log_identical,
        fingerprint_identical=fingerprint_identical,
        original_fingerprint=image.end.fingerprint,
        replay_fingerprint=replay_fp,
        records=len(image.records),
        events_fired=image.end.events_fired,
        final_time=image.end.final_time,
        divergence=divergence,
        error=error)
