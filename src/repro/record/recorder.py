"""The flight recorder: capture one run as a binary record log.

:class:`FlightRecorder` is a pure observer assembled from two existing
zero-cost instrumentation surfaces:

* the kernel's ``on_dispatch`` hook (every fired event, with its cheap
  low-cardinality label -- installing it does *not* flip
  ``verbose_labels``, so call sites compute exactly what they compute
  in an unrecorded run and the schedule is pinned bit-identical);
* the shared machine tap layer (:class:`repro.sim.taps.MachineTaps`)
  for bus transactions, coherence handlers, deferral edits and
  transaction begin/commit/abort/restart, including post-call state
  reads through the side-effect-free ``cache.peek``.

Two normalizations keep logs byte-reproducible across processes:
request ids come from a process-global counter, so the recorder maps
each ``req_id`` to a dense first-seen index; and dispatch labels are
truncated to their first token, which removes embedded request reprs
(present when a chaos run has ``verbose_labels`` on) and keeps the
string table small.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.harness.runner import RunResult, result_fingerprint
from repro.harness.spec import FINGERPRINT_VERSION, RunSpec
from repro.record.format import (DEFER_DRAIN, DEFER_PUSH, LOG_SCHEMA,
                                 STATE_ABSENT, STATE_NAMES, LogWriter)
from repro.sim.taps import MachineTaps
from repro.sim.trace import _line_of_args

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.machine import Machine

#: Tap kinds after which a cache line's coherence state may have
#: changed; the recorder re-reads the touched line post-call and logs a
#: state record when it moved.
_STATE_KINDS = frozenset({"data", "invalidation", "forward", "probe",
                          "service", "loss"})

#: Tap kinds after which the deferral queue's depth may have changed.
_DEFER_KINDS = frozenset({"defer", "service", "commit", "abort", "loss"})

_STATE_INDEX = {name: index for index, name in enumerate(STATE_NAMES)}


class _TxnWriterSink:
    """Adapts :class:`~repro.obs.profile.TxnTapFolder` events into
    ``OP_TXN`` records on the recorder's writer.

    Deferral push/service events are deliberate no-ops here: the raw
    ``defer``/``service`` taps are already in the log as ``OP_TAP``
    records carrying the dense request ref, and the post-hoc fold
    (:func:`repro.obs.causal.profile_from_log`) rebuilds wait times
    from those -- duplicating them as txn records would bloat the log
    for no information.
    """

    def __init__(self, recorder: "FlightRecorder"):
        self._recorder = recorder

    def txn_begin(self, time: int, cpu: int, lock_line, pc: str,
                  attempts: int) -> None:
        if self._recorder._drop("txn"):
            return
        writer = self._recorder._writer
        writer.txn_begin(time, cpu, lock_line, writer.intern(pc), attempts)

    def txn_commit(self, time: int, cpu: int) -> None:
        if not self._recorder._drop("txn"):
            self._recorder._writer.txn_commit(time, cpu)

    def txn_abort(self, time: int, cpu: int, reason: str, conflict_line,
                  aborter: int) -> None:
        if self._recorder._drop("txn"):
            return
        writer = self._recorder._writer
        writer.txn_abort(time, cpu, writer.intern(reason), conflict_line,
                         aborter)

    def defer_push(self, time: int, holder_cpu: int, key) -> None:
        pass

    def defer_service(self, time: int, key) -> None:
        pass


def artifact_dir() -> str:
    """Where auto-captured logs land: ``$REPRO_ARTIFACT_DIR`` or
    ``./artifacts`` (created on first use)."""
    path = os.environ.get("REPRO_ARTIFACT_DIR") or "artifacts"
    os.makedirs(path, exist_ok=True)
    return path


class FlightRecorder:
    """Records one machine's execution into a binary log stream.

    ``harness`` describes how the run is being driven (``{"kind":
    "run"}`` or ``{"kind": "verify", "options": {...}}``) so the
    replayer can reconstruct the *same* instrumentation -- a verify run
    carries monitor-scheduled watchdog events whose kernel dispatches
    are part of the log.

    ``capacity`` optionally bounds the number of tap/state/defer
    records; once reached, further ones are dropped and tallied per
    kind in :attr:`dropped_by_kind` (kernel dispatch records are never
    dropped, END is always written).  Each attached consumer keeps its
    own such accounting -- a saturated tracer does not cost the
    recorder records, and vice versa.
    """

    def __init__(self, spec: RunSpec, *, locks: Optional[list] = None,
                 harness: Optional[dict] = None, stream=None,
                 capacity: Optional[int] = None):
        self.spec = spec
        self._buffer = stream if stream is not None else io.BytesIO()
        self.capacity = capacity
        self.dropped = 0
        self.dropped_by_kind: dict[str, int] = {}
        header = {
            "log_schema": LOG_SCHEMA,
            "fingerprint_version": FINGERPRINT_VERSION,
            "spec": spec.to_dict(),
            "harness": harness or {"kind": "run"},
            "locks": sorted(locks or []),
        }
        self._writer = LogWriter(self._buffer, header)
        self._label_ids: dict[str, int] = {}
        self._kind_ids: dict[str, int] = {}
        self._refs: dict[int, int] = {}
        self._line_states: dict[tuple[int, int], tuple[int, int]] = {}
        self._defer_depth: dict[int, int] = {}
        self._machine: Optional["Machine"] = None
        self._finished = False

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, machine: "Machine") -> "FlightRecorder":
        """Install the kernel dispatch hook and register on the shared
        tap layer.  Call before ``run_workload``."""
        from repro.obs.profile import TxnTapFolder

        self._machine = machine
        machine.sim.on_dispatch = self._on_dispatch
        taps = MachineTaps.ensure(machine).add_consumer(self)
        # The txn folder runs *after* the raw-tap consumer above, so
        # each OP_TXN record lands right behind the OP_TAP record of
        # the event it folds -- a deterministic interleaving the
        # post-hoc profiler relies on.
        taps.add_consumer(
            TxnTapFolder(_TxnWriterSink(self)).attach_machine(machine))
        # Scheduler switch-in/out/migration events (repro.sched) become
        # OP_SCHED records.  With the scheduler off (the default) the
        # engine is never constructed, nothing ever calls the listener,
        # and the record stream is byte-identical to a pre-sched log.
        machine.sched_listeners.append(self._on_sched)
        return self

    # ------------------------------------------------------------------
    # Kernel dispatch hook
    # ------------------------------------------------------------------
    def _on_dispatch(self, time: int, label: str) -> None:
        label_id = self._label_ids.get(label)
        if label_id is None:
            # First token only: drops per-request reprs (verbose runs)
            # and keeps the interned table low-cardinality.
            label_id = self._writer.intern(label.split(" ", 1)[0])
            self._label_ids[label] = label_id
        self._writer.dispatch(time, label_id)

    # ------------------------------------------------------------------
    # Machine taps
    # ------------------------------------------------------------------
    def _drop(self, kind: str) -> bool:
        if self.capacity is not None and self._writer.records >= self.capacity:
            self.dropped += 1
            self.dropped_by_kind[kind] = \
                self.dropped_by_kind.get(kind, 0) + 1
            return True
        return False

    def _ref_id(self, req_id: Optional[int]) -> Optional[int]:
        """Dense, first-seen-order request id (the raw counter is
        process-global and would break byte reproducibility)."""
        if req_id is None:
            return None
        dense = self._refs.get(req_id)
        if dense is None:
            dense = len(self._refs) + 1
            self._refs[req_id] = dense
        return dense

    def on_tap(self, time: int, cpu: int, kind: str, args: tuple,
               obj: object) -> None:
        if self._drop(kind):
            return
        kind_id = self._kind_ids.get(kind)
        if kind_id is None:
            kind_id = self._writer.intern(kind)
            self._kind_ids[kind] = kind_id
        if kind == "request":
            request = args[0]
            line: Optional[int] = request.line
            ref = self._ref_id(request.req_id)
        else:
            line = _line_of_args(args, kind)
            ref = None
            for arg in args:
                req_id = getattr(arg, "req_id", None)
                if isinstance(req_id, int):
                    ref = self._ref_id(req_id)
                    break
        self._writer.tap(time, cpu, kind_id, line, ref)

    def _on_sched(self, time: int, kind: int, slot: int,
                  thread: int) -> None:
        if self._drop("sched"):
            return
        self._writer.sched(time, kind, slot, thread)

    def on_tap_post(self, time: int, cpu: int, kind: str, args: tuple,
                    obj: object) -> None:
        if kind in _STATE_KINDS:
            line_addr = _line_of_args(args, kind)
            cache = getattr(obj, "cache", None)
            if line_addr is not None and cache is not None:
                if not self._drop("state"):
                    line = cache.peek(line_addr)
                    if line is None:
                        snapshot = (STATE_ABSENT, 0)
                    else:
                        flags = (1 if line.accessed else 0) | (
                            2 if line.spec_written else 0)
                        snapshot = (_STATE_INDEX[line.state.value], flags)
                    key = (cpu, line_addr)
                    if self._line_states.get(key) != snapshot:
                        self._line_states[key] = snapshot
                        self._writer.state(time, cpu, line_addr,
                                           snapshot[0], snapshot[1])
        if kind in _DEFER_KINDS:
            deferred = getattr(obj, "deferred", None)
            if deferred is not None and not self._drop("defer-edit"):
                depth = len(deferred)
                known = self._defer_depth.get(cpu, 0)
                if depth != known:
                    self._defer_depth[cpu] = depth
                    op = DEFER_PUSH if depth > known else DEFER_DRAIN
                    self._writer.defer_edit(time, cpu, op, depth)

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------
    def finish(self, fingerprint: str) -> bytes:
        """Write the END record and return the complete log bytes (for
        a ``BytesIO``-backed recorder; file-backed streams return
        ``b""`` and the caller owns the file)."""
        if self._finished:
            raise RuntimeError("recorder already finished")
        self._finished = True
        sim = self._machine.sim if self._machine is not None else None
        self._writer.end(sim.now if sim is not None else 0,
                         sim.events_fired if sim is not None else 0,
                         fingerprint)
        if sim is not None and sim.on_dispatch == self._on_dispatch:
            sim.on_dispatch = None
        if isinstance(self._buffer, io.BytesIO):
            return self._buffer.getvalue()
        return b""


# ----------------------------------------------------------------------
# One recorded run
# ----------------------------------------------------------------------
@dataclass
class RecordedRun:
    """What :func:`record_run` produced.  ``error`` is non-None when
    the run ended in a validation failure or a kernel error -- the log
    still captures everything up to that point, which is exactly the
    debugging story a failing run needs."""

    result: RunResult
    log: bytes
    fingerprint: str
    error: Optional[str] = None


def record_run(spec: RunSpec) -> RecordedRun:
    """Execute ``spec`` on a fresh machine with a recorder attached.

    Mirrors :func:`repro.harness.runner.execute_workload` exactly (same
    machine construction, same metrics gating) so a recorded run's
    fingerprint matches an unrecorded run of the same spec -- the
    record-on ≡ record-off contract the golden tests pin.
    """
    from repro.harness.machine import Machine
    from repro.obs import MachineMetrics
    from repro.obs.profile import LockProfiler
    from repro.runtime.program import ValidationError
    from repro.sim.kernel import SimulationError

    workload = spec.build_workload()
    machine = Machine(spec.config)
    recorder = FlightRecorder(
        spec, locks=sorted(workload.lock_addrs)).attach(machine)
    collector = (MachineMetrics().attach(machine)
                 if spec.config.metrics else None)
    profiler = (LockProfiler().attach(machine)
                if spec.config.metrics else None)
    error: Optional[str] = None
    try:
        machine.run_workload(workload, validate=spec.validate)
    except (ValidationError, SimulationError) as exc:
        error = f"{type(exc).__name__}: {exc}"
    metrics = None
    if collector is not None:
        if profiler is not None:
            profiler.publish(collector.registry)
        metrics = collector.finalize(machine)
        if profiler is not None:
            metrics["profile"] = profiler.snapshot()
    result = RunResult(
        config=spec.config, workload_name=workload.name,
        stats=machine.stats, store=machine.store, metrics=metrics)
    fingerprint = result_fingerprint(result)
    log = recorder.finish(fingerprint)
    return RecordedRun(result=result, log=log, fingerprint=fingerprint,
                       error=error)
