"""Text rendering of experiment results.

The paper's figures are line plots (cycles vs processor count) and
normalized stacked bars; these helpers print the same data as aligned
text tables so a terminal run of the benchmark harness reproduces every
row/series the paper reports.  ``ascii_series`` additionally draws a
small terminal plot for the microbenchmark sweeps.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.harness.config import SyncScheme
from repro.harness.experiments import (AppResult, PolicyGridResult,
                                       SchedGridResult, SweepResult)


def _cell(value) -> str:
    """Render one sweep datum; a failed run (``None``) prints as FAIL."""
    return "FAIL" if value is None else str(value)


def sweep_table(result: SweepResult) -> str:
    """Cycles-vs-processors table for one microbenchmark figure."""
    schemes = list(result.series)
    header = ["procs"] + [s.value for s in schemes]
    rows = [[str(n)] + [_cell(result.series[s][i]) for s in schemes]
            for i, n in enumerate(result.processor_counts)]
    widths = [max(len(header[c]), *(len(r[c]) for r in rows)) + 2
              for c in range(len(header))]
    lines = ["".join(h.rjust(w) for h, w in zip(header, widths))]
    lines += ["".join(c.rjust(w) for c, w in zip(row, widths))
              for row in rows]
    return "\n".join(lines)


def ascii_series(result: SweepResult, height: int = 12,
                 width: int = 64) -> str:
    """A rough terminal plot of one sweep (cycles vs processor count)."""
    schemes = list(result.series)
    peak = max((point for series in result.series.values()
                for point in series if point is not None), default=1)
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@"
    xs = result.processor_counts
    for si, scheme in enumerate(schemes):
        for i, n in enumerate(xs):
            point = result.series[scheme][i]
            if point is None:       # failed run: no mark at this x
                continue
            x = int((n - xs[0]) / max(1, xs[-1] - xs[0]) * (width - 1))
            y = int(point / peak * (height - 1))
            grid[height - 1 - y][x] = marks[si % len(marks)]
    legend = "  ".join(f"{marks[i % len(marks)]}={s.value}"
                       for i, s in enumerate(schemes))
    body = "\n".join("|" + "".join(row) for row in grid)
    axis = "+" + "-" * width
    return (f"{result.name} (y: cycles, peak={peak})\n"
            f"{body}\n{axis}\n procs {xs[0]}..{xs[-1]}\n {legend}")


def figure11_table(results: Mapping[str, AppResult]) -> str:
    """The Figure 11 bars as numbers: normalized execution time with the
    lock / non-lock split, plus in-text speedups over BASE and MCS."""
    lines = [
        f"{'app':<12}{'scheme':<22}{'norm':>7}{'lock':>7}{'rest':>7}"
        f"{'speedup/BASE':>14}{'restarts':>10}{'fallbacks':>11}"
    ]
    for name, app in results.items():
        for scheme in app.cycles:
            lock, nonlock = app.normalized_parts(scheme)
            lines.append(
                f"{name:<12}{scheme.value:<22}"
                f"{lock + nonlock:>7.2f}{lock:>7.2f}{nonlock:>7.2f}"
                f"{app.speedup(scheme):>14.2f}"
                f"{app.restarts[scheme]:>10}"
                f"{app.resource_fallbacks[scheme]:>11}")
        lines.append("")
    return "\n".join(lines)


def speedup_summary(results: Mapping[str, AppResult]) -> str:
    """TLR-vs-BASE and MCS-vs-BASE per app (the Section 6.3 numbers)."""
    lines = [f"{'app':<12}{'TLR/BASE':>10}{'MCS/BASE':>10}{'TLR/MCS':>10}"]
    for name, app in results.items():
        tlr = app.speedup(SyncScheme.TLR)
        mcs = (app.speedup(SyncScheme.MCS)
               if SyncScheme.MCS in app.cycles else float("nan"))
        lines.append(f"{name:<12}{tlr:>10.2f}{mcs:>10.2f}"
                     f"{tlr / mcs if mcs == mcs else float('nan'):>10.2f}")
    return "\n".join(lines)


def telemetry_line(telemetry: Optional[Mapping]) -> str:
    """One-line summary of a sweep's engine telemetry: how many runs
    were simulated vs served from cache, retries, failures, wall time
    and (when parallel) worker utilization."""
    if not telemetry:
        return ""
    parts = [f"{telemetry.get('total_runs', 0)} runs:",
             f"{telemetry.get('simulated', 0)} simulated,",
             f"{telemetry.get('cache_hits', 0)} cached,",
             f"{telemetry.get('retries', 0)} retried,",
             f"{telemetry.get('failures', 0)} failed;",
             f"jobs={telemetry.get('jobs', 1)}",
             f"wall={telemetry.get('wall_seconds', 0.0):.2f}s"]
    if telemetry.get("jobs", 1) > 1:
        parts.append(f"workers {telemetry.get('utilization', 0.0):.0%} busy")
    return "[sweep] " + " ".join(parts)


def failures_table(failures: Iterable) -> str:
    """One row per :class:`~repro.harness.parallel.FailedRun`."""
    lines = []
    for failed in failures:
        lines.append(
            f"FAILED {failed.workload} scheme={failed.scheme} "
            f"cpus={failed.num_cpus} seed={failed.seed} "
            f"attempts={failed.attempts} ({failed.error}: "
            f"{failed.message})")
    return "\n".join(lines)


def policy_grid_table(result: PolicyGridResult) -> str:
    """The contention-policy grid: one block per workload, one row per
    policy, one cycles column per processor count.  A cell whose runs
    failed verification prints the cycles with a ``!`` marker (the
    violations live in ``result.cells``)."""
    lines = []
    for workload in result.workloads:
        lines.append(f"{workload}  (cycles; ! = failed verification, "
                     f"{result.seeds} seeds/cell)")
        header = f"{'policy':<16}" + "".join(
            f"{f'{n}p':>10}" for n in result.processor_counts)
        lines.append(header)
        for policy in result.policies:
            row = f"{policy:<16}"
            for n in result.processor_counts:
                cell = result.cell(policy, workload, n)
                mark = "" if cell["ok"] else "!"
                row += f"{str(cell['cycles']) + mark:>10}"
            lines.append(row)
        lines.append("")
    if result.failures:
        lines.append(f"{len(result.failures)} cell(s) failed "
                     "verification:")
        for key in result.failures:
            cell = result.cells[key]
            problem = cell["error"] or (cell["violations"][0]
                                        if cell["violations"] else "?")
            lines.append(f"  {key}: {problem}")
    return "\n".join(lines)


def sched_grid_table(result: SchedGridResult) -> str:
    """The preemptive-scheduler grid: one block per workload, one row
    per (scheduler, quantum), cycles plus the preemption /
    context-switch-abort counts per contention policy.  A cell whose
    runs failed verification prints with a ``!`` marker."""
    lines = [f"{result.num_cpus} threads over "
             f"{max(1, result.num_cpus // result.threads_per_cpu)} CPU "
             f"slot(s), {result.seeds} seed(s)/cell "
             f"(cycles/preempt/cs-abort; ! = failed verification)"]
    lines.append("")
    for workload in result.workloads:
        lines.append(workload)
        header = f"{'scheduler':<14}" + "".join(
            f"{policy:>26}" for policy in result.policies)
        lines.append(header)
        for scheduler in result.schedulers:
            for quantum in result.quanta:
                row = f"{scheduler + '/q' + str(quantum):<14}"
                for policy in result.policies:
                    cell = result.cell(scheduler, quantum, policy,
                                       workload)
                    mark = "" if cell["ok"] else "!"
                    row += (f"{cell['cycles']}"
                            f"/{cell.get('preemptions', 0)}"
                            f"/{cell.get('context_switch_aborts', 0)}"
                            f"{mark}").rjust(26)
                lines.append(row)
        lines.append("")
    if result.failures:
        lines.append(f"{len(result.failures)} cell(s) failed "
                     "verification:")
        for key in result.failures:
            cell = result.cells[key]
            problem = cell["error"] or (cell["violations"][0]
                                        if cell["violations"] else "?")
            lines.append(f"  {key}: {problem}")
    return "\n".join(lines)


def _histogram_bar(hist: Mapping, width: int = 24) -> str:
    """Populated buckets of one histogram export as ``<=bound:count``
    pairs (plus ``>bound`` for the overflow bin), bar-scaled."""
    pairs = [(f"<={bound}", count) for bound, count
             in zip(hist["buckets"], hist["counts"]) if count]
    if hist.get("overflow"):
        pairs.append((f">{hist['buckets'][-1]}", hist["overflow"]))
    if not pairs:
        return "(empty)"
    peak = max(count for _, count in pairs)
    return "  ".join(f"{label}:{count}"
                     + "#" * max(1, count * 8 // peak)
                     for label, count in pairs[:width])


def metrics_table(metrics: Optional[Mapping],
                  title: str = "telemetry") -> str:
    """One run's conflict-telemetry payload (a
    :meth:`repro.obs.MetricsRegistry.to_dict` export, as carried by
    ``RunResult.metrics`` / ``VerifyResult.metrics``) as an aligned
    text block: counters, gauges (last/max) and per-histogram
    count/mean/max with the populated buckets."""
    if not metrics:
        return ""
    lines = [title]
    for name, value in (metrics.get("counters") or {}).items():
        lines.append(f"  {name:<30}{value}")
    for name, gauge in (metrics.get("gauges") or {}).items():
        lines.append(f"  {name:<30}{gauge['value']} "
                     f"(max {gauge['max']})")
    for name, hist in (metrics.get("histograms") or {}).items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        lines.append(f"  {name:<30}n={hist['count']} mean={mean:.1f} "
                     f"max={hist['max']}")
        lines.append(f"    {_histogram_bar(hist)}")
    return "\n".join(lines)


def dict_table(data: Mapping[str, float], title: str = "") -> str:
    width = max(len(str(k)) for k in data) + 2
    lines = [title] if title else []
    for key, value in data.items():
        rendered = f"{value:.2f}" if isinstance(value, float) else str(value)
        lines.append(f"{str(key):<{width}}{rendered}")
    return "\n".join(lines)
