"""Transport-agnostic job execution: ``submit(JobSpec) -> JobResult``.

This is the single choke point every front end routes work through.
The CLI subcommands (``repro run``/``figure9``/``verify``/``perf``) and
the HTTP service (``repro serve``) both build a
:class:`~repro.harness.spec.JobSpec` and call :func:`submit`; neither
has a private execution path, so a job behaves identically whether it
arrives over argv or over HTTP -- same fingerprints, same results, same
cache entries.

Two layers of caching apply:

* **cell level** -- the sweep engine's per-:class:`RunSpec` result
  cache (unchanged); a re-submitted sweep whose grid overlaps an
  earlier one reuses the overlapping cells.
* **job level** -- a *completed* job's full :class:`JobResult` is
  stored under ``job-<fingerprint>``; an identical later submission is
  replayed from disk without touching the engine at all (zero
  simulations, zero cell-cache reads).  Perf jobs are exempt
  (:attr:`JobSpec.cacheable`): they measure the machine, not a
  deterministic outcome.

In-flight coalescing (two concurrent submissions of the same
fingerprint share one execution) lives a layer up, in
:class:`repro.serve.queue.JobQueue` -- it needs the service's notion of
job identity and subscriber lists, which this module deliberately knows
nothing about.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.harness import parallel
from repro.harness.cache import resolve_cache
from repro.harness.spec import (JobSpec, check_schema, config_from_dict,
                                get_experiment, scheme_from_str, stamp_schema)

#: Job-level cache entries share the run cache's directory but are
#: namespaced so a job fingerprint can never collide with a cell
#: fingerprint.
JOB_CACHE_PREFIX = "job-"


@dataclass
class JobResult:
    """What one submitted job produced, as transportable data.

    ``result`` is the kind-specific payload, already serialized
    (``RunResult``/``SweepResult``/... ``to_dict()`` images, or plain
    dicts for the table experiments); ``telemetry`` is the engine
    telemetry of the execution that produced it -- absent on a replay,
    where nothing executed.
    """

    kind: str
    fingerprint: str
    result: Any
    telemetry: Optional[dict] = None
    cached: bool = False
    elapsed: float = 0.0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return stamp_schema({
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "result": self.result,
            "telemetry": self.telemetry,
            "cached": self.cached,
            "elapsed": self.elapsed,
            "extra": dict(self.extra),
        })

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        check_schema(data, "JobResult")
        return cls(kind=data["kind"],
                   fingerprint=data["fingerprint"],
                   result=data.get("result"),
                   telemetry=data.get("telemetry"),
                   cached=data.get("cached", False),
                   elapsed=data.get("elapsed", 0.0),
                   extra=dict(data.get("extra") or {}))


def serialize_result(obj: Any) -> Any:
    """Recursively convert an experiment's return value to plain data.

    Experiments return heterogeneous types -- ``SweepResult``,
    ``PolicyGridResult``, ``dict[str, AppResult]``, plain dicts of
    scalars -- so serialization walks: anything with ``to_dict`` uses
    it, dicts recurse, everything else passes through.
    """
    if hasattr(obj, "to_dict"):
        return obj.to_dict()
    if isinstance(obj, dict):
        return {key: serialize_result(value) for key, value in obj.items()}
    return obj


def _decode_params(params: dict) -> dict:
    """Rehydrate wire-form parameters into the types experiment
    functions expect: ``config`` dicts become :class:`SystemConfig`,
    ``scheme`` strings become :class:`SyncScheme`."""
    decoded = dict(params)
    if isinstance(decoded.get("config"), dict):
        decoded["config"] = config_from_dict(decoded["config"])
    if isinstance(decoded.get("scheme"), str):
        decoded["scheme"] = scheme_from_str(decoded["scheme"])
    return decoded


def _execute_job(spec: JobSpec, *, jobs: int, timeout: Optional[float],
                 cache, retries: Optional[int]
                 ) -> tuple[Any, Optional[dict]]:
    """Dispatch one job by kind; returns (payload, telemetry)."""
    if spec.kind == "run":
        outcomes, telemetry = parallel.execute(
            [spec.run_spec()], jobs=jobs, timeout=timeout,
            retries=retries, cache=cache)
        outcome = outcomes[0]
        return ({"ok": not isinstance(outcome, parallel.FailedRun),
                 "outcome": outcome.to_dict()},
                telemetry.to_dict())
    if spec.kind == "perf":
        # Lazy import: perf is a leaf module the hot path never needs.
        from repro.harness import perf
        return perf.run_perf(**dict(spec.params)), None
    # "sweep", "verify" and "sched" all run a registered experiment;
    # verify/sched are their own kinds because their params/result
    # contracts are distinct, not because they execute differently.
    from repro.harness import experiments
    params = _decode_params(spec.params)
    if spec.kind == "sweep":
        experiment = get_experiment(params.pop("experiment"))
    elif spec.kind == "sched":
        experiment = get_experiment("sched")
    else:
        experiment = get_experiment("verify")
    value = experiment.runner(**params, jobs=jobs, timeout=timeout,
                              cache=cache, retries=retries)
    return serialize_result(value), experiments.last_telemetry()


def collect_artifacts(payload: Any) -> dict[str, str]:
    """Walk a serialized job payload for on-disk artifacts it names
    (currently ``record_log`` paths from repro.record auto-capture) and
    return ``{basename: path}`` for the ones that exist.  The registry
    lands in :attr:`JobResult.extra` so the HTTP service can expose
    them as downloadable job artifacts."""
    found: dict[str, str] = {}

    def walk(node: Any) -> None:
        if isinstance(node, dict):
            path = node.get("record_log")
            if isinstance(path, str) and os.path.isfile(path):
                found[os.path.basename(path)] = path
            for value in node.values():
                walk(value)
        elif isinstance(node, (list, tuple)):
            for value in node:
                walk(value)

    walk(payload)
    return found


def submit(spec: JobSpec, *, jobs: int = 1,
           timeout: Optional[float] = None,
           cache=None,
           retries: Optional[int] = None,
           pool=None,
           progress=None) -> JobResult:
    """Execute (or replay) one job.

    ``jobs``/``timeout``/``cache``/``retries`` are the uniform engine
    keywords (see :func:`repro.harness.parallel.execute`).  ``pool``
    installs a persistent :class:`~repro.harness.parallel.WorkerPool`
    and ``progress`` a per-cell tap for every engine call the job makes
    (via :func:`~repro.harness.parallel.use_engine`), however deeply
    buried in experiment code.
    """
    store = resolve_cache(cache)
    fingerprint = spec.fingerprint()
    if store is not None and spec.cacheable:
        payload = store.get(JOB_CACHE_PREFIX + fingerprint)
        if payload is not None:
            try:
                replay = JobResult.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                store.invalidate(JOB_CACHE_PREFIX + fingerprint)
            else:
                replay.cached = True
                replay.telemetry = None  # nothing executed this time
                store.persist_counters()
                return replay
    started = time.perf_counter()
    with parallel.use_engine(pool=pool, progress=progress):
        payload, telemetry = _execute_job(
            spec, jobs=jobs, timeout=timeout, cache=store, retries=retries)
    result = JobResult(kind=spec.kind, fingerprint=fingerprint,
                       result=payload, telemetry=telemetry,
                       elapsed=time.perf_counter() - started)
    artifacts = collect_artifacts(payload)
    if artifacts:
        result.extra["artifacts"] = artifacts
    if store is not None and spec.cacheable:
        store.put(JOB_CACHE_PREFIX + fingerprint, result.to_dict())
    if store is not None:
        store.persist_counters()  # keep `repro cache --stats` truthful
    return result
