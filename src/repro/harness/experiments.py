"""One entry point per paper figure/table (the per-experiment index of
DESIGN.md).

Each ``figure_*``/``table_*`` function runs the full parameter sweep the
paper's plot covers and returns a structured result that
:mod:`repro.harness.report` can print as the same rows/series the paper
reports.  Workload sizes default to simulator scale (see EXPERIMENTS.md)
but accept overrides so the benchmarks can run quick or thorough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.runner import RunResult, run
from repro.runtime.program import Workload
from repro.workloads.apps import ALL_APPS, mp3d
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)

MICRO_SCHEMES = (SyncScheme.BASE, SyncScheme.MCS, SyncScheme.SLE,
                 SyncScheme.TLR)
APP_SCHEMES = (SyncScheme.BASE, SyncScheme.SLE, SyncScheme.TLR,
               SyncScheme.MCS)
DEFAULT_PROCESSOR_COUNTS = (2, 4, 6, 8, 10, 12, 14, 16)


@dataclass
class SweepResult:
    """One microbenchmark figure: cycles[scheme][processor_count]."""

    name: str
    processor_counts: list[int]
    series: dict[SyncScheme, list[int]] = field(default_factory=dict)
    extra: dict[str, dict] = field(default_factory=dict)

    def cycles(self, scheme: SyncScheme, num_cpus: int) -> int:
        return self.series[scheme][self.processor_counts.index(num_cpus)]


@dataclass
class AppResult:
    """One application's Figure 11 bars plus MCS comparison."""

    name: str
    cycles: dict[SyncScheme, int]
    lock_cycles: dict[SyncScheme, int]
    restarts: dict[SyncScheme, int]
    resource_fallbacks: dict[SyncScheme, int]
    critical_sections: dict[SyncScheme, int]

    def speedup(self, scheme: SyncScheme,
                over: SyncScheme = SyncScheme.BASE) -> float:
        return self.cycles[over] / self.cycles[scheme]

    def normalized_parts(self, scheme: SyncScheme) -> tuple[float, float]:
        """(lock, non-lock) contributions normalized to BASE cycles --
        the two-part bars of Figure 11.  ``lock_cycles`` is the average
        per-processor stall charged to lock-variable accesses (the
        paper's commit-time attribution)."""
        base = self.cycles[SyncScheme.BASE]
        total = self.cycles[scheme] / base
        lock_share = min(1.0, self.lock_cycles[scheme]
                         / max(1, self.cycles[scheme]))
        return total * lock_share, total * (1.0 - lock_share)


def _sweep(name: str, builder: Callable[[int], Workload],
           schemes: Sequence[SyncScheme],
           processor_counts: Sequence[int],
           base_config: Optional[SystemConfig] = None) -> SweepResult:
    base = base_config or SystemConfig()
    result = SweepResult(name=name, processor_counts=list(processor_counts))
    for scheme in schemes:
        series = []
        for n in processor_counts:
            cfg = base.with_scheme(scheme)
            cfg.num_cpus = n
            outcome = run(builder(n), cfg)
            series.append(outcome.cycles)
        result.series[scheme] = series
    return result


# ----------------------------------------------------------------------
# Figures 8-10: microbenchmarks vs processor count
# ----------------------------------------------------------------------
def figure8_multiple_counter(total_increments: int = 2048,
                             processor_counts: Sequence[int] =
                             DEFAULT_PROCESSOR_COUNTS,
                             config: Optional[SystemConfig] = None
                             ) -> SweepResult:
    """Coarse-grain/no-conflicts (paper Figure 8)."""
    return _sweep("figure8-multiple-counter",
                  lambda n: multiple_counter(n, total_increments),
                  MICRO_SCHEMES, processor_counts, config)


def figure9_single_counter(total_increments: int = 1024,
                           processor_counts: Sequence[int] =
                           DEFAULT_PROCESSOR_COUNTS,
                           config: Optional[SystemConfig] = None,
                           include_strict_ts: bool = True) -> SweepResult:
    """Fine-grain/high-conflict, including TLR-strict-ts (Figure 9)."""
    schemes = list(MICRO_SCHEMES)
    if include_strict_ts:
        schemes.append(SyncScheme.TLR_STRICT_TS)
    return _sweep("figure9-single-counter",
                  lambda n: single_counter(n, total_increments),
                  schemes, processor_counts, config)


def figure10_linked_list(total_ops: int = 1024,
                         processor_counts: Sequence[int] =
                         DEFAULT_PROCESSOR_COUNTS,
                         config: Optional[SystemConfig] = None
                         ) -> SweepResult:
    """Fine-grain/dynamic-conflicts doubly-linked list (Figure 10)."""
    return _sweep("figure10-linked-list",
                  lambda n: linked_list(n, total_ops),
                  MICRO_SCHEMES, processor_counts, config)


# ----------------------------------------------------------------------
# Figure 7 intuition: queueing on data under pure conflict
# ----------------------------------------------------------------------
def figure7_queue_on_data(num_cpus: int = 4,
                          total_increments: int = 256,
                          config: Optional[SystemConfig] = None) -> dict:
    """The Section 6.1 intuition: under TLR, processors conflicting on
    one line order on the data itself -- no restarts, no lock requests.

    Returns the TLR run's restart/deferral counts so the claim "no
    transaction requires to restart" can be checked quantitatively.
    """
    base = config or SystemConfig()
    cfg = base.with_scheme(SyncScheme.TLR)
    cfg.num_cpus = num_cpus
    outcome = run(single_counter(num_cpus, total_increments), cfg)
    summary = outcome.stats.summary()
    return {
        "cycles": outcome.cycles,
        "restarts": summary["restarts"],
        "deferrals": summary["requests_deferred"],
        "elisions_committed": summary["elisions_committed"],
        "critical_sections": summary["critical_sections"],
    }


# ----------------------------------------------------------------------
# Figure 11: applications at 16 processors
# ----------------------------------------------------------------------
def figure11_applications(num_cpus: int = 16,
                          apps: Optional[Iterable[str]] = None,
                          schemes: Sequence[SyncScheme] = APP_SCHEMES,
                          config: Optional[SystemConfig] = None
                          ) -> dict[str, AppResult]:
    """Application performance, normalized to BASE, with the lock /
    non-lock breakdown (Figure 11) and the in-text MCS comparison."""
    base = config or SystemConfig()
    names = list(apps) if apps is not None else list(ALL_APPS)
    results: dict[str, AppResult] = {}
    for name in names:
        builder = ALL_APPS[name]
        cycles, lock_cycles, restarts = {}, {}, {}
        fallbacks, sections = {}, {}
        for scheme in schemes:
            cfg = base.with_scheme(scheme)
            cfg.num_cpus = num_cpus
            outcome = run(builder(num_cpus), cfg)
            cycles[scheme] = outcome.cycles
            # Average per-processor lock stall (the paper's commit-time
            # attribution), to compare against parallel time.
            lock_cycles[scheme] = (outcome.stats.lock_stall_cycles
                                   // max(1, num_cpus))
            restarts[scheme] = outcome.stats.restarts
            fallbacks[scheme] = outcome.stats.total("resource_fallbacks")
            sections[scheme] = outcome.stats.total("critical_sections")
        results[name] = AppResult(name=name, cycles=cycles,
                                  lock_cycles=lock_cycles,
                                  restarts=restarts,
                                  resource_fallbacks=fallbacks,
                                  critical_sections=sections)
    return results


# ----------------------------------------------------------------------
# Section 6.3 in-text experiments
# ----------------------------------------------------------------------
def table_coarse_vs_fine(num_cpus: int = 16,
                         config: Optional[SystemConfig] = None) -> dict:
    """mp3d with one coarse lock vs per-cell locks (Section 6.3)."""
    base = config or SystemConfig()
    out: dict[str, int] = {}
    for coarse in (False, True):
        for scheme in (SyncScheme.BASE, SyncScheme.TLR, SyncScheme.MCS):
            cfg = base.with_scheme(scheme)
            cfg.num_cpus = num_cpus
            outcome = run(mp3d(num_cpus, coarse=coarse), cfg)
            grain = "coarse" if coarse else "fine"
            out[f"{grain}/{scheme.value}"] = outcome.cycles
    out["speedup_tlr_coarse_over_base_fine"] = (
        out["fine/BASE"] / out["coarse/BASE+SLE+TLR"])
    out["speedup_tlr_coarse_over_tlr_fine"] = (
        out["fine/BASE+SLE+TLR"] / out["coarse/BASE+SLE+TLR"])
    return out


def table_rmw_predictor(num_cpus: int = 16,
                        apps: Optional[Iterable[str]] = None,
                        config: Optional[SystemConfig] = None
                        ) -> dict[str, float]:
    """BASE with vs without the read-modify-write predictor: the
    speedup list at the end of Section 6.3 (BASE over BASE-no-opt)."""
    base = config or SystemConfig()
    names = list(apps) if apps is not None else list(ALL_APPS)
    speedups: dict[str, float] = {}
    for name in names:
        builder = ALL_APPS[name]
        cycles = {}
        for enabled in (True, False):
            cfg = base.with_scheme(SyncScheme.BASE)
            cfg.num_cpus = num_cpus
            cfg.spec.rmw_predictor_enabled = enabled
            outcome = run(builder(num_cpus), cfg)
            cycles[enabled] = outcome.cycles
        speedups[name] = cycles[False] / cycles[True]
    return speedups
