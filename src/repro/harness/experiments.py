"""One entry point per paper figure/table (the per-experiment index of
DESIGN.md).

Each ``figure_*``/``table_*`` function plans the full parameter sweep
the paper's plot covers as a list of
:class:`~repro.harness.spec.RunSpec`, hands it to the parallel sweep
engine (:mod:`repro.harness.parallel`), and assembles the structured
result that :mod:`repro.harness.report` prints as the same rows/series
the paper reports.  All of them accept the uniform engine keywords --
``jobs`` (worker processes; 1 = serial, the determinism baseline),
``timeout`` (per-run wall-clock seconds), ``cache`` (result cache),
``retries`` (livelock retries) and ``validate`` -- and are registered
in :data:`repro.harness.spec.EXPERIMENTS`, so
``repro.harness.run("figure9", jobs=4)`` is equivalent to calling the
function directly.

Workload sizes default to simulator scale (see EXPERIMENTS.md) but
accept overrides so the benchmarks can run quick or thorough.

A run that livelocks past its retries appears as a ``None`` in the
sweep series plus a :class:`~repro.harness.parallel.FailedRun` in
``SweepResult.failures`` instead of aborting the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from repro.harness import parallel
from repro.harness.config import SchedConfig, SyncScheme, SystemConfig
from repro.harness.parallel import FailedRun
from repro.harness.runner import RunResult
from repro.harness.spec import (SIZE_PARAM, RunSpec, check_schema,
                                register_experiment, scheme_from_str,
                                scheme_to_str, stamp_schema)
from repro.obs import summarize_metrics
from repro.workloads.apps import ALL_APPS

MICRO_SCHEMES = (SyncScheme.BASE, SyncScheme.MCS, SyncScheme.SLE,
                 SyncScheme.TLR)
APP_SCHEMES = (SyncScheme.BASE, SyncScheme.SLE, SyncScheme.TLR,
               SyncScheme.MCS)
DEFAULT_PROCESSOR_COUNTS = (2, 4, 6, 8, 10, 12, 14, 16)

#: Telemetry of the most recent engine invocation made by this module
#: (set by every ``figure_*``/``table_*`` call; the CLI prints it).
_LAST_TELEMETRY: Optional[dict] = None


def last_telemetry() -> Optional[dict]:
    """Telemetry dict of the most recent experiment sweep, if any."""
    return _LAST_TELEMETRY


class SweepLookupError(KeyError, ValueError):
    """A sweep was asked for a point it does not contain.

    Subclasses both :class:`KeyError` (lookup semantics) and
    :class:`ValueError` (what ``list.index`` historically raised here).
    """


@dataclass
class SweepResult:
    """One microbenchmark figure: cycles[scheme][processor_count].

    A series slot is ``None`` when that configuration failed (see
    ``failures``); ``extra["telemetry"]`` carries the engine telemetry
    of the sweep that produced it.
    """

    name: str
    processor_counts: list[int]
    series: dict[SyncScheme, list[Optional[int]]] = field(
        default_factory=dict)
    extra: dict[str, dict] = field(default_factory=dict)
    failures: list[FailedRun] = field(default_factory=list)

    def cycles(self, scheme: SyncScheme, num_cpus: int) -> int:
        if scheme not in self.series:
            raise SweepLookupError(
                f"sweep {self.name!r} has no series for scheme "
                f"{getattr(scheme, 'value', scheme)!r}; available schemes: "
                f"{[s.value for s in self.series]}")
        if num_cpus not in self.processor_counts:
            raise SweepLookupError(
                f"sweep {self.name!r} has no run at {num_cpus} processors "
                f"for scheme {scheme.value!r}; available processor counts: "
                f"{self.processor_counts}")
        value = self.series[scheme][self.processor_counts.index(num_cpus)]
        if value is None:
            raise SweepLookupError(
                f"run ({scheme.value!r}, {num_cpus} cpus) of sweep "
                f"{self.name!r} failed (see SweepResult.failures)")
        return value

    # -- serialization (stable public contract) ------------------------
    def to_dict(self) -> dict:
        # "telemetry" is machine-timing metadata (wall clock, worker
        # count), not part of the result: keeping it out of the stable
        # form preserves jobs=N output being bit-identical to jobs=1.
        extra = {k: v for k, v in self.extra.items() if k != "telemetry"}
        return stamp_schema({
            "name": self.name,
            "processor_counts": list(self.processor_counts),
            "series": {scheme_to_str(s): list(v)
                       for s, v in self.series.items()},
            "failures": [f.to_dict() for f in self.failures],
            "extra": extra,
        })

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        check_schema(data, "SweepResult")
        return cls(
            name=data["name"],
            processor_counts=list(data["processor_counts"]),
            series={scheme_from_str(k): list(v)
                    for k, v in (data.get("series") or {}).items()},
            extra=dict(data.get("extra") or {}),
            failures=[FailedRun.from_dict(f)
                      for f in (data.get("failures") or [])])


@dataclass
class AppResult:
    """One application's Figure 11 bars plus MCS comparison.

    A scheme whose run failed is absent from the per-scheme dicts and
    recorded in ``failures``.
    """

    name: str
    cycles: dict[SyncScheme, int]
    lock_cycles: dict[SyncScheme, int]
    restarts: dict[SyncScheme, int]
    resource_fallbacks: dict[SyncScheme, int]
    critical_sections: dict[SyncScheme, int]
    failures: list[FailedRun] = field(default_factory=list)

    def speedup(self, scheme: SyncScheme,
                over: SyncScheme = SyncScheme.BASE) -> float:
        return self.cycles[over] / self.cycles[scheme]

    def normalized_parts(self, scheme: SyncScheme) -> tuple[float, float]:
        """(lock, non-lock) contributions normalized to BASE cycles --
        the two-part bars of Figure 11.  ``lock_cycles`` is the average
        per-processor stall charged to lock-variable accesses (the
        paper's commit-time attribution)."""
        base = self.cycles[SyncScheme.BASE]
        total = self.cycles[scheme] / base
        lock_share = min(1.0, self.lock_cycles[scheme]
                         / max(1, self.cycles[scheme]))
        return total * lock_share, total * (1.0 - lock_share)

    # -- serialization (stable public contract) ------------------------
    def to_dict(self) -> dict:
        def keyed(mapping: dict[SyncScheme, int]) -> dict[str, int]:
            return {scheme_to_str(s): v for s, v in mapping.items()}
        return stamp_schema({
            "name": self.name,
            "cycles": keyed(self.cycles),
            "lock_cycles": keyed(self.lock_cycles),
            "restarts": keyed(self.restarts),
            "resource_fallbacks": keyed(self.resource_fallbacks),
            "critical_sections": keyed(self.critical_sections),
            "failures": [f.to_dict() for f in self.failures],
        })

    @classmethod
    def from_dict(cls, data: dict) -> "AppResult":
        check_schema(data, "AppResult")

        def unkeyed(mapping: Optional[dict]) -> dict[SyncScheme, int]:
            return {scheme_from_str(k): v
                    for k, v in (mapping or {}).items()}
        return cls(
            name=data["name"],
            cycles=unkeyed(data.get("cycles")),
            lock_cycles=unkeyed(data.get("lock_cycles")),
            restarts=unkeyed(data.get("restarts")),
            resource_fallbacks=unkeyed(data.get("resource_fallbacks")),
            critical_sections=unkeyed(data.get("critical_sections")),
            failures=[FailedRun.from_dict(f)
                      for f in (data.get("failures") or [])])


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def _execute(specs: Sequence[RunSpec], engine: dict
             ) -> list[parallel.Outcome]:
    """Run specs through the sweep engine, remembering telemetry."""
    global _LAST_TELEMETRY
    outcomes, telemetry = parallel.execute(specs, **engine)
    _LAST_TELEMETRY = telemetry.to_dict()
    return outcomes


def _engine_kwargs(jobs, timeout, cache, retries) -> dict:
    return {"jobs": jobs, "timeout": timeout, "cache": cache,
            "retries": retries}


def _spec(workload: str, config: SystemConfig, scheme: SyncScheme,
          num_cpus: int, validate: bool = True, **workload_args) -> RunSpec:
    cfg = config.with_scheme(scheme)
    cfg.num_cpus = num_cpus
    return RunSpec(workload=workload, config=cfg,
                   workload_args=workload_args, validate=validate)


def _sweep(name: str, workload: str, workload_args: dict,
           schemes: Sequence[SyncScheme],
           processor_counts: Sequence[int],
           base_config: Optional[SystemConfig],
           engine: dict, validate: bool = True) -> SweepResult:
    base = base_config or SystemConfig()
    keys: list[tuple[SyncScheme, int]] = [
        (scheme, n) for scheme in schemes for n in processor_counts]
    specs = [_spec(workload, base, scheme, n, validate, **workload_args)
             for scheme, n in keys]
    outcomes = _execute(specs, engine)
    result = SweepResult(name=name, processor_counts=list(processor_counts))
    metrics: dict[str, dict] = {}
    for (scheme, n), outcome in zip(keys, outcomes):
        series = result.series.setdefault(scheme, [])
        if isinstance(outcome, FailedRun):
            series.append(None)
            result.failures.append(outcome)
        else:
            series.append(outcome.cycles)
            # Summarized conflict telemetry per sweep point (None when
            # the run had config.metrics off or came from a pre-metrics
            # cache payload); deterministic, so safe in to_dict().
            if outcome.metrics is not None:
                metrics[f"{scheme_to_str(scheme)}/{n}"] = (
                    summarize_metrics(outcome.metrics))
    if metrics:
        result.extra["metrics"] = metrics
    if _LAST_TELEMETRY is not None:
        result.extra["telemetry"] = _LAST_TELEMETRY
    return result


def _require(outcome: parallel.Outcome) -> RunResult:
    """Unwrap an outcome whose result the experiment cannot do without."""
    if isinstance(outcome, FailedRun):
        raise parallel.SimulationError(
            f"run ({outcome.workload!r}, {outcome.scheme}, "
            f"{outcome.num_cpus} cpus, seed {outcome.seed}) failed after "
            f"{outcome.attempts} attempts: {outcome.error}: "
            f"{outcome.message}")
    return outcome


# ----------------------------------------------------------------------
# Figures 8-10: microbenchmarks vs processor count
# ----------------------------------------------------------------------
@register_experiment("figure8", "multiple-counter sweep (coarse-grain "
                                "locking, no data conflicts)")
def figure8_multiple_counter(total_increments: int = 2048,
                             processor_counts: Sequence[int] =
                             DEFAULT_PROCESSOR_COUNTS,
                             config: Optional[SystemConfig] = None, *,
                             jobs: int = 1,
                             timeout: Optional[float] = None,
                             cache=None,
                             retries: Optional[int] = None,
                             validate: bool = True) -> SweepResult:
    """Coarse-grain/no-conflicts (paper Figure 8)."""
    return _sweep("figure8-multiple-counter", "multiple-counter",
                  {"total_increments": total_increments},
                  MICRO_SCHEMES, processor_counts, config,
                  _engine_kwargs(jobs, timeout, cache, retries), validate)


@register_experiment("figure9", "single-counter sweep (fine-grain, "
                                "high-conflict)")
def figure9_single_counter(total_increments: int = 1024,
                           processor_counts: Sequence[int] =
                           DEFAULT_PROCESSOR_COUNTS,
                           config: Optional[SystemConfig] = None,
                           include_strict_ts: bool = True, *,
                           jobs: int = 1,
                           timeout: Optional[float] = None,
                           cache=None,
                           retries: Optional[int] = None,
                           validate: bool = True) -> SweepResult:
    """Fine-grain/high-conflict, including TLR-strict-ts (Figure 9)."""
    schemes = list(MICRO_SCHEMES)
    if include_strict_ts:
        schemes.append(SyncScheme.TLR_STRICT_TS)
    return _sweep("figure9-single-counter", "single-counter",
                  {"total_increments": total_increments},
                  schemes, processor_counts, config,
                  _engine_kwargs(jobs, timeout, cache, retries), validate)


@register_experiment("figure10", "linked-list sweep (fine-grain, "
                                 "dynamic conflicts)")
def figure10_linked_list(total_ops: int = 1024,
                         processor_counts: Sequence[int] =
                         DEFAULT_PROCESSOR_COUNTS,
                         config: Optional[SystemConfig] = None, *,
                         jobs: int = 1,
                         timeout: Optional[float] = None,
                         cache=None,
                         retries: Optional[int] = None,
                         validate: bool = True) -> SweepResult:
    """Fine-grain/dynamic-conflicts doubly-linked list (Figure 10)."""
    return _sweep("figure10-linked-list", "linked-list",
                  {"total_ops": total_ops},
                  MICRO_SCHEMES, processor_counts, config,
                  _engine_kwargs(jobs, timeout, cache, retries), validate)


# ----------------------------------------------------------------------
# Figure 7 intuition: queueing on data under pure conflict
# ----------------------------------------------------------------------
@register_experiment("figure7", "queue-on-data intuition (TLR orders "
                                "conflicts on the data itself)")
def figure7_queue_on_data(num_cpus: int = 4,
                          total_increments: int = 256,
                          config: Optional[SystemConfig] = None, *,
                          jobs: int = 1,
                          timeout: Optional[float] = None,
                          cache=None,
                          retries: Optional[int] = None,
                          validate: bool = True) -> dict:
    """The Section 6.1 intuition: under TLR, processors conflicting on
    one line order on the data itself -- no restarts, no lock requests.

    Returns the TLR run's restart/deferral counts so the claim "no
    transaction requires to restart" can be checked quantitatively.
    """
    base = config or SystemConfig()
    spec = _spec("single-counter", base, SyncScheme.TLR, num_cpus,
                 validate, total_increments=total_increments)
    outcome = _require(_execute(
        [spec], _engine_kwargs(jobs, timeout, cache, retries))[0])
    summary = outcome.stats.summary()
    return {
        "cycles": outcome.cycles,
        "restarts": summary["restarts"],
        "deferrals": summary["requests_deferred"],
        "elisions_committed": summary["elisions_committed"],
        "critical_sections": summary["critical_sections"],
    }


# ----------------------------------------------------------------------
# Figure 11: applications at 16 processors
# ----------------------------------------------------------------------
@register_experiment("figure11", "application suite at 16 processors "
                                 "(normalized bars + MCS comparison)")
def figure11_applications(num_cpus: int = 16,
                          apps: Optional[Iterable[str]] = None,
                          schemes: Sequence[SyncScheme] = APP_SCHEMES,
                          config: Optional[SystemConfig] = None, *,
                          jobs: int = 1,
                          timeout: Optional[float] = None,
                          cache=None,
                          retries: Optional[int] = None,
                          validate: bool = True) -> dict[str, AppResult]:
    """Application performance, normalized to BASE, with the lock /
    non-lock breakdown (Figure 11) and the in-text MCS comparison."""
    base = config or SystemConfig()
    names = list(apps) if apps is not None else list(ALL_APPS)
    keys = [(name, scheme) for name in names for scheme in schemes]
    specs = [_spec(name, base, scheme, num_cpus, validate)
             for name, scheme in keys]
    outcomes = _execute(specs,
                        _engine_kwargs(jobs, timeout, cache, retries))
    results: dict[str, AppResult] = {}
    for name in names:
        results[name] = AppResult(name=name, cycles={}, lock_cycles={},
                                  restarts={}, resource_fallbacks={},
                                  critical_sections={})
    for (name, scheme), outcome in zip(keys, outcomes):
        app = results[name]
        if isinstance(outcome, FailedRun):
            app.failures.append(outcome)
            continue
        app.cycles[scheme] = outcome.cycles
        # Average per-processor lock stall (the paper's commit-time
        # attribution), to compare against parallel time.
        app.lock_cycles[scheme] = (outcome.stats.lock_stall_cycles
                                   // max(1, num_cpus))
        app.restarts[scheme] = outcome.stats.restarts
        app.resource_fallbacks[scheme] = (
            outcome.stats.total("resource_fallbacks"))
        app.critical_sections[scheme] = (
            outcome.stats.total("critical_sections"))
    return results


# ----------------------------------------------------------------------
# Section 6.3 in-text experiments
# ----------------------------------------------------------------------
@register_experiment("coarse-vs-fine", "mp3d with one coarse lock vs "
                                       "per-cell locks")
def table_coarse_vs_fine(num_cpus: int = 16,
                         config: Optional[SystemConfig] = None, *,
                         jobs: int = 1,
                         timeout: Optional[float] = None,
                         cache=None,
                         retries: Optional[int] = None,
                         validate: bool = True) -> dict:
    """mp3d with one coarse lock vs per-cell locks (Section 6.3)."""
    base = config or SystemConfig()
    keys, specs = [], []
    for coarse in (False, True):
        for scheme in (SyncScheme.BASE, SyncScheme.TLR, SyncScheme.MCS):
            workload = "mp3d-coarse" if coarse else "mp3d"
            keys.append(("coarse" if coarse else "fine", scheme))
            specs.append(_spec(workload, base, scheme, num_cpus, validate))
    outcomes = _execute(specs,
                        _engine_kwargs(jobs, timeout, cache, retries))
    out: dict[str, int] = {}
    for (grain, scheme), outcome in zip(keys, outcomes):
        out[f"{grain}/{scheme.value}"] = _require(outcome).cycles
    out["speedup_tlr_coarse_over_base_fine"] = (
        out["fine/BASE"] / out["coarse/BASE+SLE+TLR"])
    out["speedup_tlr_coarse_over_tlr_fine"] = (
        out["fine/BASE+SLE+TLR"] / out["coarse/BASE+SLE+TLR"])
    return out


@register_experiment("rmw-predictor", "BASE with vs without the "
                                      "read-modify-write predictor")
def table_rmw_predictor(num_cpus: int = 16,
                        apps: Optional[Iterable[str]] = None,
                        config: Optional[SystemConfig] = None, *,
                        jobs: int = 1,
                        timeout: Optional[float] = None,
                        cache=None,
                        retries: Optional[int] = None,
                        validate: bool = True) -> dict[str, float]:
    """BASE with vs without the read-modify-write predictor: the
    speedup list at the end of Section 6.3 (BASE over BASE-no-opt)."""
    base = config or SystemConfig()
    names = list(apps) if apps is not None else list(ALL_APPS)
    keys, specs = [], []
    for name in names:
        for enabled in (True, False):
            spec = _spec(name, base, SyncScheme.BASE, num_cpus, validate)
            spec.config.spec.rmw_predictor_enabled = enabled
            keys.append((name, enabled))
            specs.append(spec)
    outcomes = _execute(specs,
                        _engine_kwargs(jobs, timeout, cache, retries))
    cycles: dict[tuple[str, bool], int] = {
        key: _require(outcome).cycles
        for key, outcome in zip(keys, outcomes)}
    return {name: cycles[(name, False)] / cycles[(name, True)]
            for name in names}


@register_experiment("verify", "serializability oracle + invariant "
                               "monitors over a seed fan-out")
def verify(workloads: Optional[Sequence[str]] = None,
           scheme: SyncScheme = SyncScheme.TLR,
           num_cpus: int = 4,
           seeds: int = 100,
           ops: int = 96,
           chaos: int = 0,
           base_seed: int = 0,
           shrink: bool = True,
           config: Optional[SystemConfig] = None,
           policy: Optional[str] = None,
           jobs: int = 1,
           timeout: Optional[float] = None,
           cache=None,
           retries: Optional[int] = None,
           validate: bool = True):
    """Run the ``repro.verify`` suite: every workload is explored under
    ``seeds`` seeds with the serializability oracle and the invariant
    monitors attached; the first failing seed (if any) is shrunk to a
    minimal traced reproduction.  ``policy`` selects a contention
    policy by name (default: the config's, i.e. the paper's timestamp
    deferral).  ``retries``/``validate``/``config`` are accepted for
    engine-keyword uniformity (verification failures are findings,
    never retried; the functional validator always runs as one more
    oracle)."""
    del retries, validate, config  # uniform keywords; not meaningful here
    # Imported lazily: repro.verify imports harness modules, so a
    # top-level import here would recurse through harness/__init__.
    from repro.verify import DEFAULT_VERIFY_WORKLOADS, verify_suite
    global _LAST_TELEMETRY
    result = verify_suite(
        tuple(workloads) if workloads else DEFAULT_VERIFY_WORKLOADS,
        scheme=scheme, num_cpus=num_cpus, seeds=seeds, ops=ops,
        chaos=chaos, base_seed=base_seed, shrink=shrink,
        jobs=jobs, timeout=timeout, cache=cache, policy=policy)
    explorations = result.explorations.values()
    wall = sum(e.wall_seconds for e in explorations)
    busy = sum(r.elapsed for e in explorations for r in e.results)
    _LAST_TELEMETRY = {
        "total_runs": sum(len(e.results) for e in explorations),
        "simulated": sum(len(e.results) - e.cache_hits
                         for e in explorations),
        "cache_hits": sum(e.cache_hits for e in explorations),
        "retries": 0,
        "failures": sum(len(e.failures) for e in explorations),
        "jobs": jobs,
        "wall_seconds": wall,
        "busy_seconds": busy,
        "utilization": min(1.0, busy / (max(1, jobs) * wall))
        if wall > 0 else 0.0,
    }
    return result


# ----------------------------------------------------------------------
# Contention-policy lab: the policies x workloads x processors grid
# ----------------------------------------------------------------------
DEFAULT_POLICY_GRID_POLICIES = ("timestamp", "nack", "requester-wins",
                                "backoff")
DEFAULT_POLICY_GRID_WORKLOADS = ("single-counter", "linked-list",
                                 "ocean-cont", "barnes")
DEFAULT_POLICY_GRID_PROCS = (2, 4, 8)


@dataclass
class PolicyGridResult:
    """Contention-policy grid: every cell is one (policy, workload,
    processor-count) point, run ``seeds`` times through the *verifier*
    (oracle + invariant monitors), not the bare sweep engine -- a
    policy that goes fast by going wrong fails its cell.
    """

    policies: list[str]
    workloads: list[str]
    processor_counts: list[int]
    seeds: int
    cells: dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def key(policy: str, workload: str, num_cpus: int) -> str:
        return f"{policy}/{workload}/{num_cpus}"

    def cell(self, policy: str, workload: str, num_cpus: int) -> dict:
        return self.cells[self.key(policy, workload, num_cpus)]

    @property
    def ok(self) -> bool:
        return all(cell["ok"] for cell in self.cells.values())

    @property
    def failures(self) -> list[str]:
        return [key for key, cell in self.cells.items() if not cell["ok"]]

    # -- serialization (stable public contract) ------------------------
    def to_dict(self) -> dict:
        return stamp_schema({
            "policies": list(self.policies),
            "workloads": list(self.workloads),
            "processor_counts": list(self.processor_counts),
            "seeds": self.seeds,
            "cells": {k: dict(v) for k, v in self.cells.items()}})

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyGridResult":
        check_schema(data, "PolicyGridResult")
        return cls(policies=list(data["policies"]),
                   workloads=list(data["workloads"]),
                   processor_counts=list(data["processor_counts"]),
                   seeds=data.get("seeds", 1),
                   cells={k: dict(v)
                          for k, v in (data.get("cells") or {}).items()})


@register_experiment("policies", "contention-policy grid (policies x "
                                 "workloads x processors), every run "
                                 "oracle-checked")
def policy_grid(policies: Optional[Sequence[str]] = None,
                workloads: Optional[Sequence[str]] = None,
                processor_counts: Sequence[int] = DEFAULT_POLICY_GRID_PROCS,
                seeds: int = 3,
                ops: int = 96,
                app_scale: int = 12,
                base_seed: int = 0,
                backend: str = "reference",
                config: Optional[SystemConfig] = None, *,
                jobs: int = 1,
                timeout: Optional[float] = None,
                cache=None,
                retries: Optional[int] = None,
                validate: bool = True) -> PolicyGridResult:
    """Compare contention-management policies under verification.

    Every grid cell runs under TLR with the named policy installed and
    the full :mod:`repro.verify` instrumentation attached -- the
    serializability oracle, the policy-aware deferral-order monitor and
    the starvation watchdog all judge every run.  ``ops`` sizes the
    microbenchmarks; ``app_scale`` sizes the application kernels.
    ``backend`` selects the event-core backend for every cell (the
    backends are bit-identical, so this only affects wall time).
    """
    del retries  # verification failures are findings, never retried
    from repro.verify import VerifyOptions, verify_specs
    global _LAST_TELEMETRY
    base = (config or SystemConfig()).with_backend(backend)
    policies = tuple(policies) if policies else DEFAULT_POLICY_GRID_POLICIES
    workloads = (tuple(workloads) if workloads
                 else DEFAULT_POLICY_GRID_WORKLOADS)
    options = VerifyOptions()
    keys: list[tuple[str, str, int]] = []
    specs: list[RunSpec] = []
    for policy in policies:
        for workload in workloads:
            size_key = SIZE_PARAM[workload]
            size = app_scale if size_key == "scale" else ops
            for n in processor_counts:
                keys.append((policy, workload, n))
                for s in range(seeds):
                    cfg = replace(
                        base.with_scheme(SyncScheme.TLR).with_policy(policy),
                        num_cpus=n, seed=base_seed + s)
                    specs.append(RunSpec(workload=workload, config=cfg,
                                         workload_args={size_key: size},
                                         validate=validate))
    import time as _time
    started = _time.perf_counter()
    results, cache_hits = verify_specs(specs, options=options, jobs=jobs,
                                       timeout=timeout, cache=cache)
    grid = PolicyGridResult(policies=list(policies),
                            workloads=list(workloads),
                            processor_counts=list(processor_counts),
                            seeds=seeds)
    for i, (policy, workload, n) in enumerate(keys):
        per_seed = results[i * seeds:(i + 1) * seeds]
        violations = [v for r in per_seed for v in r.violations]
        errors = [r.error for r in per_seed if r.error]
        grid.cells[grid.key(policy, workload, n)] = {
            "ok": all(r.ok for r in per_seed),
            "cycles": per_seed[0].cycles,
            "num_txns": sum(r.num_txns for r in per_seed),
            "violations": violations[:4],
            "error": errors[0] if errors else None,
            "summary": dict(per_seed[0].summary),
            # Full telemetry payload of the cell's first seed: counters,
            # gauges and the deferral-depth / retry / latency histograms
            # (this is what BENCH_policies.json publishes per policy).
            "metrics": per_seed[0].metrics,
        }
    wall = _time.perf_counter() - started
    busy = sum(r.elapsed for r in results)
    _LAST_TELEMETRY = {
        "total_runs": len(results),
        "simulated": len(results) - cache_hits,
        "cache_hits": cache_hits,
        "retries": 0,
        "failures": sum(1 for r in results if not r.ok),
        "jobs": jobs,
        "wall_seconds": wall,
        "busy_seconds": busy,
        "utilization": min(1.0, busy / (max(1, jobs) * wall))
        if wall > 0 else 0.0,
    }
    return grid


# ----------------------------------------------------------------------
# Scheduler lab: schedulers x quanta x policies x workloads, preemptive
# ----------------------------------------------------------------------
DEFAULT_SCHED_GRID_SCHEDULERS = ("rr", "mlfq", "cfs")
DEFAULT_SCHED_GRID_QUANTA = (200, 800)
DEFAULT_SCHED_GRID_POLICIES = ("timestamp", "nack")
DEFAULT_SCHED_GRID_WORKLOADS = ("single-counter", "linked-list")

#: sched.* counters lifted from each cell's metrics payload into the
#: cell itself, so BENCH_sched.json readers (and the trend gate) see
#: them without digging through histograms.
_SCHED_CELL_COUNTERS = ("preemptions", "migrations",
                        "context_switch_aborts")


@dataclass
class SchedGridResult:
    """Preemptive-scheduler grid: every cell is one (scheduler, quantum,
    policy, workload) point run with more runtime threads than CPU slots
    (``threads_per_cpu`` > 1), ``seeds`` times, through the *verifier*
    -- timer interrupts land inside critical sections and speculative
    regions, and the oracle plus the invariant monitors judge every
    run.  Cells carry the context-switch-abort / preemption counters so
    the cost of preempting an elision mid-flight is measurable.
    """

    schedulers: list[str]
    quanta: list[int]
    policies: list[str]
    workloads: list[str]
    seeds: int
    num_cpus: int
    threads_per_cpu: int
    cells: dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def key(scheduler: str, quantum: int, policy: str,
            workload: str) -> str:
        return f"{scheduler}/q{quantum}/{policy}/{workload}"

    def cell(self, scheduler: str, quantum: int, policy: str,
             workload: str) -> dict:
        return self.cells[self.key(scheduler, quantum, policy, workload)]

    @property
    def ok(self) -> bool:
        return all(cell["ok"] for cell in self.cells.values())

    @property
    def failures(self) -> list[str]:
        return [key for key, cell in self.cells.items() if not cell["ok"]]

    # -- serialization (stable public contract) ------------------------
    def to_dict(self) -> dict:
        return stamp_schema({
            "schedulers": list(self.schedulers),
            "quanta": list(self.quanta),
            "policies": list(self.policies),
            "workloads": list(self.workloads),
            "seeds": self.seeds,
            "num_cpus": self.num_cpus,
            "threads_per_cpu": self.threads_per_cpu,
            "cells": {k: dict(v) for k, v in self.cells.items()}})

    @classmethod
    def from_dict(cls, data: dict) -> "SchedGridResult":
        check_schema(data, "SchedGridResult")
        return cls(schedulers=list(data["schedulers"]),
                   quanta=list(data["quanta"]),
                   policies=list(data["policies"]),
                   workloads=list(data["workloads"]),
                   seeds=data.get("seeds", 1),
                   num_cpus=data.get("num_cpus", 4),
                   threads_per_cpu=data.get("threads_per_cpu", 2),
                   cells={k: dict(v)
                          for k, v in (data.get("cells") or {}).items()})


@register_experiment("sched", "preemptive-scheduler grid (schedulers x "
                              "quanta x policies x workloads, threads > "
                              "CPUs), every run oracle-checked")
def sched_grid(schedulers: Optional[Sequence[str]] = None,
               quanta: Optional[Sequence[int]] = None,
               policies: Optional[Sequence[str]] = None,
               workloads: Optional[Sequence[str]] = None,
               num_cpus: int = 4,
               threads_per_cpu: int = 2,
               migrate: bool = False,
               seeds: int = 2,
               ops: int = 96,
               app_scale: int = 12,
               base_seed: int = 0,
               backend: str = "reference",
               config: Optional[SystemConfig] = None, *,
               jobs: int = 1,
               timeout: Optional[float] = None,
               cache=None,
               retries: Optional[int] = None,
               validate: bool = True) -> SchedGridResult:
    """Stress lock elision under preemptive scheduling.

    Every grid cell runs TLR with ``num_cpus`` runtime threads
    multiplexed over ``num_cpus // threads_per_cpu`` CPU slots by the
    named scheduler -- so timer interrupts preempt threads *inside*
    critical sections and speculative regions, aborting in-flight
    elision (the counters each cell carries quantify how often).  The
    full :mod:`repro.verify` instrumentation judges every run: a
    schedule that breaks serializability or starves a thread fails its
    cell.
    """
    del retries  # verification failures are findings, never retried
    from repro.verify import VerifyOptions, verify_specs
    global _LAST_TELEMETRY
    base = (config or SystemConfig()).with_backend(backend)
    schedulers = (tuple(schedulers) if schedulers
                  else DEFAULT_SCHED_GRID_SCHEDULERS)
    quanta = tuple(quanta) if quanta else DEFAULT_SCHED_GRID_QUANTA
    policies = (tuple(policies) if policies
                else DEFAULT_SCHED_GRID_POLICIES)
    workloads = (tuple(workloads) if workloads
                 else DEFAULT_SCHED_GRID_WORKLOADS)
    options = VerifyOptions()
    keys: list[tuple[str, int, str, str]] = []
    specs: list[RunSpec] = []
    for scheduler in schedulers:
        for quantum in quanta:
            for policy in policies:
                for workload in workloads:
                    size_key = SIZE_PARAM[workload]
                    size = app_scale if size_key == "scale" else ops
                    keys.append((scheduler, quantum, policy, workload))
                    for s in range(seeds):
                        cfg = replace(
                            base.with_scheme(SyncScheme.TLR)
                                .with_policy(policy),
                            num_cpus=num_cpus, seed=base_seed + s,
                            sched=SchedConfig(
                                scheduler=scheduler, quantum=quantum,
                                threads_per_cpu=threads_per_cpu,
                                migrate=migrate))
                        specs.append(RunSpec(
                            workload=workload, config=cfg,
                            workload_args={size_key: size},
                            validate=validate))
    import time as _time
    started = _time.perf_counter()
    results, cache_hits = verify_specs(specs, options=options, jobs=jobs,
                                       timeout=timeout, cache=cache)
    grid = SchedGridResult(schedulers=list(schedulers),
                           quanta=list(quanta),
                           policies=list(policies),
                           workloads=list(workloads),
                           seeds=seeds, num_cpus=num_cpus,
                           threads_per_cpu=threads_per_cpu)
    for i, (scheduler, quantum, policy, workload) in enumerate(keys):
        per_seed = results[i * seeds:(i + 1) * seeds]
        violations = [v for r in per_seed for v in r.violations]
        errors = [r.error for r in per_seed if r.error]
        cell = {
            "ok": all(r.ok for r in per_seed),
            "cycles": per_seed[0].cycles,
            "num_txns": sum(r.num_txns for r in per_seed),
            "violations": violations[:4],
            "error": errors[0] if errors else None,
            "summary": dict(per_seed[0].summary),
            "metrics": per_seed[0].metrics,
        }
        # Summed over seeds: one seed with zero preemptions must not
        # hide another that aborted elisions all run long.
        for name in _SCHED_CELL_COUNTERS:
            cell[name] = sum(
                ((r.metrics or {}).get("counters") or {})
                .get(f"sched.{name}", 0) for r in per_seed)
        grid.cells[grid.key(scheduler, quantum, policy, workload)] = cell
    wall = _time.perf_counter() - started
    busy = sum(r.elapsed for r in results)
    _LAST_TELEMETRY = {
        "total_runs": len(results),
        "simulated": len(results) - cache_hits,
        "cache_hits": cache_hits,
        "retries": 0,
        "failures": sum(1 for r in results if not r.ok),
        "jobs": jobs,
        "wall_seconds": wall,
        "busy_seconds": busy,
        "utilization": min(1.0, busy / (max(1, jobs) * wall))
        if wall > 0 else 0.0,
    }
    return grid
