"""Simulator-throughput measurement (the perf-regression harness).

The golden-fingerprint tests pin *what* the simulator computes; this
module measures *how fast*.  It drives the three hottest configurations
from the profiling work -- the Figure 9 single-counter sweep point, the
Figure 10 linked-list point, and one contention-policy grid cell --
directly on a :class:`~repro.harness.machine.Machine` (bypassing the
sweep engine, so ``Simulator.events_fired`` is observable) and reports,
per workload:

* ``events_per_sec`` -- kernel events dispatched per wall second, the
  primary throughput metric (machine-dependent but far less noisy than
  raw wall time because every run dispatches an identical event count);
* ``wall_s`` -- best-of-``repeats`` wall seconds;
* ``events`` / ``cycles`` -- deterministic run shape (identical across
  machines; movement means the simulation itself changed);
* ``peak_rss_kb`` -- process peak resident set after the run;
* ``fingerprint`` -- :func:`~repro.harness.runner.result_fingerprint`,
  so a perf artifact doubles as a behaviour record.

The payload mirrors the ``BENCH_<name>.json`` artifact schema
(``bench``/``config``/``results``/``wall_seconds``) so ``repro trend``
picks it up with no special casing: ``events_per_sec`` falling or
``wall_s`` rising classifies as a regression (see
:mod:`repro.harness.trend`).  Reference numbers recorded at
measurement time live under ``config`` (``baseline``/``speedup``),
which trend deliberately skips -- they describe the machine that wrote
the artifact, not the commit under test.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Optional, Union

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.harness.runner import RunResult, result_fingerprint
from repro.harness.spec import RunSpec, stamp_schema

ARTIFACT_NAME = "BENCH_perf.json"

#: Workload sizes: the profiled configurations (full) and a CI-friendly
#: quarter-size variant (quick).
_SIZES = {"full": {"fig09_single_counter": 2048,
                   "fig10_linked_list": 2048,
                   "policy_grid_cell": 1024},
          "quick": {"fig09_single_counter": 512,
                    "fig10_linked_list": 512,
                    "policy_grid_cell": 256}}


def perf_specs(quick: bool = False) -> dict[str, RunSpec]:
    """The measured workloads, name -> :class:`RunSpec`."""
    sizes = _SIZES["quick" if quick else "full"]
    cfg = SystemConfig(num_cpus=8, scheme=SyncScheme.TLR, seed=0)
    return {
        "fig09_single_counter": RunSpec(
            workload="single-counter", config=cfg,
            workload_args={"total_increments":
                           sizes["fig09_single_counter"]}),
        "fig10_linked_list": RunSpec(
            workload="linked-list", config=cfg,
            workload_args={"total_ops": sizes["fig10_linked_list"]}),
        "policy_grid_cell": RunSpec(
            workload="linked-list", config=cfg.with_policy("backoff"),
            workload_args={"total_ops": sizes["policy_grid_cell"]}),
    }


def _peak_rss_kb() -> Optional[int]:
    """Process peak RSS in KiB (Linux ``ru_maxrss`` unit), or ``None``
    where the ``resource`` module is unavailable (non-POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only fallback
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def measure_spec(spec: RunSpec, repeats: int = 3) -> dict:
    """Run ``spec`` ``repeats`` times on fresh machines; report the
    best wall time (least-noise estimator for a deterministic job) and
    the run's deterministic shape."""
    best_wall = None
    events = cycles = 0
    fingerprint = ""
    for _ in range(max(1, repeats)):
        workload = spec.build_workload()
        machine = Machine(spec.config)
        start = time.perf_counter()
        stats = machine.run_workload(workload, validate=spec.validate)
        wall = time.perf_counter() - start
        events = machine.sim.events_fired
        cycles = stats.total_cycles
        fingerprint = result_fingerprint(RunResult(
            config=spec.config, workload_name=workload.name,
            stats=stats, store=machine.store))
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "wall_s": round(best_wall, 6),
        "events": events,
        "cycles": cycles,
        "events_per_sec": round(events / best_wall) if best_wall else 0,
        "peak_rss_kb": _peak_rss_kb(),
        "fingerprint": fingerprint,
    }


def run_perf(quick: bool = False, repeats: int = 3,
             baseline: Optional[dict] = None) -> dict:
    """Measure every perf workload; returns a BENCH-schema payload.

    ``baseline`` is an earlier ``run_perf`` payload (e.g. measured on
    the parent commit on the same machine); when given, per-workload
    speedups are recorded under ``config`` for human consumption.
    """
    specs = perf_specs(quick=quick)
    total_start = time.perf_counter()
    results = {name: measure_spec(spec, repeats=repeats)
               for name, spec in specs.items()}
    payload = stamp_schema({
        "bench": "perf",
        "config": {
            "quick": quick,
            "repeats": repeats,
            "workload_sizes": dict(_SIZES["quick" if quick else "full"]),
        },
        "results": results,
        "wall_seconds": round(time.perf_counter() - total_start, 3),
    })
    if baseline is not None:
        base_results = baseline.get("results", {})
        speedups = {}
        for name, row in results.items():
            base_row = base_results.get(name) or {}
            base_eps = base_row.get("events_per_sec")
            if base_eps:
                speedups[name] = round(row["events_per_sec"] / base_eps, 3)
        payload["config"]["baseline"] = {
            name: {key: row.get(key)
                   for key in ("wall_s", "events_per_sec")}
            for name, row in base_results.items()}
        payload["config"]["speedup_events_per_sec"] = speedups
    return payload


# ----------------------------------------------------------------------
# Regression check
# ----------------------------------------------------------------------
def load_reference(source: str, repo: Union[str, Path] = ".") -> dict:
    """A reference perf payload: a JSON file if ``source`` names one,
    otherwise ``git show <source>:BENCH_perf.json``."""
    path = Path(source)
    if path.is_file():
        return json.loads(path.read_text())
    blob = subprocess.run(
        ["git", "-C", str(repo), "show", f"{source}:{ARTIFACT_NAME}"],
        capture_output=True, text=True)
    if blob.returncode != 0:
        raise FileNotFoundError(
            f"no perf reference at {source!r} (neither a file nor "
            f"{source}:{ARTIFACT_NAME}): {blob.stderr.strip()}")
    return json.loads(blob.stdout)


def check_throughput(current: dict, reference: dict,
                     max_drop: float = 0.25) -> list[str]:
    """Failures where ``events_per_sec`` fell more than ``max_drop``
    relative to the reference (wall noise is deliberately not checked:
    only the throughput ratio gates)."""
    failures = []
    ref_results = reference.get("results", {})
    for name, row in current.get("results", {}).items():
        ref_row = ref_results.get(name)
        if not ref_row or not ref_row.get("events_per_sec"):
            continue
        ratio = row["events_per_sec"] / ref_row["events_per_sec"]
        if ratio < 1.0 - max_drop:
            failures.append(
                f"{name}: events/sec {row['events_per_sec']} is "
                f"{1 - ratio:.0%} below reference "
                f"{ref_row['events_per_sec']} (limit {max_drop:.0%})")
    return failures


def render_table(payload: dict) -> str:
    """Human-readable summary of a perf payload."""
    lines = [f"{'workload':<24} {'events/s':>12} {'wall_s':>9} "
             f"{'events':>9} {'cycles':>9}  fingerprint"]
    for name, row in payload.get("results", {}).items():
        lines.append(
            f"{name:<24} {row['events_per_sec']:>12,} "
            f"{row['wall_s']:>9.3f} {row['events']:>9,} "
            f"{row['cycles']:>9,}  {row['fingerprint'][:16]}")
    speedups = payload.get("config", {}).get("speedup_events_per_sec")
    if speedups:
        pretty = ", ".join(f"{k}: {v:.2f}x" for k, v in speedups.items())
        lines.append(f"speedup vs recorded baseline: {pretty}")
    return "\n".join(lines)
