"""Simulator-throughput measurement (the perf-regression harness).

The golden-fingerprint tests pin *what* the simulator computes; this
module measures *how fast*.  It drives the three hottest configurations
from the profiling work -- the Figure 9 single-counter sweep point, the
Figure 10 linked-list point, and one contention-policy grid cell --
directly on a :class:`~repro.harness.machine.Machine` (bypassing the
sweep engine, so ``Simulator.events_fired`` is observable) and reports,
per workload:

* ``events_per_sec`` -- kernel events dispatched per wall second, the
  primary throughput metric (machine-dependent but far less noisy than
  raw wall time because every run dispatches an identical event count);
* ``wall_s`` -- best-of-``repeats`` wall seconds;
* ``events`` / ``cycles`` -- deterministic run shape (identical across
  machines; movement means the simulation itself changed);
* ``peak_rss_kb`` -- process peak resident set after the run;
* ``fingerprint`` -- :func:`~repro.harness.runner.result_fingerprint`,
  so a perf artifact doubles as a behaviour record.

The payload mirrors the ``BENCH_<name>.json`` artifact schema
(``bench``/``config``/``results``/``wall_seconds``) so ``repro trend``
picks it up with no special casing: ``events_per_sec`` falling or
``wall_s`` rising classifies as a regression (see
:mod:`repro.harness.trend`).  Reference numbers recorded at
measurement time live under ``config`` (``baseline``/``speedup``),
which trend deliberately skips -- they describe the machine that wrote
the artifact, not the commit under test.

Backend A/B (``run_perf(ab=True)``) measures both kernel backends
*interleaved in-process* -- reference rep, batched rep, reference rep,
... -- so slow machine-state drift (thermal, cache, scheduler) hits
both sides equally; process-to-process comparisons on shared hardware
show +-15% noise, which would swamp the effect being measured.  The
top-level ``results`` block always holds the reference rows (keeping
``repro trend`` comparable against pre-A/B artifacts); batched rows
and the speedup table land under ``config["backends"]`` /
``config["speedup_batched_vs_reference"]``.  Because the backends are
bit-identical, every A/B artifact doubles as an equivalence proof:
:func:`check_backend_fingerprints` is the CI hard gate.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional, Union

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.harness.runner import RunResult, result_fingerprint
from repro.harness.spec import RunSpec, stamp_schema

ARTIFACT_NAME = "BENCH_perf.json"

#: Workload sizes: the profiled configurations (full) and a CI-friendly
#: quarter-size variant (quick).
_SIZES = {"full": {"fig09_single_counter": 2048,
                   "fig10_linked_list": 2048,
                   "policy_grid_cell": 1024,
                   "big_machine": 512},
          "quick": {"fig09_single_counter": 512,
                    "fig10_linked_list": 512,
                    "policy_grid_cell": 256,
                    "big_machine": 64}}


def perf_specs(quick: bool = False) -> dict[str, RunSpec]:
    """The measured workloads, name -> :class:`RunSpec`.

    The specs are backend-neutral (reference by default);
    :func:`measure_spec` applies a backend override so A/B mode can
    reuse one spec for both sides.  ``big_machine`` is the scale point
    the batched backend targets: 64 CPUs contending on the linked list
    over the directory protocol, where the per-cycle bucket dispatch
    amortizes across many same-cycle events.
    """
    sizes = _SIZES["quick" if quick else "full"]
    cfg = SystemConfig(num_cpus=8, scheme=SyncScheme.TLR, seed=0)
    return {
        "fig09_single_counter": RunSpec(
            workload="single-counter", config=cfg,
            workload_args={"total_increments":
                           sizes["fig09_single_counter"]}),
        "fig10_linked_list": RunSpec(
            workload="linked-list", config=cfg,
            workload_args={"total_ops": sizes["fig10_linked_list"]}),
        "policy_grid_cell": RunSpec(
            workload="linked-list", config=cfg.with_policy("backoff"),
            workload_args={"total_ops": sizes["policy_grid_cell"]}),
        "big_machine": RunSpec(
            workload="linked-list",
            config=replace(cfg, num_cpus=64, protocol="directory"),
            workload_args={"total_ops": sizes["big_machine"]}),
    }


def _peak_rss_kb() -> Optional[int]:
    """Process peak RSS in KiB (Linux ``ru_maxrss`` unit), or ``None``
    where the ``resource`` module is unavailable (non-POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only fallback
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _measure_once(spec: RunSpec, config: SystemConfig) -> tuple:
    """One timed run on a fresh machine: (wall, events, cycles, fp)."""
    workload = spec.build_workload()
    machine = Machine(config)
    start = time.perf_counter()
    stats = machine.run_workload(workload, validate=spec.validate)
    wall = time.perf_counter() - start
    fingerprint = result_fingerprint(RunResult(
        config=config, workload_name=workload.name,
        stats=stats, store=machine.store))
    return wall, machine.sim.events_fired, stats.total_cycles, fingerprint


def _row(samples: list) -> dict:
    """Best-wall summary row from ``_measure_once`` samples."""
    best_wall, events, cycles, fingerprint = min(samples)
    return {
        "wall_s": round(best_wall, 6),
        "events": events,
        "cycles": cycles,
        "events_per_sec": round(events / best_wall) if best_wall else 0,
        "peak_rss_kb": _peak_rss_kb(),
        "fingerprint": fingerprint,
    }


def measure_spec(spec: RunSpec, repeats: int = 3,
                 backend: Optional[str] = None) -> dict:
    """Run ``spec`` ``repeats`` times on fresh machines; report the
    best wall time (least-noise estimator for a deterministic job) and
    the run's deterministic shape.  ``backend`` overrides the spec's
    kernel backend when given."""
    config = (spec.config if backend is None
              else spec.config.with_backend(backend))
    samples = [_measure_once(spec, config)
               for _ in range(max(1, repeats))]
    return _row(samples)


def measure_ab(spec: RunSpec, repeats: int = 3) -> dict[str, dict]:
    """Interleaved A/B of one spec: backend -> best-of-``repeats`` row.

    Repeats alternate reference/batched within a single process so both
    backends sample the same machine state; see the module docstring
    for why sequential per-backend loops are not trustworthy.
    """
    samples: dict[str, list] = {b: [] for b in SystemConfig.KNOWN_BACKENDS}
    configs = {b: spec.config.with_backend(b)
               for b in SystemConfig.KNOWN_BACKENDS}
    for _ in range(max(1, repeats)):
        for backend, config in configs.items():
            samples[backend].append(_measure_once(spec, config))
    return {backend: _row(rows) for backend, rows in samples.items()}


def run_perf(quick: bool = False, repeats: int = 3,
             baseline: Optional[dict] = None,
             backend: str = "reference", ab: bool = False) -> dict:
    """Measure every perf workload; returns a BENCH-schema payload.

    ``baseline`` is an earlier ``run_perf`` payload (e.g. measured on
    the parent commit on the same machine); when given, per-workload
    speedups are recorded under ``config`` for human consumption.

    ``backend`` selects the kernel backend for the top-level
    ``results`` rows.  ``ab=True`` measures *both* backends interleaved
    instead: ``results`` then holds the reference rows (so ``repro
    trend`` stays comparable against pre-A/B artifacts) while the
    batched rows and the per-workload speedup table land under
    ``config["backends"]`` / ``config["speedup_batched_vs_reference"]``.
    """
    specs = perf_specs(quick=quick)
    total_start = time.perf_counter()
    backends_block: dict[str, dict[str, dict]] = {}
    if ab:
        per_spec = {name: measure_ab(spec, repeats=repeats)
                    for name, spec in specs.items()}
        results = {name: rows["reference"]
                   for name, rows in per_spec.items()}
        for other in SystemConfig.KNOWN_BACKENDS:
            if other != "reference":
                backends_block[other] = {
                    name: rows[other] for name, rows in per_spec.items()}
    else:
        results = {name: measure_spec(spec, repeats=repeats,
                                      backend=backend)
                   for name, spec in specs.items()}
    payload = stamp_schema({
        "bench": "perf",
        "config": {
            "quick": quick,
            "repeats": repeats,
            "backend": "ab" if ab else backend,
            "workload_sizes": dict(_SIZES["quick" if quick else "full"]),
        },
        "results": results,
        "wall_seconds": round(time.perf_counter() - total_start, 3),
    })
    if backends_block:
        payload["config"]["backends"] = backends_block
        batched = backends_block.get("batched", {})
        payload["config"]["speedup_batched_vs_reference"] = {
            name: round(row["events_per_sec"]
                        / results[name]["events_per_sec"], 3)
            for name, row in batched.items()
            if results.get(name, {}).get("events_per_sec")}
    if baseline is not None:
        base_results = baseline.get("results", {})
        speedups = {}
        for name, row in results.items():
            base_row = base_results.get(name) or {}
            base_eps = base_row.get("events_per_sec")
            if base_eps:
                speedups[name] = round(row["events_per_sec"] / base_eps, 3)
        payload["config"]["baseline"] = {
            name: {key: row.get(key)
                   for key in ("wall_s", "events_per_sec")}
            for name, row in base_results.items()}
        payload["config"]["speedup_events_per_sec"] = speedups
    return payload


# ----------------------------------------------------------------------
# Regression check
# ----------------------------------------------------------------------
def load_reference(source: str, repo: Union[str, Path] = ".") -> dict:
    """A reference perf payload: a JSON file if ``source`` names one,
    otherwise ``git show <source>:BENCH_perf.json``."""
    path = Path(source)
    if path.is_file():
        return json.loads(path.read_text())
    blob = subprocess.run(
        ["git", "-C", str(repo), "show", f"{source}:{ARTIFACT_NAME}"],
        capture_output=True, text=True)
    if blob.returncode != 0:
        raise FileNotFoundError(
            f"no perf reference at {source!r} (neither a file nor "
            f"{source}:{ARTIFACT_NAME}): {blob.stderr.strip()}")
    return json.loads(blob.stdout)


def check_throughput(current: dict, reference: dict,
                     max_drop: float = 0.25) -> list[str]:
    """Failures where ``events_per_sec`` fell more than ``max_drop``
    relative to the reference (wall noise is deliberately not checked:
    only the throughput ratio gates)."""
    failures = []
    ref_results = reference.get("results", {})
    for name, row in current.get("results", {}).items():
        ref_row = ref_results.get(name)
        if not ref_row or not ref_row.get("events_per_sec"):
            continue
        ratio = row["events_per_sec"] / ref_row["events_per_sec"]
        if ratio < 1.0 - max_drop:
            failures.append(
                f"{name}: events/sec {row['events_per_sec']} is "
                f"{1 - ratio:.0%} below reference "
                f"{ref_row['events_per_sec']} (limit {max_drop:.0%})")
    return failures


def check_backend_fingerprints(payload: dict) -> list[str]:
    """Failures where an A/B payload's backends disagree behaviourally.

    The kernel backends are contractually bit-identical; a fingerprint
    mismatch between the reference rows (``results``) and any backend
    block under ``config["backends"]`` means the batched core diverged
    from the reference semantics.  CI treats any entry here as a hard
    failure -- unlike throughput, there is no noise tolerance.
    """
    failures = []
    reference = payload.get("results", {})
    for backend, rows in payload.get("config", {}).get(
            "backends", {}).items():
        for name, row in rows.items():
            ref_row = reference.get(name)
            if ref_row is None:
                continue
            if row.get("fingerprint") != ref_row.get("fingerprint"):
                failures.append(
                    f"{name}: backend {backend!r} fingerprint "
                    f"{row.get('fingerprint', '')[:16]} != reference "
                    f"{ref_row.get('fingerprint', '')[:16]}")
            if (row.get("events"), row.get("cycles")) != (
                    ref_row.get("events"), ref_row.get("cycles")):
                failures.append(
                    f"{name}: backend {backend!r} run shape "
                    f"({row.get('events')} ev / {row.get('cycles')} cyc) "
                    f"!= reference ({ref_row.get('events')} ev / "
                    f"{ref_row.get('cycles')} cyc)")
    return failures


def _table_rows(results: dict, lines: list[str]) -> None:
    for name, row in results.items():
        lines.append(
            f"{name:<24} {row['events_per_sec']:>12,} "
            f"{row['wall_s']:>9.3f} {row['events']:>9,} "
            f"{row['cycles']:>9,}  {row['fingerprint'][:16]}")


def render_table(payload: dict) -> str:
    """Human-readable summary of a perf payload."""
    config = payload.get("config", {})
    backends = config.get("backends", {})
    header = (f"{'workload':<24} {'events/s':>12} {'wall_s':>9} "
              f"{'events':>9} {'cycles':>9}  fingerprint")
    lines = []
    if backends:
        lines.append("backend: reference")
    lines.append(header)
    _table_rows(payload.get("results", {}), lines)
    for backend, rows in backends.items():
        lines.append(f"backend: {backend}")
        lines.append(header)
        _table_rows(rows, lines)
    ab_speedups = config.get("speedup_batched_vs_reference")
    if ab_speedups:
        pretty = ", ".join(f"{k}: {v:.2f}x" for k, v in ab_speedups.items())
        lines.append(f"batched vs reference (interleaved A/B): {pretty}")
    speedups = config.get("speedup_events_per_sec")
    if speedups:
        pretty = ", ".join(f"{k}: {v:.2f}x" for k, v in speedups.items())
        lines.append(f"speedup vs recorded baseline: {pretty}")
    return "\n".join(lines)
