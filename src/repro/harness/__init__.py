"""Experiment harness: configuration, machine building, runners.

``run`` is the unified experiment API (see
:func:`repro.harness.parallel.run`): it executes a
:class:`~repro.harness.spec.RunSpec`, a registered experiment name
("figure9", ...), an :class:`~repro.harness.spec.ExperimentSpec`, or a
raw :class:`~repro.runtime.program.Workload`, with keyword-only engine
options ``jobs``/``timeout``/``cache``/``validate``/``retries``.
:func:`~repro.harness.jobs.submit` wraps the same dispatch in the
:class:`~repro.harness.spec.JobSpec` envelope shared with the
``repro serve`` HTTP service; :func:`~repro.harness.runner.execute_workload`
is the single low-level entry point beneath both.
"""

from repro.harness.config import (BusConfig, CacheConfig, MemoryConfig,
                                  SpeculationConfig, SyncScheme, SystemConfig)
from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.machine import Machine
from repro.harness.parallel import (FailedRun, RunTimeout, SweepTelemetry,
                                    WorkerPool, execute, run, use_engine)
from repro.harness.jobs import JobResult, submit
from repro.harness.runner import RunResult, execute_workload
from repro.harness.spec import (EXPERIMENTS, ExperimentSpec, JobSpec,
                                RunSpec, SchemaError)
from repro.harness import analysis, experiments, report

__all__ = [
    "SystemConfig", "SyncScheme", "CacheConfig", "BusConfig", "MemoryConfig",
    "SpeculationConfig", "Machine", "RunResult", "run", "execute_workload",
    "experiments", "report", "analysis",
    "RunSpec", "ExperimentSpec", "EXPERIMENTS", "ResultCache",
    "default_cache_dir", "FailedRun", "RunTimeout", "SweepTelemetry",
    "execute", "JobSpec", "JobResult", "submit", "SchemaError",
    "WorkerPool", "use_engine",
]
