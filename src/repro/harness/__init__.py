"""Experiment harness: configuration, machine building, runners.

``run`` is the unified experiment API (see
:func:`repro.harness.parallel.run`): it executes a
:class:`~repro.harness.spec.RunSpec`, a registered experiment name
("figure9", ...), an :class:`~repro.harness.spec.ExperimentSpec`, or a
raw :class:`~repro.runtime.program.Workload`, with keyword-only engine
options ``jobs``/``timeout``/``cache``/``validate``/``retries``.  The
old per-style entry points (``runner.run``, ``run_scheme``,
``compare_schemes``) remain as deprecated shims.
"""

from repro.harness.config import (BusConfig, CacheConfig, MemoryConfig,
                                  SpeculationConfig, SyncScheme, SystemConfig)
from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.machine import Machine
from repro.harness.parallel import (FailedRun, RunTimeout, SweepTelemetry,
                                    execute, run)
from repro.harness.runner import (RunResult, compare_schemes, run_scheme)
from repro.harness.spec import EXPERIMENTS, ExperimentSpec, RunSpec
from repro.harness import analysis, experiments, report

__all__ = [
    "SystemConfig", "SyncScheme", "CacheConfig", "BusConfig", "MemoryConfig",
    "SpeculationConfig", "Machine", "RunResult", "run", "run_scheme",
    "compare_schemes", "experiments", "report", "analysis",
    "RunSpec", "ExperimentSpec", "EXPERIMENTS", "ResultCache",
    "default_cache_dir", "FailedRun", "RunTimeout", "SweepTelemetry",
    "execute",
]
