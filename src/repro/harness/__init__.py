"""Experiment harness: configuration, machine building, runners."""

from repro.harness.config import (BusConfig, CacheConfig, MemoryConfig,
                                  SpeculationConfig, SyncScheme, SystemConfig)
from repro.harness.machine import Machine
from repro.harness.runner import (RunResult, compare_schemes, run, run_scheme)
from repro.harness import analysis, experiments, report

__all__ = [
    "SystemConfig", "SyncScheme", "CacheConfig", "BusConfig", "MemoryConfig",
    "SpeculationConfig", "Machine", "RunResult", "run", "run_scheme",
    "compare_schemes", "experiments", "report", "analysis",
]
