"""Serializable run/experiment specifications.

The parallel sweep engine (:mod:`repro.harness.parallel`) ships work to
``multiprocessing`` workers and keys the on-disk result cache
(:mod:`repro.harness.cache`), so a run must be describable *as data*:
a workload **name** plus keyword arguments (looked up in
:data:`WORKLOAD_BUILDERS` inside the worker -- thread factories are
closures and cannot be pickled), a :class:`~repro.harness.config.SystemConfig`,
and a validation flag.  :class:`RunSpec` is that description; its
:meth:`~RunSpec.fingerprint` is a deterministic digest of everything
that can change a simulation's outcome, and is the cache key.

:class:`ExperimentSpec` is the registry entry that unifies the paper's
``figure_*``/``table_*`` entry points behind the single keyword-only
API ``repro.harness.run(spec, *, jobs=..., timeout=..., cache=...,
validate=...)``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Optional

from repro.harness.config import (BusConfig, CacheConfig, DirectoryConfig,
                                  MemoryConfig, SchedConfig,
                                  SpeculationConfig, SyncScheme, SystemConfig)
from repro.runtime.program import Workload
from repro.workloads.apps import ALL_APPS, mp3d
from repro.workloads.litmus import (LITMUS_WORKLOADS, litmus_atomicity,
                                    litmus_publication, litmus_write_skew)
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)

# Bumped whenever the simulator's observable behaviour changes in a way
# that invalidates previously cached results.
# v2: SystemConfig grew ``schedule_chaos`` (kernel choice-point hook).
# v3: SpeculationConfig grew ``contention_policy``/``contention_fallback_k``
#     (repro.policies).
# v4: RunResult grew ``metrics`` (repro.obs); cached pre-v4 payloads would
#     silently come back without telemetry.
# v5: every result ``to_dict`` is schema-stamped (``"schema"`` field,
#     checked by ``from_dict``); pre-v5 payloads lack the stamp.
# v6: SystemConfig grew ``sched`` (repro.sched preemptive scheduler);
#     the knobs change simulated schedules, so they must key the cache.
# v7: RunResult metrics grew the ``profile`` section (repro.obs.profile
#     per-lock contention profiles, conflict matrix, profile.* families);
#     cached v6 payloads would come back without it.
# v8: SystemConfig grew ``kernel_backend`` (reference | batched event
#     core).  The backends are bit-identical -- pinned by the
#     cross-backend equivalence suite -- but the serialized config image
#     changed shape, so pre-v8 cache keys no longer match.
FINGERPRINT_VERSION = 8


# ----------------------------------------------------------------------
# Result-payload schema stamping
# ----------------------------------------------------------------------
#: Version of every result ``to_dict`` payload (RunResult, SweepResult,
#: AppResult, VerifyResult, PolicyGridResult, perf payloads, JobResult).
#: The v4 fingerprint bump documents the hazard this solves: a cached or
#: HTTP-transported payload whose schema silently drifted used to come
#: back with fields quietly dropped.  Now every payload carries an
#: explicit ``"schema"`` field and ``from_dict`` fails loudly on a
#: missing or unknown version.
RESULT_SCHEMA = 1


class SchemaError(ValueError):
    """A serialized payload carries a missing or incompatible schema."""


def stamp_schema(payload: dict) -> dict:
    """Stamp ``payload`` (in place) with the current result schema."""
    payload["schema"] = RESULT_SCHEMA
    return payload


def check_schema(data: dict, what: str) -> dict:
    """Validate the ``"schema"`` stamp of a payload being deserialized.

    Raises :class:`SchemaError` (a :class:`ValueError`, so cache readers
    that treat undecodable entries as misses keep working) when the
    stamp is absent or names a version this code does not speak.
    """
    version = data.get("schema")
    if version is None:
        raise SchemaError(
            f"{what} payload has no 'schema' field (pre-v{RESULT_SCHEMA} "
            f"or hand-built dict); refusing to deserialize silently")
    if version != RESULT_SCHEMA:
        raise SchemaError(
            f"{what} payload has schema v{version}, this code speaks "
            f"v{RESULT_SCHEMA}; refusing to drop fields silently")
    return data


def _mp3d_coarse(num_threads: int, **kwargs) -> Workload:
    return mp3d(num_threads, coarse=True, **kwargs)


#: Name -> builder.  Every builder takes the thread count first and
#: accepts only keyword arguments after it, so a ``RunSpec`` can rebuild
#: the workload inside a worker process.
WORKLOAD_BUILDERS: dict[str, Callable[..., Workload]] = {
    "multiple-counter": multiple_counter,
    "single-counter": single_counter,
    "linked-list": linked_list,
    "mp3d-coarse": _mp3d_coarse,
    "litmus-write-skew": litmus_write_skew,
    "litmus-publication": litmus_publication,
    "litmus-atomicity": litmus_atomicity,
    **ALL_APPS,
}

#: The keyword each builder uses for its "total work" knob (the CLI's
#: ``--ops``): total operations for the microbenchmarks, per-thread
#: iteration scale for the application kernels.
SIZE_PARAM: dict[str, str] = {
    "multiple-counter": "total_increments",
    "single-counter": "total_increments",
    "linked-list": "total_ops",
    "mp3d-coarse": "scale",
    **{name: "total_rounds" for name in LITMUS_WORKLOADS},
    **{name: "scale" for name in ALL_APPS},
}


# ----------------------------------------------------------------------
# SystemConfig <-> dict
# ----------------------------------------------------------------------
def scheme_to_str(scheme: SyncScheme) -> str:
    """Stable string form of a scheme (the enum *name*, e.g. ``"TLR"``)."""
    return scheme.name


def scheme_from_str(name: str) -> SyncScheme:
    """Inverse of :func:`scheme_to_str`; also accepts the paper label
    (enum value, e.g. ``"BASE+SLE+TLR"``)."""
    try:
        return SyncScheme[name]
    except KeyError:
        for scheme in SyncScheme:
            if scheme.value == name:
                return scheme
        raise KeyError(
            f"unknown scheme {name!r}; known: "
            f"{[s.name for s in SyncScheme]}") from None


def config_to_dict(config: SystemConfig) -> dict:
    """A JSON-serializable image of a :class:`SystemConfig`."""
    data = asdict(config)
    data["scheme"] = scheme_to_str(config.scheme)
    return data


def config_from_dict(data: dict) -> SystemConfig:
    data = dict(data)
    return SystemConfig(
        num_cpus=data["num_cpus"],
        scheme=scheme_from_str(data["scheme"]),
        cache=CacheConfig(**data["cache"]),
        bus=BusConfig(**data["bus"]),
        directory=DirectoryConfig(**data["directory"]),
        protocol=data["protocol"],
        memory=MemoryConfig(**data["memory"]),
        spec=SpeculationConfig(**data["spec"]),
        seed=data["seed"],
        latency_jitter=data["latency_jitter"],
        metrics=data.get("metrics", True),
        schedule_chaos=data.get("schedule_chaos", 0),
        max_cycles=data["max_cycles"],
        # Pre-v6 images have no "sched" key; the default is the off
        # switch, which is behaviourally identical to what they ran.
        sched=SchedConfig(**(data.get("sched") or {})),
        # Pre-v8 images have no "kernel_backend" key; the reference
        # backend is what they ran (and batched is bit-identical anyway).
        kernel_backend=data.get("kernel_backend", "reference"),
    )


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass
class RunSpec:
    """One simulation, described as picklable/JSON-able data."""

    workload: str
    config: SystemConfig
    workload_args: dict = field(default_factory=dict)
    validate: bool = True

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_BUILDERS:
            raise KeyError(
                f"unknown workload {self.workload!r}; known: "
                f"{sorted(WORKLOAD_BUILDERS)}")

    def build_workload(self) -> Workload:
        """Instantiate the workload for ``config.num_cpus`` threads."""
        builder = WORKLOAD_BUILDERS[self.workload]
        return builder(self.config.num_cpus, **self.workload_args)

    def with_seed(self, seed: int) -> "RunSpec":
        return replace(self, config=replace(self.config, seed=seed))

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "workload_args": dict(self.workload_args),
            "config": config_to_dict(self.config),
            "validate": self.validate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(workload=data["workload"],
                   workload_args=dict(data.get("workload_args") or {}),
                   config=config_from_dict(data["config"]),
                   validate=data.get("validate", True))

    def fingerprint(self) -> str:
        """Deterministic digest of everything that determines the
        simulation's outcome (workload identity + full config, including
        the seed; *not* the validate flag, which cannot change results).
        """
        payload = {
            "v": FINGERPRINT_VERSION,
            "workload": self.workload,
            "workload_args": self.workload_args,
            "config": config_to_dict(self.config),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# JobSpec: the unified job envelope
# ----------------------------------------------------------------------
#: Version of the JobSpec envelope itself (the ``kind``/``params``
#: contract), independent of :data:`RESULT_SCHEMA` (what results look
#: like) and :data:`FINGERPRINT_VERSION` (what simulations compute).
JOBSPEC_SCHEMA = 1

#: The kinds of work a job can describe.  ``run`` wraps one
#: :class:`RunSpec`; ``sweep`` names a registered experiment plus its
#: parameters (covers the figure/table sweeps and the policy grid);
#: ``verify`` is the verification suite; ``perf`` a throughput
#: measurement; ``sched`` the preemptive-scheduler grid (its own kind
#: so the service can route and rate it separately from sweeps).
JOB_KINDS = ("run", "sweep", "verify", "perf", "sched")


@dataclass
class JobSpec:
    """One unit of work -- run, sweep, verify or perf -- as a single
    serializable, fingerprintable envelope.

    This is the API the CLI and the ``repro serve`` HTTP service share:
    both build a ``JobSpec`` and hand it to
    :func:`repro.harness.jobs.submit`, so "two transports, one API".
    ``params`` must be JSON-serializable (configs travel as
    :func:`config_to_dict` images); :meth:`fingerprint` is the dedup
    key for both in-flight coalescing and the completed-job cache.
    """

    kind: str
    params: dict = field(default_factory=dict)
    #: Queue priority (``repro serve``): higher runs first, ties FIFO.
    #: Deliberately *excluded* from :meth:`fingerprint` -- priority is
    #: how urgently a job runs, never what it computes, so a high- and
    #: a low-priority submission of the same work coalesce and share
    #: one cache entry.
    priority: int = 0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; known: {JOB_KINDS}")
        if not isinstance(self.params, dict):
            raise TypeError(
                f"JobSpec params must be a dict, got "
                f"{type(self.params).__name__}")
        if not isinstance(self.priority, int) or isinstance(self.priority,
                                                            bool):
            raise TypeError("JobSpec priority must be an int")

    # -- constructors ---------------------------------------------------
    @classmethod
    def run(cls, spec: "RunSpec") -> "JobSpec":
        """Wrap one :class:`RunSpec` as a job."""
        return cls(kind="run", params=spec.to_dict())

    @classmethod
    def sweep(cls, experiment: str, **params) -> "JobSpec":
        """A registered experiment (``"figure9"``, ``"policies"``, ...)
        plus its keyword parameters.  A ``config`` parameter may be a
        :class:`~repro.harness.config.SystemConfig` (serialized here)
        or an already-serialized dict."""
        if isinstance(params.get("config"), SystemConfig):
            params["config"] = config_to_dict(params["config"])
        return cls(kind="sweep", params={"experiment": experiment, **params})

    @classmethod
    def verify(cls, **params) -> "JobSpec":
        """A verification-suite job (see
        :func:`repro.harness.experiments.verify`).  ``scheme`` may be a
        :class:`~repro.harness.config.SyncScheme` (serialized here)."""
        if isinstance(params.get("scheme"), SyncScheme):
            params["scheme"] = scheme_to_str(params["scheme"])
        return cls(kind="verify", params=params)

    @classmethod
    def perf(cls, **params) -> "JobSpec":
        """A throughput-measurement job (see
        :func:`repro.harness.perf.run_perf`)."""
        return cls(kind="perf", params=params)

    @classmethod
    def sched(cls, **params) -> "JobSpec":
        """A preemptive-scheduler grid job (see
        :func:`repro.harness.experiments.sched_grid`).  ``config`` may
        be a :class:`~repro.harness.config.SystemConfig`."""
        if isinstance(params.get("config"), SystemConfig):
            params["config"] = config_to_dict(params["config"])
        return cls(kind="sched", params=params)

    # -- properties -----------------------------------------------------
    @property
    def cacheable(self) -> bool:
        """Whether a completed result may be replayed for an identical
        later submission.  Perf jobs measure the machine they run on,
        not a deterministic outcome, so they are never replayed."""
        return self.kind != "perf"

    def run_spec(self) -> "RunSpec":
        """The wrapped :class:`RunSpec` (``kind == "run"`` only)."""
        if self.kind != "run":
            raise ValueError(f"job kind {self.kind!r} wraps no RunSpec")
        return RunSpec.from_dict(self.params)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        payload = {"schema": JOBSPEC_SCHEMA,
                   "kind": self.kind,
                   "params": dict(self.params)}
        if self.priority:
            payload["priority"] = self.priority
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        version = data.get("schema", JOBSPEC_SCHEMA)
        if version != JOBSPEC_SCHEMA:
            raise SchemaError(
                f"JobSpec payload has schema v{version}, this code "
                f"speaks v{JOBSPEC_SCHEMA}")
        return cls(kind=data["kind"], params=dict(data.get("params") or {}),
                   priority=int(data.get("priority", 0)))

    def fingerprint(self) -> str:
        """Deterministic digest of everything that determines the job's
        outcome: the envelope schema, the simulator fingerprint version,
        the kind and the canonicalized parameters."""
        payload = {
            "jobspec": JOBSPEC_SCHEMA,
            "v": FINGERPRINT_VERSION,
            "kind": self.kind,
            "params": self.params,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# ExperimentSpec registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """A named, runnable experiment (one paper figure/table).

    ``runner`` accepts the experiment's own parameters plus the uniform
    engine keywords (``jobs``, ``timeout``, ``cache``, ``retries``,
    ``validate``) and returns the experiment's result object.
    """

    name: str
    description: str
    runner: Callable[..., Any]

    def __call__(self, **kwargs) -> Any:
        return self.runner(**kwargs)


#: Global experiment registry, populated by
#: :mod:`repro.harness.experiments` at import time.
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def register_experiment(name: str, description: str):
    """Decorator: register a ``figure_*``/``table_*`` function under
    ``name`` in :data:`EXPERIMENTS`."""
    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        EXPERIMENTS[name] = ExperimentSpec(name=name,
                                           description=description,
                                           runner=fn)
        return fn
    return decorator


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{sorted(EXPERIMENTS)}") from None
