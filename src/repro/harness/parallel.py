"""Parallel sweep engine and the unified ``run`` API.

Every paper figure is a sweep of *independent* ``(workload, scheme,
num_cpus, seed)`` simulations, so :func:`execute` fans a list of
:class:`~repro.harness.spec.RunSpec` out over a ``multiprocessing``
pool.  Guarantees:

* **Determinism** -- each run builds a fresh machine seeded only from
  its own config, and the serial (``jobs=1``) and parallel paths share
  the same per-run execution function, so results are bit-identical for
  the same specs regardless of ``jobs``.
* **Graceful degradation** -- a run that livelocks
  (:class:`~repro.sim.kernel.SimulationError` on cycle-budget overrun),
  deadlocks, or exceeds its wall-clock ``timeout`` is retried with a
  bumped seed; a configuration that stays pathological after
  ``retries`` attempts yields a structured :class:`FailedRun` in its
  slot instead of aborting the sweep.  Functional-validation failures
  (:class:`~repro.runtime.program.ValidationError`) are *not* retried:
  they indicate a correctness bug and abort loudly.
* **Incrementality** -- with a :class:`~repro.harness.cache.ResultCache`,
  runs whose fingerprint already has a stored result are reconstructed
  from disk instead of simulated.
* **Telemetry** -- :class:`SweepTelemetry` reports runs simulated,
  cache hits, retries, failures, wall time and worker utilization;
  :func:`repro.harness.report.telemetry_line` renders it.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Sequence, Union

from repro.harness.cache import resolve_cache
from repro.harness.config import SystemConfig
from repro.harness.runner import RunResult, execute_workload
from repro.harness.spec import (ExperimentSpec, RunSpec, check_schema,
                                get_experiment, scheme_to_str,
                                stamp_schema)
from repro.runtime.program import Workload
from repro.sim.kernel import SimulationError

DEFAULT_RETRIES = 2
#: Seed increment per retry.  Large and odd, so retry seeds stay far
#: from the dense 0..N seed ranges sweeps normally use.
SEED_BUMP = 1_000_003


class RunTimeout(SimulationError):
    """A run exceeded its per-run wall-clock budget."""


@dataclass
class FailedRun:
    """One configuration that stayed pathological through its retries."""

    workload: str
    scheme: str                 # scheme name, e.g. "TLR"
    num_cpus: int
    seed: int                   # the originally requested seed
    fingerprint: str
    error: str                  # last exception class name
    message: str                # last exception message
    attempts: int
    seeds_tried: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return stamp_schema(
            {"workload": self.workload, "scheme": self.scheme,
             "num_cpus": self.num_cpus, "seed": self.seed,
             "fingerprint": self.fingerprint, "error": self.error,
             "message": self.message, "attempts": self.attempts,
             "seeds_tried": list(self.seeds_tried)})

    @classmethod
    def from_dict(cls, data: dict) -> "FailedRun":
        check_schema(data, "FailedRun")
        fields_ = {key: value for key, value in data.items()
                   if key != "schema"}
        return cls(**fields_)


@dataclass
class SweepTelemetry:
    """What one :func:`execute` call did, for progress reporting."""

    total_runs: int = 0
    simulated: int = 0
    cache_hits: int = 0
    retries: int = 0
    failures: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0   # sum of per-run simulation wall time

    @property
    def utilization(self) -> float:
        """Fraction of worker capacity spent simulating."""
        if self.wall_seconds <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.jobs * self.wall_seconds))

    def to_dict(self) -> dict:
        return {"total_runs": self.total_runs, "simulated": self.simulated,
                "cache_hits": self.cache_hits, "retries": self.retries,
                "failures": self.failures, "jobs": self.jobs,
                "wall_seconds": self.wall_seconds,
                "busy_seconds": self.busy_seconds,
                "utilization": self.utilization}


# ----------------------------------------------------------------------
# Per-run execution (shared by the serial path and pool workers)
# ----------------------------------------------------------------------
@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Raise :class:`RunTimeout` if the body runs longer than
    ``seconds``.  Uses ``SIGALRM``, so it only engages on POSIX in the
    process's main thread (true for pool workers under fork and for the
    serial path); elsewhere the limit is a no-op."""
    if (not seconds or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"wall-clock limit of {seconds}s exceeded")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _simulate(spec: RunSpec) -> RunResult:
    """Build and run one spec (fresh workload, fresh machine)."""
    return execute_workload(spec.build_workload(), spec.config,
                            validate=spec.validate)


def _execute_with_retries(spec_dict: dict, timeout: Optional[float],
                          retries: int, seed_bump: int) -> dict:
    """Run one spec, retrying livelock/timeout with bumped seeds.

    Takes and returns plain dicts so it can cross the process boundary
    unchanged; the serial path calls it in-process, which is what makes
    ``jobs=1`` and ``jobs=N`` bit-identical.
    """
    spec = RunSpec.from_dict(spec_dict)
    base_seed = spec.config.seed
    seeds_tried: list[int] = []
    last_error: Optional[BaseException] = None
    started = time.perf_counter()
    for attempt in range(retries + 1):
        seed = base_seed + attempt * seed_bump
        seeds_tried.append(seed)
        attempt_spec = spec.with_seed(seed)
        try:
            with _wall_clock_limit(timeout):
                result = _simulate(attempt_spec)
        except SimulationError as exc:
            # Cycle-budget overrun (livelock), drained-queue deadlock,
            # or wall-clock timeout: retry under a different seed.
            last_error = exc
            continue
        return {"ok": True,
                "result": result.to_dict(),
                "attempts": attempt + 1,
                "seed_used": seed,
                "elapsed": time.perf_counter() - started}
    failed = FailedRun(
        workload=spec.workload,
        scheme=scheme_to_str(spec.config.scheme),
        num_cpus=spec.config.num_cpus,
        seed=base_seed,
        fingerprint=spec.fingerprint(),
        error=type(last_error).__name__,
        message=str(last_error),
        attempts=len(seeds_tried),
        seeds_tried=seeds_tried)
    return {"ok": False,
            "failed": failed.to_dict(),
            "attempts": len(seeds_tried),
            "elapsed": time.perf_counter() - started}


def _worker_execute(payload: tuple) -> dict:
    """Top-level pool entry point (must be picklable)."""
    spec_dict, timeout, retries, seed_bump = payload
    return _execute_with_retries(spec_dict, timeout, retries, seed_bump)


# ----------------------------------------------------------------------
# The sweep engine
# ----------------------------------------------------------------------
Outcome = Union[RunResult, FailedRun]
ProgressCallback = Callable[[int, int, Outcome], None]


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class WorkerPool:
    """A persistent multiprocessing pool reusable across engine calls.

    The sweep engine normally forks a fresh pool per :func:`execute`
    call, which is fine for one-shot sweeps but wasteful for an
    always-on service running many jobs.  A ``WorkerPool`` keeps the
    worker processes alive; install it for a region of code with
    :func:`use_engine` and every engine call inside (including those
    made by experiment functions and the verifier) shards its cells
    across the shared workers.  ``Pool.imap`` is safe to call from
    several service threads concurrently -- each call gets its own
    result iterator.
    """

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes or multiprocessing.cpu_count()
        self._pool = _pool_context().Pool(processes=self.processes)

    def imap(self, fn, iterable):
        return self._pool.imap(fn, iterable)

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _EngineContext(threading.local):
    """Per-thread ambient engine state (persistent pool, progress tap).

    Thread-local so concurrent service threads can run jobs with
    independent progress hooks while sharing one :class:`WorkerPool`
    object (each thread installs the same pool into its own context).
    """

    pool: Optional[WorkerPool] = None
    progress: Optional["ProgressCallback"] = None


_ENGINE = _EngineContext()


@contextmanager
def use_engine(pool: Optional[WorkerPool] = None, progress=None):
    """Install a persistent :class:`WorkerPool` and/or a progress tap
    for every engine call made inside the ``with`` body (including
    calls buried in experiment functions and the verifier, which do not
    take these arguments directly)."""
    previous = (_ENGINE.pool, _ENGINE.progress)
    _ENGINE.pool = pool if pool is not None else _ENGINE.pool
    _ENGINE.progress = progress if progress is not None else _ENGINE.progress
    try:
        yield
    finally:
        _ENGINE.pool, _ENGINE.progress = previous


def ambient_progress():
    """The progress tap installed by :func:`use_engine`, if any."""
    return _ENGINE.progress


def map_payloads(worker, payloads: Sequence, jobs: int):
    """Yield ``worker(payload)`` for each payload, in order.

    Serial in-process when ``jobs <= 1`` or there is a single payload
    (the determinism baseline); otherwise through the ambient
    :class:`WorkerPool` if one is installed, else a fresh fork pool.
    Shared by the sweep engine and the verifier so both honour the
    service's persistent pool.
    """
    if jobs <= 1 or len(payloads) == 1:
        for payload in payloads:
            yield worker(payload)
        return
    if _ENGINE.pool is not None:
        yield from _ENGINE.pool.imap(worker, payloads)
        return
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
        yield from pool.imap(worker, payloads)


def execute(specs: Sequence[RunSpec], *,
            jobs: Optional[int] = 1,
            timeout: Optional[float] = None,
            retries: Optional[int] = None,
            seed_bump: int = SEED_BUMP,
            cache=None,
            progress: Optional[ProgressCallback] = None,
            ) -> tuple[list[Outcome], SweepTelemetry]:
    """Execute ``specs``, returning outcomes in the same order.

    ``jobs``: worker processes (``None``/``0`` = one per CPU; ``1`` =
    serial in-process, the determinism baseline).  ``timeout``:
    per-run wall-clock seconds.  ``retries``: extra attempts (with
    seed bumps) before a run is recorded as :class:`FailedRun`.
    ``cache`` accepts anything :func:`~repro.harness.cache.resolve_cache`
    does.  ``progress(done, total, outcome)`` fires as results land.
    """
    if retries is None:
        retries = DEFAULT_RETRIES
    if not jobs:
        jobs = multiprocessing.cpu_count()
    store = resolve_cache(cache)
    started = time.perf_counter()
    telemetry = SweepTelemetry(total_runs=len(specs), jobs=jobs)
    outcomes: list[Optional[Outcome]] = [None] * len(specs)
    fingerprints = [spec.fingerprint() for spec in specs]
    done = 0
    taps = [tap for tap in (progress, ambient_progress()) if tap is not None]

    def _notify(count: int, total: int, outcome: Outcome) -> None:
        for tap in taps:
            tap(count, total, outcome)

    # Cache pass: reconstruct whatever is already on disk.
    pending: list[int] = []
    for i, spec in enumerate(specs):
        payload = store.get(fingerprints[i]) if store is not None else None
        if payload is not None:
            try:
                outcomes[i] = RunResult.from_dict(payload["result"])
            except (KeyError, TypeError, ValueError):
                # Stale schema: drop the entry and simulate.
                store.invalidate(fingerprints[i])
            else:
                telemetry.cache_hits += 1
                done += 1
                _notify(done, len(specs), outcomes[i])
                continue
        pending.append(i)

    def _absorb(index: int, raw: dict) -> None:
        nonlocal done
        telemetry.busy_seconds += raw.get("elapsed", 0.0)
        telemetry.retries += raw["attempts"] - 1
        if raw["ok"]:
            result = RunResult.from_dict(raw["result"])
            result.attempts = raw["attempts"]
            result.seed_used = raw["seed_used"]
            outcomes[index] = result
            telemetry.simulated += 1
            if store is not None:
                store.put(fingerprints[index],
                          {"spec": specs[index].to_dict(),
                           "result": raw["result"]})
        else:
            outcomes[index] = FailedRun.from_dict(raw["failed"])
            telemetry.failures += 1
        done += 1
        _notify(done, len(specs), outcomes[index])

    payloads = [(specs[i].to_dict(), timeout, retries, seed_bump)
                for i in pending]
    for index, raw in zip(pending,
                          map_payloads(_worker_execute, payloads, jobs)):
        _absorb(index, raw)

    telemetry.wall_seconds = time.perf_counter() - started
    return list(outcomes), telemetry  # every slot is filled by now


# ----------------------------------------------------------------------
# The unified experiment API
# ----------------------------------------------------------------------
def run(spec, config: Optional[SystemConfig] = None, *,
        jobs: int = 1,
        timeout: Optional[float] = None,
        cache=None,
        validate: bool = True,
        retries: Optional[int] = None,
        **params) -> Any:
    """Run a spec -- the single entry point for every kind of work.

    ``spec`` may be:

    * a :class:`~repro.harness.spec.RunSpec` -- one simulation; returns
      a :class:`RunResult` (or a :class:`FailedRun` if it stayed
      pathological through its retries);
    * a registered experiment name (``"figure9"``, ``"coarse-vs-fine"``,
      ...) or :class:`~repro.harness.spec.ExperimentSpec` -- the full
      figure/table sweep; extra ``**params`` (e.g. ``processor_counts``)
      are forwarded to the experiment; returns its result object;
    * a raw :class:`~repro.runtime.program.Workload` -- legacy
      single-run path (in-process, uncacheable: thread factories carry
      closures, so there is no stable fingerprint).

    Engine options are keyword-only: ``jobs`` (worker processes),
    ``timeout`` (per-run wall-clock seconds), ``cache`` (``True`` /
    path / :class:`~repro.harness.cache.ResultCache`), ``validate``
    (run the functional checker), ``retries`` (livelock retries).
    """
    if isinstance(spec, Workload):
        base = config or SystemConfig()
        return execute_workload(spec, base, validate=validate)
    if isinstance(spec, RunSpec):
        if not validate:
            spec = replace(spec, validate=False)
        outcomes, _ = execute([spec], jobs=jobs, timeout=timeout,
                              retries=retries, cache=cache)
        return outcomes[0]
    if isinstance(spec, str):
        spec = get_experiment(spec)
    if isinstance(spec, ExperimentSpec):
        if config is not None:
            params.setdefault("config", config)
        return spec.runner(jobs=jobs, timeout=timeout, cache=cache,
                           validate=validate, retries=retries, **params)
    raise TypeError(
        f"cannot run {type(spec).__name__!r}: expected RunSpec, Workload, "
        "ExperimentSpec, or a registered experiment name")
