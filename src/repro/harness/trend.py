"""Cross-commit trend analysis over ``BENCH_*.json`` artifacts.

Every benchmark run writes a ``BENCH_<name>.json`` artifact at the repo
root (see ``benchmarks/conftest.py``); they are committed, which makes
each one a per-commit performance record -- but until this module
nothing ever *read* them back.  ``repro trend`` diffs the working
tree's artifacts against a baseline (a git ref, loaded with
``git show <ref>:BENCH_<name>.json``, or any directory of artifacts),
flags metric movements beyond a configurable threshold, and renders a
markdown or JSON report.  CI runs it on every PR so a regressing change
fails visibly instead of silently shifting the committed numbers.

What counts as a regression is inferred from the metric's dotted path:
``cycles``/``slowdown`` metrics regress when they *rise*, ``speedup``
metrics when they *fall*; everything else (event counts, histogram
summaries) is reported as informational drift only.  ``wall_seconds``
is machine timing noise and is excluded entirely, as is the ``config``
echo (inputs, not results).
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

#: Artifact filename shape (also what CI and conftest produce).
ARTIFACT_PREFIX = "BENCH_"
#: Top-level artifact keys that are not comparable results.
_SKIP_TOP_LEVEL = {"bench", "config", "wall_seconds"}

# Substring-matched against the flattened metric path.  Scheduler
# counters read "lower is better": fewer preemptions and context-switch
# aborts mean less work thrown away for the same verified result.
# Profiler families follow the same logic: "cycles" already catches
# profile.cycles_lost / deferral_cycles rising (lost work = regression),
# and a falling commit rate means more aborted speculation per attempt.
LOWER_IS_BETTER = ("cycles", "slowdown", "wall_s", "aborts",
                   "context_switch_aborts", "preemptions")
HIGHER_IS_BETTER = ("speedup", "events_per_sec", "commit_rate")


class TrendError(RuntimeError):
    """Baseline or working-tree artifacts could not be loaded."""


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_dir(path: Union[str, Path]) -> dict[str, dict]:
    """All ``BENCH_*.json`` artifacts in ``path``, name -> payload."""
    root = Path(path)
    if not root.is_dir():
        raise TrendError(f"not a directory: {root}")
    artifacts = {}
    for file in sorted(root.glob(f"{ARTIFACT_PREFIX}*.json")):
        try:
            artifacts[file.name] = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TrendError(f"unreadable artifact {file}: {exc}") from exc
    return artifacts


def load_git_ref(ref: str, repo: Union[str, Path] = ".") -> dict[str, dict]:
    """All ``BENCH_*.json`` artifacts committed at ``ref``."""
    listing = subprocess.run(
        ["git", "-C", str(repo), "ls-tree", "--name-only", ref],
        capture_output=True, text=True)
    if listing.returncode != 0:
        raise TrendError(f"cannot resolve git ref {ref!r}: "
                         f"{listing.stderr.strip()}")
    artifacts = {}
    for name in listing.stdout.splitlines():
        if not (name.startswith(ARTIFACT_PREFIX) and name.endswith(".json")):
            continue
        blob = subprocess.run(
            ["git", "-C", str(repo), "show", f"{ref}:{name}"],
            capture_output=True, text=True)
        if blob.returncode != 0:
            raise TrendError(f"cannot read {ref}:{name}: "
                             f"{blob.stderr.strip()}")
        try:
            artifacts[name] = json.loads(blob.stdout)
        except json.JSONDecodeError as exc:
            raise TrendError(f"{ref}:{name} is not JSON: {exc}") from exc
    return artifacts


def load_baseline(against: str,
                  repo: Union[str, Path] = ".") -> dict[str, dict]:
    """Baseline artifacts from ``against``: a directory path if one
    exists by that name, otherwise a git ref."""
    if Path(against).is_dir():
        return load_dir(against)
    return load_git_ref(against, repo=repo)


# ----------------------------------------------------------------------
# Flattening and comparison
# ----------------------------------------------------------------------
def flatten_results(payload: dict) -> dict[str, float]:
    """Numeric leaves of an artifact as ``{dotted.path: value}``,
    excluding the config echo and wall-clock noise."""
    flat: dict[str, float] = {}

    def walk(node, path: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}" if path else str(key))
        elif isinstance(node, (list, tuple)):
            for index, value in enumerate(node):
                walk(value, f"{path}.{index}")
        elif isinstance(node, bool):
            return
        elif isinstance(node, (int, float)):
            flat[path] = node

    for key, value in payload.items():
        if key in _SKIP_TOP_LEVEL:
            continue
        walk(value, key)
    return flat


def direction_of(path: str) -> str:
    """``"lower"`` / ``"higher"`` (is better) or ``"neutral"``."""
    lowered = path.lower()
    if any(token in lowered for token in LOWER_IS_BETTER):
        return "lower"
    if any(token in lowered for token in HIGHER_IS_BETTER):
        return "higher"
    return "neutral"


@dataclass
class Delta:
    """One metric compared across baseline and current."""

    artifact: str
    path: str
    base: float
    current: float
    direction: str  # "lower" | "higher" | "neutral"

    @property
    def rel_change(self) -> float:
        """(current - base) / base; +/-inf when the baseline is zero."""
        if self.base == 0:
            if self.current == 0:
                return 0.0
            return float("inf") if self.current > 0 else float("-inf")
        return (self.current - self.base) / self.base

    def classify(self, threshold: float) -> str:
        """"regression" | "improvement" | "drift" | "stable"."""
        change = self.rel_change
        if change == 0:
            return "stable"
        if self.direction == "neutral":
            return "drift" if abs(change) > threshold else "stable"
        worse = change > 0 if self.direction == "lower" else change < 0
        if abs(change) <= threshold:
            return "stable"
        return "regression" if worse else "improvement"

    def to_dict(self) -> dict:
        return {"artifact": self.artifact, "path": self.path,
                "base": self.base, "current": self.current,
                "direction": self.direction,
                "rel_change": self.rel_change}


@dataclass
class TrendReport:
    """The comparison of two artifact sets."""

    base_label: str
    current_label: str
    threshold: float
    deltas: list[Delta] = field(default_factory=list)
    only_base: list[str] = field(default_factory=list)
    only_current: list[str] = field(default_factory=list)
    compared_artifacts: list[str] = field(default_factory=list)

    def _classified(self, wanted: str) -> list[Delta]:
        return [d for d in self.deltas
                if d.classify(self.threshold) == wanted]

    @property
    def regressions(self) -> list[Delta]:
        return self._classified("regression")

    @property
    def improvements(self) -> list[Delta]:
        return self._classified("improvement")

    @property
    def drift(self) -> list[Delta]:
        return self._classified("drift")

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "base": self.base_label,
            "current": self.current_label,
            "threshold": self.threshold,
            "ok": self.ok,
            "compared_artifacts": list(self.compared_artifacts),
            "only_base": list(self.only_base),
            "only_current": list(self.only_current),
            "regressions": [d.to_dict() for d in self.regressions],
            "improvements": [d.to_dict() for d in self.improvements],
            "drift": [d.to_dict() for d in self.drift],
            "metrics_compared": len(self.deltas),
        }

    def to_markdown(self) -> str:
        lines = [f"# BENCH trend: {self.base_label} -> "
                 f"{self.current_label}", ""]
        lines.append(f"{len(self.compared_artifacts)} artifacts, "
                     f"{len(self.deltas)} metrics compared "
                     f"(threshold {self.threshold:.0%}).")
        for label, missing in (("only in baseline", self.only_base),
                               ("only in working tree", self.only_current)):
            if missing:
                lines.append(f"Artifacts {label}: {', '.join(missing)}.")
        lines.append("")
        for title, rows in (("Regressions", self.regressions),
                            ("Improvements", self.improvements),
                            ("Drift (informational)", self.drift)):
            lines.append(f"## {title}")
            if not rows:
                lines.append("none" if title == "Regressions"
                             else "_none_")
                lines.append("")
                continue
            lines.append("| artifact | metric | base | current | change |")
            lines.append("|---|---|---:|---:|---:|")
            ordered = sorted(rows, key=lambda d: -abs(d.rel_change))
            for delta in ordered[:40]:
                lines.append(
                    f"| {delta.artifact} | `{delta.path}` "
                    f"| {delta.base:g} | {delta.current:g} "
                    f"| {delta.rel_change:+.1%} |")
            if len(ordered) > 40:
                lines.append(f"| ... | {len(ordered) - 40} more | | | |")
            lines.append("")
        verdict = ("OK: no regressions beyond threshold." if self.ok else
                   f"FAIL: {len(self.regressions)} regression(s) beyond "
                   f"threshold.")
        lines.append(verdict)
        return "\n".join(lines)


def compare(base: dict[str, dict], current: dict[str, dict],
            threshold: float = 0.05,
            base_label: str = "baseline",
            current_label: str = "current") -> TrendReport:
    """Compare two ``{artifact name: payload}`` sets metric-by-metric.

    Only metrics present on both sides are compared (a renamed or new
    metric cannot regress); artifacts on one side only are listed in
    the report but do not fail it.
    """
    report = TrendReport(base_label=base_label, current_label=current_label,
                         threshold=threshold)
    report.only_base = sorted(set(base) - set(current))
    report.only_current = sorted(set(current) - set(base))
    for name in sorted(set(base) & set(current)):
        report.compared_artifacts.append(name)
        old = flatten_results(base[name])
        new = flatten_results(current[name])
        for path in sorted(set(old) & set(new)):
            report.deltas.append(Delta(
                artifact=name, path=path, base=old[path],
                current=new[path], direction=direction_of(path)))
    return report


def trend_report(against: str, artifacts_dir: Union[str, Path] = ".",
                 repo: Union[str, Path, None] = None,
                 threshold: float = 0.05) -> TrendReport:
    """One-call convenience for the CLI: working-tree artifacts in
    ``artifacts_dir`` vs. a baseline ref or directory ``against``."""
    current = load_dir(artifacts_dir)
    base = load_baseline(against, repo=repo if repo is not None
                         else artifacts_dir)
    if not current and not base:
        raise TrendError(
            f"no {ARTIFACT_PREFIX}*.json artifacts found in "
            f"{artifacts_dir} nor at {against}")
    return compare(base, current, threshold=threshold,
                   base_label=str(against), current_label="working tree")


# ----------------------------------------------------------------------
# Multi-commit history
# ----------------------------------------------------------------------
@dataclass
class HistoryReport:
    """Per-metric value series across a window of commits.

    ``refs`` are the compared points oldest-first (``HEAD~N`` ..
    ``HEAD``, then the working tree); ``series`` maps
    ``(artifact, metric path)`` to one value per ref (``None`` where
    the metric or artifact is absent at that point).
    """

    refs: list[str] = field(default_factory=list)
    series: dict[tuple[str, str], list[Optional[float]]] = \
        field(default_factory=dict)

    def changed(self) -> dict[tuple[str, str], list[Optional[float]]]:
        """Only the series whose present values are not all equal."""
        out = {}
        for key, values in self.series.items():
            present = [v for v in values if v is not None]
            if present and any(v != present[0] for v in present):
                out[key] = values
        return out

    def to_dict(self, changed_only: bool = True) -> dict:
        series = self.changed() if changed_only else self.series
        return {
            "refs": list(self.refs),
            "series": [{"artifact": artifact, "path": path,
                        "values": values, "direction": direction_of(path)}
                       for (artifact, path), values
                       in sorted(series.items())],
        }

    def to_markdown(self, changed_only: bool = True,
                    limit: int = 60) -> str:
        series = self.changed() if changed_only else self.series
        lines = [f"# BENCH history: {self.refs[0]} -> {self.refs[-1]}"
                 if self.refs else "# BENCH history", ""]
        lines.append(f"{len(series)} changing metric(s) across "
                     f"{len(self.refs)} points"
                     + ("" if changed_only
                        else f" ({len(self.series)} total)") + ".")
        lines.append("")
        if not series:
            lines.append("_no metric moved in this window_")
            return "\n".join(lines)
        header = "| artifact | metric | " + " | ".join(self.refs) + " |"
        lines.append(header)
        lines.append("|---|---|" + "---:|" * len(self.refs))

        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:g}"

        for (artifact, path), values in sorted(series.items())[:limit]:
            lines.append(f"| {artifact} | `{path}` | "
                         + " | ".join(fmt(v) for v in values) + " |")
        if len(series) > limit:
            lines.append(f"| ... | {len(series) - limit} more | "
                         + " | ".join("" for _ in self.refs) + " |")
        return "\n".join(lines)


def history_report(count: int, artifacts_dir: Union[str, Path] = ".",
                   repo: Union[str, Path, None] = None) -> HistoryReport:
    """Metric series over ``HEAD~count`` .. ``HEAD`` plus the working
    tree, reusing the ``git show`` loader per ref.  Refs that do not
    exist (history shorter than ``count``) are skipped silently so
    shallow repos still get a partial window."""
    if count < 1:
        raise TrendError(f"history window must be >= 1, got {count}")
    repo = repo if repo is not None else artifacts_dir
    points: list[tuple[str, dict[str, dict]]] = []
    for back in range(count, 0, -1):
        ref = f"HEAD~{back}"
        try:
            points.append((ref, load_git_ref(ref, repo=repo)))
        except TrendError:
            continue
    points.append(("HEAD", load_git_ref("HEAD", repo=repo)))
    points.append(("worktree", load_dir(artifacts_dir)))
    report = HistoryReport(refs=[ref for ref, _ in points])
    flat_points = [{name: flatten_results(payload)
                    for name, payload in artifacts.items()}
                   for _, artifacts in points]
    keys = {(name, path)
            for flat in flat_points
            for name, metrics in flat.items()
            for path in metrics}
    for name, path in sorted(keys):
        report.series[(name, path)] = [
            flat.get(name, {}).get(path) for flat in flat_points]
    return report
