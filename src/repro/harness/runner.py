"""Experiment runner: one-call execution of (workload, scheme) pairs.

The paper's evaluation compares the same benchmark under BASE, BASE+SLE,
BASE+SLE+TLR and MCS.  :func:`run` executes one combination and returns a
:class:`RunResult`; :func:`compare_schemes` sweeps a set of schemes with a
shared workload builder (fresh workload per run -- simulated memory is
stateful) and returns results keyed by scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.coherence.memory import ValueStore
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.runtime.program import Workload
from repro.sim.stats import SimStats

WorkloadBuilder = Callable[[], Workload]


@dataclass
class RunResult:
    """Everything one simulation produced."""

    config: SystemConfig
    workload_name: str
    stats: SimStats
    store: ValueStore

    @property
    def cycles(self) -> int:
        """Parallel execution time (the paper's y-axis metric)."""
        return self.stats.total_cycles

    def speedup_over(self, other: "RunResult") -> float:
        """Paper convention: cycles(other) / cycles(self); >1 is faster."""
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles


def run(workload: Workload, config: SystemConfig,
        validate: bool = True) -> RunResult:
    """Execute ``workload`` on a freshly built machine."""
    machine = Machine(config)
    stats = machine.run_workload(workload, validate=validate)
    return RunResult(config=config, workload_name=workload.name,
                     stats=stats, store=machine.store)


def run_scheme(builder: WorkloadBuilder, scheme: SyncScheme,
               config: Optional[SystemConfig] = None,
               validate: bool = True) -> RunResult:
    """Build a fresh workload and run it under ``scheme``."""
    base = config or SystemConfig()
    return run(builder(), base.with_scheme(scheme), validate=validate)


def compare_schemes(builder: WorkloadBuilder,
                    schemes: Iterable[SyncScheme],
                    config: Optional[SystemConfig] = None,
                    validate: bool = True) -> dict[SyncScheme, RunResult]:
    """Run the same benchmark under several schemes."""
    return {scheme: run_scheme(builder, scheme, config, validate)
            for scheme in schemes}
