"""Single-run execution: where a workload meets a machine.

:func:`execute_workload` is the one low-level entry point -- everything
else (the unified API :func:`repro.harness.run`, the parallel sweep
engine, the job-queue service) routes through it.  The old per-style
shims (``run``, ``run_scheme``, ``compare_schemes``) are gone; use
``repro.harness.run(spec, *, jobs=..., timeout=..., cache=...,
validate=...)`` with a :class:`~repro.harness.spec.RunSpec`, a raw
:class:`~repro.runtime.program.Workload`, or a registered experiment
name (see :mod:`repro.harness.spec`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.coherence.memory import ValueStore
from repro.harness.config import SystemConfig
from repro.harness.machine import Machine
from repro.harness.spec import (check_schema, config_from_dict,
                                config_to_dict, stamp_schema)
from repro.obs import MachineMetrics
from repro.runtime.program import Workload
from repro.sim.stats import SimStats


@dataclass
class RunResult:
    """Everything one simulation produced.

    ``seed_used``/``attempts`` record livelock-retry outcomes from the
    sweep engine: a run that needed a seed bump reports the seed it
    actually completed with and how many attempts it took.
    """

    config: SystemConfig
    workload_name: str
    stats: SimStats
    store: ValueStore
    seed_used: Optional[int] = None
    attempts: int = 1
    # Conflict/latency telemetry (repro.obs registry export); None when
    # the run was executed with config.metrics off or loaded from a
    # pre-metrics cache payload.  Deliberately NOT part of
    # result_fingerprint: telemetry describes a run, it is not part of
    # its observable outcome.
    metrics: Optional[dict] = None

    @property
    def cycles(self) -> int:
        """Parallel execution time (the paper's y-axis metric)."""
        return self.stats.total_cycles

    def speedup_over(self, other: "RunResult") -> float:
        """Paper convention: cycles(other) / cycles(self); >1 is faster."""
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    # -- serialization (stable public contract; used by the result
    # cache, the worker boundary, HTTP transport and ``--json``) --------
    def to_dict(self) -> dict:
        return stamp_schema({
            "workload_name": self.workload_name,
            "config": config_to_dict(self.config),
            "stats": self.stats.to_dict(),
            "store": {str(addr): value
                      for addr, value in self.store.snapshot().items()},
            "seed_used": self.seed_used,
            "attempts": self.attempts,
            "metrics": self.metrics,
        })

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        check_schema(data, "RunResult")
        store = ValueStore()
        for addr, value in (data.get("store") or {}).items():
            store.write(int(addr), value)
        return cls(config=config_from_dict(data["config"]),
                   workload_name=data["workload_name"],
                   stats=SimStats.from_dict(data["stats"]),
                   store=store,
                   seed_used=data.get("seed_used"),
                   attempts=data.get("attempts", 1),
                   metrics=data.get("metrics"))


def result_fingerprint(result: RunResult) -> str:
    """Digest of a run's *observable outcome* -- workload name, the full
    statistics image and final memory -- independent of the config that
    produced it.  Two runs with the same fingerprint behaved
    identically; this is the behavior-preservation oracle the policy
    refactor's golden tests check against."""
    payload = {
        "workload": result.workload_name,
        "stats": result.stats.to_dict(),
        "store": {str(addr): value
                  for addr, value in result.store.snapshot().items()},
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def execute_workload(workload: Workload, config: SystemConfig,
                     validate: bool = True) -> RunResult:
    """Execute ``workload`` on a freshly built machine."""
    from repro.obs.profile import LockProfiler

    machine = Machine(config)
    collector = MachineMetrics().attach(machine) if config.metrics else None
    profiler = LockProfiler().attach(machine) if config.metrics else None
    stats = machine.run_workload(workload, validate=validate)
    metrics = None
    if collector is not None:
        if profiler is not None:
            # Aggregate profile families ride the shared registry so
            # they reach the OpenMetrics export and trend gating...
            profiler.publish(collector.registry)
        metrics = collector.finalize(machine)
        if profiler is not None:
            # ...while the full per-lock breakdown travels beside the
            # flat counters.  Neither moves result_fingerprint: metrics
            # are telemetry about a run, not part of its outcome.
            metrics["profile"] = profiler.snapshot()
    return RunResult(config=config, workload_name=workload.name,
                     stats=stats, store=machine.store, metrics=metrics)
