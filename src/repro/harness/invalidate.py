"""Incremental invalidation of committed ``BENCH_*.json`` artifacts.

Every figure/table artifact in the repo root records the knobs that
produced it (workload sizes, processor counts, cpu counts).  Those
knobs are enough to reconstruct the artifact's *cells* -- the
individual :class:`~repro.harness.spec.RunSpec` simulations behind it
-- and every cell has a deterministic fingerprint.  :func:`plan`
rebuilds each artifact's cell list and checks which fingerprints are
missing from the result cache; :func:`regenerate` re-simulates only
those, priming the cache so a subsequent sweep (or a job submitted to
``repro serve``, which shares the same cache) finds everything warm.

This is what makes ``repro serve --regen`` cheap after an incremental
change: a fingerprint-neutral edit re-runs nothing; a bump of
:data:`~repro.harness.spec.FINGERPRINT_VERSION` (or a config change)
re-runs exactly the affected cells.

Artifacts whose cells this module cannot reconstruct (machine-bound
perf measurements, the ablation grids with bespoke config surgery) are
reported as skipped rather than silently ignored.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.harness import parallel
from repro.harness.cache import resolve_cache
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.experiments import APP_SCHEMES, MICRO_SCHEMES, _spec
from repro.harness.spec import RunSpec
from repro.workloads.apps import ALL_APPS


# ----------------------------------------------------------------------
# Per-artifact cell planners: BENCH config knobs -> list[RunSpec]
# ----------------------------------------------------------------------
def _plan_micro_sweep(workload: str, size_key: str, schemes) -> Callable:
    def planner(config: dict, results: dict) -> list[RunSpec]:
        base = SystemConfig()
        return [_spec(workload, base, scheme, n, True,
                      **{size_key: config[size_key]})
                for scheme in schemes
                for n in config["processor_counts"]]
    return planner


def _plan_fig07(config: dict, results: dict) -> list[RunSpec]:
    return [_spec("single-counter", SystemConfig(), SyncScheme.TLR,
                  config["num_cpus"], True,
                  total_increments=config["total_increments"])]


def _plan_fig11(config: dict, results: dict) -> list[RunSpec]:
    base = SystemConfig()
    apps = sorted(results) if results else sorted(ALL_APPS)
    return [_spec(name, base, scheme, config["num_cpus"], True)
            for name in apps for scheme in APP_SCHEMES]


def _plan_coarse_vs_fine(config: dict, results: dict) -> list[RunSpec]:
    base = SystemConfig()
    specs = []
    for coarse in (False, True):
        for scheme in (SyncScheme.BASE, SyncScheme.TLR, SyncScheme.MCS):
            workload = "mp3d-coarse" if coarse else "mp3d"
            specs.append(_spec(workload, base, scheme,
                               config["num_cpus"], True))
    return specs


def _plan_rmw_predictor(config: dict, results: dict) -> list[RunSpec]:
    base = SystemConfig()
    speedups = results.get("speedups_base_over_base_noopt")
    apps = sorted(speedups) if isinstance(speedups, dict) else sorted(
        ALL_APPS)
    specs = []
    for name in apps:
        for enabled in (True, False):
            spec = _spec(name, base, SyncScheme.BASE,
                         config["num_cpus"], True)
            spec.config.spec.rmw_predictor_enabled = enabled
            specs.append(spec)
    return specs


def _plan_profile(config: dict, results: dict) -> list[RunSpec]:
    from repro.harness.spec import SIZE_PARAM
    specs = []
    for policy in config["policies"]:
        for workload in config["workloads"]:
            cfg = SystemConfig(num_cpus=config["num_cpus"],
                               scheme=SyncScheme.TLR).with_policy(policy)
            specs.append(RunSpec(
                workload=workload, config=cfg,
                workload_args={SIZE_PARAM[workload]: config["ops"]}))
    return specs


#: bench name (the artifact's ``"bench"`` field) -> cell planner.
PLANNERS: dict[str, Callable[[dict, dict], list[RunSpec]]] = {
    "fig07_queue": _plan_fig07,
    "fig08_multiple_counter": _plan_micro_sweep(
        "multiple-counter", "total_increments", MICRO_SCHEMES),
    "fig09_single_counter": _plan_micro_sweep(
        "single-counter", "total_increments",
        tuple(MICRO_SCHEMES) + (SyncScheme.TLR_STRICT_TS,)),
    "fig10_linked_list": _plan_micro_sweep(
        "linked-list", "total_ops", MICRO_SCHEMES),
    "fig11_applications": _plan_fig11,
    "profile": _plan_profile,
    "tab_coarse_vs_fine": _plan_coarse_vs_fine,
    "tab_rmw_predictor": _plan_rmw_predictor,
}


@dataclass
class ArtifactPlan:
    """One artifact's invalidation verdict."""

    artifact: str                  # file name, e.g. "BENCH_fig09_...json"
    bench: str
    total: int = 0                 # reconstructable cells
    stale: list[RunSpec] = field(default_factory=list)
    skipped: Optional[str] = None  # reason when cells can't be planned

    @property
    def fresh(self) -> int:
        return self.total - len(self.stale)


def plan(repo: Union[str, Path] = ".", cache=True) -> list[ArtifactPlan]:
    """Reconstruct every plannable artifact's cells and classify each
    as fresh (fingerprint present in the cache) or stale."""
    store = resolve_cache(cache)
    plans: list[ArtifactPlan] = []
    for path in sorted(Path(repo).glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            plans.append(ArtifactPlan(artifact=path.name, bench="?",
                                      skipped=f"unreadable: {exc}"))
            continue
        bench = payload.get("bench", "?")
        planner = PLANNERS.get(bench)
        if planner is None:
            reason = ("machine-bound measurement" if bench == "perf"
                      else "no cell planner")
            plans.append(ArtifactPlan(artifact=path.name, bench=bench,
                                      skipped=reason))
            continue
        specs = planner(payload.get("config") or {},
                        payload.get("results") or {})
        stale = [spec for spec in specs
                 if store is None or store.get(spec.fingerprint()) is None]
        plans.append(ArtifactPlan(artifact=path.name, bench=bench,
                                  total=len(specs), stale=stale))
    return plans


def render_plan(plans: list[ArtifactPlan]) -> str:
    """Human-readable invalidation report."""
    lines = [f"{'artifact':<42} {'cells':>6} {'fresh':>6} {'stale':>6}"]
    for entry in plans:
        if entry.skipped:
            lines.append(f"{entry.artifact:<42} "
                         f"{'skipped (' + entry.skipped + ')'}")
        else:
            lines.append(f"{entry.artifact:<42} {entry.total:>6} "
                         f"{entry.fresh:>6} {len(entry.stale):>6}")
    total_stale = sum(len(entry.stale) for entry in plans)
    lines.append(f"stale cells to regenerate: {total_stale}")
    return "\n".join(lines)


def regenerate(plans: list[ArtifactPlan], *, jobs: int = 1,
               timeout: Optional[float] = None,
               retries: Optional[int] = None,
               cache=True, progress=None) -> dict:
    """Re-simulate every stale cell (deduplicated across artifacts --
    figures share points), priming the cache.  Returns a summary dict.
    """
    store = resolve_cache(cache)
    specs: list[RunSpec] = []
    seen: set[str] = set()
    for entry in plans:
        for spec in entry.stale:
            fingerprint = spec.fingerprint()
            if fingerprint not in seen:
                seen.add(fingerprint)
                specs.append(spec)
    started = time.perf_counter()
    if specs:
        _, telemetry = parallel.execute(specs, jobs=jobs, timeout=timeout,
                                        retries=retries, cache=store,
                                        progress=progress)
        simulated, failures = telemetry.simulated, telemetry.failures
    else:
        simulated = failures = 0
    return {"artifacts": sum(1 for entry in plans if not entry.skipped),
            "stale": len(specs),
            "simulated": simulated,
            "failures": failures,
            "wall_seconds": time.perf_counter() - started}
