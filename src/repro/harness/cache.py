"""On-disk result cache for the sweep engine.

Successful runs are stored as one JSON file per
:meth:`~repro.harness.spec.RunSpec.fingerprint` under a cache root
(``$REPRO_CACHE_DIR``, default ``~/.cache/repro-tlr``).  Re-running a
figure then only simulates configurations whose fingerprint changed --
a different workload size, scheme, processor count, seed, or any other
:class:`~repro.harness.config.SystemConfig` field.

Only *successful* runs are cached: a livelocked or timed-out run may
succeed under a larger wall-clock ``timeout``, which is deliberately
not part of the fingerprint.

Entries live under a per-schema-version directory
(``<root>/v<FINGERPRINT_VERSION>/<fp[:2]>/<fp>.json``): bumping
:data:`~repro.harness.spec.FINGERPRINT_VERSION` changes every
fingerprint, so files written under an older version can never be hit
again and would otherwise accumulate forever.  :meth:`ResultCache.prune`
removes them; the first miss of a cache instance also prunes once, so
long-lived cache directories stay clean without anyone running the
command (``repro cache --prune``) by hand.

Entries are written atomically (temp file + rename) so concurrent
sweeps sharing a cache directory never observe torn JSON; unreadable
or stale-schema entries are treated as misses and dropped.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.harness.spec import FINGERPRINT_VERSION

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Root-level file holding hit/miss counters persisted across processes
#: (``repro cache --stats`` reads it; the job service merges into it on
#: shutdown).  Not an entry: prune/clear leave it alone.
STATS_FILE = "stats.json"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-tlr``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tlr"


class ResultCache:
    """Fingerprint-keyed store of serialized run results."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version_dir = self.root / f"v{FINGERPRINT_VERSION}"
        self.hits = 0
        self.misses = 0
        self._pruned = False

    def _path(self, fingerprint: str) -> Path:
        # Two-level fan-out keeps directories small on big sweeps.
        return self.version_dir / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[dict]:
        """The cached payload for ``fingerprint``, or ``None``.

        A corrupt or undecodable entry counts as a miss and is removed.
        The first miss also prunes superseded-version entries once per
        cache instance (cheap when there is nothing to do).
        """
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            self._prune_once()
            return None
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            self.invalidate(fingerprint)
            return None
        self.hits += 1
        return payload

    def put(self, fingerprint: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``fingerprint``."""
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; returns whether anything was removed."""
        try:
            self._path(fingerprint).unlink()
            return True
        except OSError:
            return False

    def _prune_once(self) -> None:
        if not self._pruned:
            self._pruned = True
            self.prune()

    def prune(self, ttl: Optional[float] = None) -> int:
        """Remove entries that can never be hit again: files under
        superseded ``v<N>`` directories and entries from the original
        unversioned layout (``<root>/<xx>/<fp>.json``).  With ``ttl``
        (seconds), *current-version* entries older than that are evicted
        too, oldest first by modification time (``put`` rewrites the
        file, so the mtime is the last time the entry was produced --
        TTL eviction ages out results nobody regenerates).  Returns the
        number of entry files removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for child in list(self.root.iterdir()):
            if child == self.version_dir or not child.is_dir():
                continue
            stale = (child.name.startswith("v")
                     or len(child.name) == 2)  # pre-versioning fan-out
            if not stale:
                continue
            removed += sum(1 for _ in child.rglob("*.json"))
            shutil.rmtree(child, ignore_errors=True)
        if ttl is not None and self.version_dir.is_dir():
            import time
            cutoff = time.time() - ttl
            aged = []
            for path in self.version_dir.glob("*/*.json"):
                try:
                    mtime = path.stat().st_mtime
                except OSError:
                    continue
                if mtime < cutoff:
                    aged.append((mtime, path))
            for _mtime, path in sorted(aged):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> int:
        """Remove every entry (all schema versions); returns the number
        removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.rglob("*.json"):
            if path == self._stats_path():
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        """Entries usable under the current fingerprint schema."""
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*/*.json"))

    # -- statistics -----------------------------------------------------
    def _stats_path(self) -> Path:
        return self.root / STATS_FILE

    def _load_counters(self) -> dict:
        try:
            with open(self._stats_path(), "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        return data if isinstance(data, dict) else {}

    def persist_counters(self) -> dict:
        """Merge this instance's session hit/miss counters into
        ``<root>/stats.json`` (atomic replace) and reset them, so
        repeated persists never double-count.  Lifetime counters are
        advisory: two processes persisting at the same instant may lose
        an increment, which is acceptable for statistics."""
        merged = self._load_counters()
        merged["hits"] = merged.get("hits", 0) + self.hits
        merged["misses"] = merged.get("misses", 0) + self.misses
        self.hits = 0
        self.misses = 0
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(merged, fh)
            os.replace(tmp, self._stats_path())
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return merged

    def stats(self) -> dict:
        """Cache footprint and counters: current-version entry count and
        byte size, lifetime hit/miss counters from ``stats.json``, and
        this instance's not-yet-persisted session counters."""
        entries = 0
        size = 0
        if self.version_dir.is_dir():
            for path in self.version_dir.glob("*/*.json"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        persisted = self._load_counters()
        return {
            "root": str(self.root),
            "fingerprint_version": FINGERPRINT_VERSION,
            "entries": entries,
            "bytes": size,
            "hits": persisted.get("hits", 0),
            "misses": persisted.get("misses", 0),
            "session_hits": self.hits,
            "session_misses": self.misses,
        }


def resolve_cache(cache) -> Optional[ResultCache]:
    """Normalize the public ``cache=`` argument.

    ``None``/``False`` disable caching, ``True`` uses the default
    directory, a path selects a directory, and a :class:`ResultCache`
    is used as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
