"""Post-run analysis utilities.

Answers the questions a performance engineer asks after a run:

* *why* did transactions restart (:func:`restart_reasons`);
* *where* are the conflicts -- which cache lines attract deferrals,
  losses and probes (:func:`line_conflict_profile`, built on the
  :class:`~repro.sim.trace.Tracer`);
* *how big* are the transactions this workload produces
  (:class:`CommitLog` and its footprint histogram) -- the number to
  compare against :func:`repro.tlr.guarantee.guaranteed_footprint`.

All of it is observation-only: attach before the run, read after.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cpu.isa import line_of
from repro.sim.stats import SimStats
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.machine import Machine


def restart_reasons(stats: SimStats) -> Counter:
    """Aggregate restart-reason histogram across processors."""
    total: Counter = Counter()
    for cpu in stats.cpus:
        total.update(cpu.restart_reasons)
    return total


def line_conflict_profile(tracer: Tracer,
                          top: Optional[int] = None) -> list[tuple[int, Counter]]:
    """Per-line conflict activity, hottest first.

    Returns ``[(line, Counter({'defer': n, 'loss': m, ...})), ...]``
    for the lines that saw any deferral, loss, probe or NACK traffic.
    """
    per_line: dict[int, Counter] = {}
    for event in tracer.filter(kinds=["defer", "loss", "probe", "nack",
                                      "service"]):
        if event.line is None:
            continue
        per_line.setdefault(event.line, Counter())[event.kind] += 1
    ranked = sorted(per_line.items(),
                    key=lambda item: -sum(item[1].values()))
    return ranked[:top] if top is not None else ranked


@dataclass
class CommitLog:
    """Captures every transaction commit (time, cpu, write set)."""

    entries: list[tuple[int, int, dict[int, int]]] = field(
        default_factory=list)

    @classmethod
    def attach(cls, machine: "Machine") -> "CommitLog":
        log = cls()
        for processor in machine.processors:
            processor.commit_listeners.append(
                lambda t, cpu, wb: log.entries.append((t, cpu, wb)))
        return log

    def footprint_histogram(self) -> Counter:
        """Distribution of committed write-set sizes in unique lines."""
        histogram: Counter = Counter()
        for _, _, wb in self.entries:
            histogram[len({line_of(addr) for addr in wb})] += 1
        return histogram

    def per_cpu_commits(self) -> Counter:
        counts: Counter = Counter()
        for _, cpu, _ in self.entries:
            counts[cpu] += 1
        return counts

    def max_written_lines(self) -> int:
        histogram = self.footprint_histogram()
        return max(histogram) if histogram else 0


def summarize(machine: "Machine", tracer: Optional[Tracer] = None,
              commit_log: Optional[CommitLog] = None) -> str:
    """A one-screen post-mortem of a run."""
    stats = machine.stats
    lines = [f"cycles: {stats.total_cycles}",
             f"bus transactions: {stats.bus_transactions}",
             f"restarts: {stats.restarts} "
             f"{dict(restart_reasons(stats))}",
             f"elisions committed: {stats.elisions_committed}",
             f"deferred: {stats.total('requests_deferred')}  "
             f"markers: {stats.total('markers_sent')}  "
             f"probes: {stats.total('probes_sent')}"]
    if commit_log is not None:
        lines.append(
            f"commit footprints (lines -> count): "
            f"{dict(sorted(commit_log.footprint_histogram().items()))}")
    if tracer is not None:
        hottest = line_conflict_profile(tracer, top=3)
        rendered = ", ".join(f"{line:#x}:{sum(c.values())}"
                             for line, c in hottest)
        lines.append(f"hottest conflict lines: {rendered or 'none'}")
    return "\n".join(lines)
