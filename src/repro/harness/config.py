"""System configuration.

Defaults mirror the paper's Table 2 (simulated machine parameters) where the
parameter is meaningful in our timing-approximate model, scaled where noted:

* 1 GHz core, 1-cycle L1 data cache access, 64-byte lines;
* 128-KByte 4-way L1 data cache (scaled down by default so workloads with
  scaled iteration counts still exercise capacity effects -- the paper's
  mp3d result depends on locks overflowing the L1);
* Sun Gigaplane-like MOESI split-transaction broadcast: 20-cycle snoop
  latency, 120 outstanding transactions, 20-cycle point-to-point pipelined
  data network, 12-cycle L2, 70-cycle memory;
* 64-entry write buffer (speculative buffering limit for SLE/TLR);
* 128-entry PC-indexed read-modify-write predictor;
* 64-entry silent store-pair predictor, elision (nesting) depth 8.

``SyncScheme`` names the paper's four evaluated configurations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class SyncScheme(enum.Enum):
    """The four configurations of the paper's Section 5."""

    BASE = "BASE"                      # test&test&set, no speculation
    SLE = "BASE+SLE"                   # lock elision, fall back on conflict
    TLR = "BASE+SLE+TLR"               # this paper
    TLR_STRICT_TS = "BASE+SLE+TLR-strict-ts"  # no single-block relaxation
    MCS = "MCS"                        # software queue locks

    @property
    def speculates(self) -> bool:
        return self in (SyncScheme.SLE, SyncScheme.TLR,
                        SyncScheme.TLR_STRICT_TS)

    @property
    def is_tlr(self) -> bool:
        return self in (SyncScheme.TLR, SyncScheme.TLR_STRICT_TS)


@dataclass
class CacheConfig:
    """Geometry and timing of the per-processor L1 data cache."""

    size_bytes: int = 32 * 1024     # paper: 128 KB; scaled (see module doc)
    assoc: int = 4
    line_bytes: int = 64
    hit_latency: int = 1
    victim_entries: int = 16        # paper Section 4's worked example

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError("cache size must be a whole number of sets")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")


@dataclass
class BusConfig:
    """Ordered broadcast address bus (Gigaplane-like)."""

    snoop_latency: int = 20         # request visible to all snoopers
    occupancy: int = 2              # cycles of bus occupancy per transaction
    max_outstanding: int = 120


@dataclass
class DirectoryConfig:
    """Directory-based interconnect (the alternative protocol family the
    paper's Section 3 allows).  Requests travel an unordered network to
    the line's home directory; each home serializes its own requests."""

    request_latency: int = 20       # network hop to the home node
    processing_latency: int = 10    # directory lookup/update
    home_occupancy: int = 2         # per-home throughput bound
    num_homes: int = 16             # line-interleaved home nodes
    max_outstanding: int = 1 << 30  # no global cap (no shared bus)
    # Response/NACK delivery latency (named for Bus compatibility).
    snoop_latency: int = 20


@dataclass
class MemoryConfig:
    """Memory-side latencies (shared L2 + DRAM)."""

    l2_latency: int = 12
    dram_latency: int = 70
    data_latency: int = 20          # point-to-point data network hop
    # Shared-L2 tag capacity in lines (0 = unbounded; the paper's 4 MB
    # L2 = 65536 lines comfortably exceeds scaled working sets).
    l2_capacity_lines: int = 0
    # Optional data-network bandwidth model: minimum cycles between
    # message *deliveries* (0 = unlimited, the paper's pipelined network;
    # >0 serializes deliveries at that rate, exposing data-network
    # contention as a sensitivity knob).
    data_bandwidth_interval: int = 0


@dataclass
class SpeculationConfig:
    """SLE/TLR hardware parameters."""

    write_buffer_entries: int = 64      # unique speculative lines
    elision_depth: int = 8              # nested lock elisions trackable
    store_pair_predictor_entries: int = 64
    rmw_predictor_entries: int = 128
    rmw_predictor_enabled: bool = True
    # SLE without TLR retries speculation this many times before acquiring
    # the lock (the SLE paper restarts once then falls back).
    sle_restart_threshold: int = 1
    # Section 3.1.2: after this many upgrade-induced violations on a line,
    # fetch it exclusive up-front so external requests become deferrable.
    read_escalation_threshold: int = 2
    # Section 3.2: relax strict timestamp order when only a single block is
    # under conflict (deadlock impossible).  Off for TLR-strict-ts.
    single_block_relaxation: bool = True
    # Ownership-retention policy (Section 3): "defer" buffers conflicting
    # requests in the deferred input queue and answers them at commit
    # (needs no protocol support -- the paper's choice); "nack" refuses
    # the request with a negative acknowledgement at the snoop, forcing
    # the requester to retry (needs NACK support in the protocol).
    # Legacy knob: configs that set only retention_policy="nack" are
    # normalized onto contention_policy="nack" below.
    retention_policy: str = "defer"
    # Contention-management policy (repro.policies): how transactional
    # conflicts are resolved.  "timestamp" is the paper's TLR policy
    # (timestamp-ordered deferral, the behavior-preserving default);
    # "nack" is timestamp order retained by NACKs (Section 3's
    # alternative); "requester-wins" is TSX-like best-effort HTM with an
    # abort-count fallback to real lock acquisition; "backoff" is
    # Polka-style exponential backoff with priority accumulation.
    contention_policy: str = "timestamp"
    # Abort-count lock fallback for "requester-wins": after this many
    # failed speculation attempts the lock is acquired for real.  None
    # disables the fallback (exposing the Figure 2 livelock).
    contention_fallback_k: int | None = 4
    # Cycles a NACKed requester waits before re-arbitrating for the bus.
    nack_retry_delay: int = 50
    # Misspeculation redirection penalty (pipeline flush + refetch), and
    # the additional per-consecutive-restart backoff (capped at 15
    # steps): losers wait out the winner instead of re-entering the
    # chain mid-flight.
    misspec_penalty: int = 10
    restart_backoff_step: int = 20
    # How to handle conflicting requests from outside any transaction
    # (Section 2.2 describes both options): "defer" treats them as having
    # the latest timestamp and orders them after the transaction;
    # "abort" triggers a misspeculation (the conservative data-race
    # reaction).
    untimestamped_policy: str = "defer"

    #: Valid contention_policy values; mirrors repro.policies.POLICY_NAMES
    #: (which cannot be imported here without a cycle -- a unit test
    #: keeps the two in sync).
    KNOWN_POLICIES = ("timestamp", "nack", "requester-wins", "backoff")

    def __post_init__(self) -> None:
        if self.retention_policy not in ("defer", "nack"):
            raise ValueError(f"bad retention_policy {self.retention_policy}")
        if self.untimestamped_policy not in ("defer", "abort"):
            raise ValueError(
                f"bad untimestamped_policy {self.untimestamped_policy}")
        if self.contention_policy not in self.KNOWN_POLICIES:
            raise ValueError(
                f"bad contention_policy {self.contention_policy!r}; "
                f"known: {list(self.KNOWN_POLICIES)}")
        if self.contention_fallback_k is not None \
                and self.contention_fallback_k < 1:
            raise ValueError("contention_fallback_k must be >= 1 or None")
        # Legacy spelling: retention_policy="nack" alone selects the
        # NACK-retention policy through the new interface.
        if (self.retention_policy == "nack"
                and self.contention_policy == "timestamp"):
            self.contention_policy = "nack"


@dataclass
class SchedConfig:
    """Preemptive OS-scheduler knobs (see :mod:`repro.sched`).

    The default (``scheduler="none"``) disables the subsystem entirely:
    no engine is constructed, no timer events are scheduled, and runs
    stay bit-identical to the golden fingerprints.  With a scheduler
    selected, N workload threads multiplex over
    ``M = num_cpus // threads_per_cpu`` CPU slots; a preempted thread's
    in-flight elision is aborted (the paper's context-switch stress).
    """

    #: "none" (off), or one of repro.sched.core.KNOWN_SCHEDULERS:
    #: "rr" (round-robin), "mlfq", "cfs".
    scheduler: str = "none"
    #: Timer-interrupt period in cycles (also the base timeslice).
    quantum: int = 2_000
    #: Hardware thread contexts sharing one CPU slot (1 = no
    #: multiplexing; 2 = half the contexts run at any instant, ...).
    threads_per_cpu: int = 1
    #: Allow slots to steal ready threads homed elsewhere.
    migrate: bool = False
    #: Cycles charged before a non-initial switch-in resumes.
    context_switch_penalty: int = 30
    #: Extra cycles when the resume lands on a different slot.
    migration_penalty: int = 50

    #: Mirrors repro.sched.core.KNOWN_SCHEDULERS plus the off switch (a
    #: unit test keeps the two in sync; importing would be a cycle).
    KNOWN_SCHEDULERS = ("none", "rr", "mlfq", "cfs")

    @property
    def enabled(self) -> bool:
        return self.scheduler != "none"

    def __post_init__(self) -> None:
        if self.scheduler not in self.KNOWN_SCHEDULERS:
            raise ValueError(f"bad scheduler {self.scheduler!r}; "
                             f"known: {list(self.KNOWN_SCHEDULERS)}")
        if self.quantum < 1:
            raise ValueError("quantum must be >= 1 cycle")
        if self.threads_per_cpu < 1:
            raise ValueError("threads_per_cpu must be >= 1")
        if self.context_switch_penalty < 0 or self.migration_penalty < 0:
            raise ValueError("switch/migration penalties must be >= 0")


@dataclass
class SystemConfig:
    """Everything needed to build a simulated machine."""

    num_cpus: int = 16
    scheme: SyncScheme = SyncScheme.TLR
    cache: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    # Coherence substrate: "snoop" (Gigaplane-like ordered broadcast,
    # the paper's evaluation machine) or "directory" (unordered network
    # with line-interleaved home directories).
    protocol: str = "snoop"
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    spec: SpeculationConfig = field(default_factory=SpeculationConfig)
    seed: int = 0
    latency_jitter: int = 2
    # Collect conflict/latency telemetry (repro.obs.MachineMetrics) into
    # RunResult.metrics.  Collection is purely observational -- the
    # golden-fingerprint tests pin metrics-on and metrics-off runs
    # bit-identical -- so it defaults on; turn off to shave the hook
    # overhead from very large sweeps.
    metrics: bool = True
    # Schedule-exploration chaos: when > 0, same-cycle events are
    # reordered by a seeded random priority drawn from
    # ``0..schedule_chaos`` at each kernel choice point (see
    # ``Simulator.set_choice_hook``).  0 keeps the strict-FIFO default.
    # Used by ``repro.verify`` to widen interleaving coverage per seed.
    schedule_chaos: int = 0
    max_cycles: int | None = 500_000_000
    # Preemptive scheduling overlay (repro.sched); off by default so
    # existing configs keep one pinned thread per processor.
    sched: SchedConfig = field(default_factory=SchedConfig)
    # Event-core backend: "reference" is the original single-event heapq
    # dispatch loop, kept verbatim; "batched" is the cycle-batched
    # calendar queue plus the flat-array coherence fast path
    # (repro.sim.fastpath).  The two are bit-identical -- same dispatch
    # order, same fingerprints -- which the cross-backend equivalence
    # suite pins; the choice is purely a throughput knob.  The
    # REPRO_KERNEL_BACKEND environment variable overrides this field at
    # machine-build time for whole-process A/B runs (see
    # repro.sim.kernel.resolve_backend).
    kernel_backend: str = "reference"

    #: Valid kernel_backend values; mirrors repro.sim.kernel.KNOWN_BACKENDS
    #: (a unit test keeps the two in sync -- importing the kernel here
    #: would make the config module depend on the simulator).
    KNOWN_BACKENDS = ("reference", "batched")

    def with_scheduler(self, scheduler: str, **knobs) -> "SystemConfig":
        """A copy of this config under a different scheduler setup."""
        return replace(self, sched=replace(self.sched, scheduler=scheduler,
                                           **knobs))

    def with_backend(self, backend: str) -> "SystemConfig":
        """A copy of this config under a different kernel backend."""
        return replace(self, kernel_backend=backend)

    def with_scheme(self, scheme: SyncScheme) -> "SystemConfig":
        """A copy of this config under a different sync scheme."""
        cfg = replace(self, scheme=scheme,
                      spec=replace(self.spec))
        if scheme is SyncScheme.TLR_STRICT_TS:
            cfg.spec.single_block_relaxation = False
        return cfg

    def with_policy(self, policy: str, fallback_k=...) -> "SystemConfig":
        """A copy of this config under a different contention policy.

        ``retention_policy`` is set consistently (it is the legacy
        spelling of the nack-vs-defer retention choice), so round trips
        through ``with_policy`` never resurrect a stale value.
        """
        spec = replace(self.spec, contention_policy=policy,
                       retention_policy=("nack" if policy == "nack"
                                         else "defer"))
        if fallback_k is not ...:
            spec = replace(spec, contention_fallback_k=fallback_k)
        return replace(self, spec=spec)

    def __post_init__(self) -> None:
        if self.num_cpus < 1:
            raise ValueError("need at least one processor")
        if self.protocol not in ("snoop", "directory"):
            raise ValueError(f"bad protocol {self.protocol}")
        if self.kernel_backend not in self.KNOWN_BACKENDS:
            raise ValueError(
                f"bad kernel_backend {self.kernel_backend!r}; "
                f"known: {list(self.KNOWN_BACKENDS)}")
        if (self.scheme is SyncScheme.TLR_STRICT_TS
                and self.spec.single_block_relaxation):
            self.spec = replace(self.spec, single_block_relaxation=False)
