"""Machine builder: wires the simulated multiprocessor together.

One :class:`Machine` is one simulated run: a fresh kernel, bus, memory
controller, value store, and per-CPU cache controllers and cores, built
from a :class:`SystemConfig`.  The lock implementation handed to thread
environments follows the configured scheme -- test&test&set for
BASE/SLE/TLR (same "executable", different hardware behaviour, as in the
paper) or MCS queue locks.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.bus import Bus
from repro.coherence.directory_net import DirectoryInterconnect
from repro.coherence.controller import CacheController
from repro.coherence.datanet import DataNetwork
from repro.coherence.memory import MemoryController, ValueStore
from repro.cpu.processor import Processor
from repro.harness.config import SyncScheme, SystemConfig
from repro.runtime.env import ThreadEnv
from repro.runtime.program import ValidationError, Workload
from repro.sim.fastpath import FastProcessor
from repro.sim.kernel import BatchedSimulator, Simulator, resolve_backend
from repro.sim.rng import LatencyPerturber, RandomStreams
from repro.sim.stats import SimStats
from repro.sync.locks import TestAndTestAndSetLock
from repro.sync.mcs import McsLock, QnodeAllocator
from repro.workloads.common import AddressSpace


class Machine:
    """A fully-wired simulated multiprocessor."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.streams = RandomStreams(config.seed)
        self.stats = SimStats()
        # Event-core backend (config knob, overridable by the
        # REPRO_KERNEL_BACKEND environment variable).  Both backends are
        # bit-identical -- pinned by the cross-backend equivalence suite
        # -- so this only selects the dispatch machinery, never the
        # simulated behaviour.
        self.kernel_backend = resolve_backend(config.kernel_backend)
        if self.kernel_backend == "batched":
            self.sim = BatchedSimulator(max_cycles=config.max_cycles)
        else:
            self.sim = Simulator(max_cycles=config.max_cycles)
        if config.schedule_chaos > 0:
            # Schedule-exploration mode: perturb same-cycle event order
            # with a seeded random priority (see Simulator.set_choice_hook).
            chaos_rng = self.streams.stream("choice")
            chaos = config.schedule_chaos
            self.sim.set_choice_hook(
                lambda label: chaos_rng.randint(0, chaos))
        perturber = LatencyPerturber(self.streams.stream("latency"),
                                     config.latency_jitter)
        if config.protocol == "directory":
            self.bus = DirectoryInterconnect(self.sim, config.directory,
                                             self.stats, perturber)
        else:
            self.bus = Bus(self.sim, config.bus, self.stats)
        self.datanet = DataNetwork(self.sim, config.memory, self.stats,
                                   perturber)
        self.memory = MemoryController(
            self.sim, config.memory, self.stats, perturber,
            l2_capacity_lines=config.memory.l2_capacity_lines)
        self.bus.memory = self.memory
        self.bus.deliver_data = self._deliver_data
        self.store = ValueStore()
        self.controllers: list[CacheController] = []
        self.processors: list[Processor] = []
        self.envs: list[ThreadEnv] = []
        # Preemptive-scheduler overlay (repro.sched): constructed inside
        # run_workload when config.sched is enabled, None otherwise.
        # Observers (the flight recorder) append (time, kind, slot,
        # thread) callbacks to sched_listeners at attach time; with the
        # scheduler off nothing ever calls them.
        self.sched_engine = None
        self.sched_listeners: list = []
        # The batched backend pairs the calendar-queue kernel with the
        # flat-array L1 fast path; both specialisations are pinned
        # bit-identical to the reference by the equivalence suite.
        processor_cls = (FastProcessor if self.kernel_backend == "batched"
                         else Processor)
        for cpu_id in range(config.num_cpus):
            controller = CacheController(cpu_id, self.sim, self.bus,
                                         self.datanet, config,
                                         self.stats.cpu(cpu_id))
            processor = processor_cls(cpu_id, self.sim, controller,
                                      self.store, config,
                                      self.stats.cpu(cpu_id))
            self.controllers.append(controller)
            self.processors.append(processor)

    def dump_state(self) -> str:
        """A human-readable snapshot of every controller's wait state --
        invaluable when a protocol bug shows up as a drained event queue."""
        lines = [f"t={self.sim.now}"]
        for ctl in self.controllers:
            mshr_bits = []
            for mshr in ctl.mshrs:
                succ = ",".join(repr(s) for s in mshr.successors)
                mshr_bits.append(
                    f"{mshr.request!r} ordered={mshr.ordered} "
                    f"pass={mshr.pass_through} succ=[{succ}] "
                    f"upstream={mshr.upstream}")
            chains = {hex(k): (v.upstream, v.pending_probes)
                      for k, v in ctl.chains.items()}
            lines.append(
                f"cpu{ctl.cpu_id}: spec={ctl.speculating} ts={ctl.current_ts} "
                f"deferred={[repr(e.request) for e in ctl.deferred._entries]} "
                f"mshrs=[{'; '.join(mshr_bits)}] chains={chains}")
        return "\n".join(lines)

    def _deliver_data(self, request, from_node: int) -> None:
        target = self.controllers[request.requester]
        label = f"data {request!r}" if self.sim.verbose_labels else "data"
        self.datanet.send(target.handle_data, request, label=label)

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------
    def _lock_api(self, space: Optional[AddressSpace]):
        if self.config.scheme is SyncScheme.MCS:
            if space is None:
                space = AddressSpace(base_line=1 << 20)
            allocator = QnodeAllocator(space.alloc_line)
            return McsLock(allocator)
        return TestAndTestAndSetLock()

    def run_workload(self, workload: Workload,
                     validate: bool = True) -> SimStats:
        """Execute all of the workload's threads to completion.

        Threads beyond ``num_cpus`` are rejected: every thread keeps a
        hardware context (cache, write buffer, speculation state).  To
        run more threads than *CPUs*, enable ``config.sched`` -- the
        preemptive overlay multiplexes the contexts over
        ``num_cpus // threads_per_cpu`` slots, preempting (and thereby
        aborting the elision of) whoever holds a slot too long.
        """
        if workload.num_threads > self.config.num_cpus:
            raise ValueError(
                f"{workload.num_threads} threads > {self.config.num_cpus} "
                "processors")
        lock_api = self._lock_api(workload.meta.get("space"))
        stagger = self.streams.stream("stagger")
        self.envs.clear()
        for cpu_id, factory in enumerate(workload.threads):
            env = ThreadEnv(self.processors[cpu_id], lock_api,
                            num_cpus=self.config.num_cpus,
                            rng=self.streams.stream(f"thread{cpu_id}"))
            self.envs.append(env)
            self.processors[cpu_id].run_program(
                factory(env), start_delay=stagger.randint(0, 50))
        if self.config.sched.enabled:
            # Lazy import: the overlay is a leaf the pinned hot path
            # (scheduler off, the golden-fingerprint mode) never needs.
            from repro.sched import SchedEngine
            self.sched_engine = SchedEngine(self, workload.num_threads)
            self.sched_engine.start()
        self.sim.run()
        self.stats.total_cycles = max(
            (self.stats.cpu(i).finish_time
             for i in range(workload.num_threads)), default=self.sim.now)
        if validate:
            try:
                workload.check(self.store)
            except AssertionError as exc:
                raise ValidationError(
                    f"workload {workload.name!r} failed functional "
                    f"validation under {self.config.scheme.value}: {exc}"
                ) from exc
        return self.stats
