"""Ordered broadcast address bus (Gigaplane-like, split-transaction).

The bus serializes address transactions: requests arbitrate FIFO, each
grant occupies the bus for a configured number of cycles (bandwidth), and
the transaction reaches its *global order point* a snoop latency after the
grant.  Ordering and data delivery are decoupled (split transactions): at
the order point ownership changes hands and invalidations take effect, but
data may arrive an arbitrary time later -- which is precisely the
request-response decoupling that creates the coherence chains of the
paper's Section 3.1.1.

``LineDirectory`` is the bus-order view of each line: who the current
order-owner is and who holds shared copies.  A real Gigaplane computes
this distributively from combined snoop responses; centralizing it at the
ordering point is behaviourally equivalent and is how the simulator stays
honest about *which* cache must supply data (the order-owner at order
time, whether or not it has the data yet).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.coherence.messages import MEMORY, BusRequest, ReqKind
from repro.coherence.states import State
from repro.harness.config import BusConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import SimStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coherence.controller import CacheController
    from repro.coherence.memory import MemoryController


class LineDirectory:
    """Order-point bookkeeping: owner and sharer set per line."""

    def __init__(self):
        self._owner: dict[int, int] = {}
        self._sharers: dict[int, set[int]] = {}

    def owner(self, line: int) -> int:
        return self._owner.get(line, MEMORY)

    def set_owner(self, line: int, node: int) -> None:
        if node == MEMORY:
            self._owner.pop(line, None)
        else:
            self._owner[line] = node

    def sharers(self, line: int) -> set[int]:
        # Open-coded setdefault: the default set() argument would be
        # allocated on every call, hit or miss.
        s = self._sharers.get(line)
        if s is None:
            s = self._sharers[line] = set()
        return s

    def add_sharer(self, line: int, node: int) -> None:
        self.sharers(line).add(node)

    def set_sharers(self, line: int, nodes: set[int]) -> None:
        self._sharers[line] = set(nodes)

    def remove_sharer(self, line: int, node: int) -> None:
        self.sharers(line).discard(node)


class Bus:
    """The ordered broadcast address network."""

    def __init__(self, sim: Simulator, config: BusConfig, stats: SimStats):
        self.sim = sim
        self.config = config
        self.stats = stats
        self.directory = LineDirectory()
        self.controllers: dict[int, "CacheController"] = {}
        self.memory: Optional["MemoryController"] = None
        self.deliver_data: Optional[
            Callable[[BusRequest, int], None]] = None  # set by machine
        self._queue: deque[BusRequest] = deque()
        self._cancelled: set[int] = set()
        self._next_grant_time = 0
        self._outstanding = 0
        self._granting = False
        # Arbitration constants, hoisted out of the per-transaction pump
        # and grant paths.  The directory interconnect reuses this
        # constructor with a DirectoryConfig, which provides only the
        # attributes its overridden issue path touches -- hence getattr.
        self._max_outstanding = config.max_outstanding
        self._occupancy = getattr(config, "occupancy", 0)
        self._snoop_latency = getattr(config, "snoop_latency", 0)
        # Bound-method dispatch for the order point, built once instead
        # of per transaction.
        self._order_handlers = {
            ReqKind.GETS: self._order_gets,
            ReqKind.GETX: self._order_getx,
            ReqKind.UPG: self._order_upg,
            ReqKind.WB: self._order_wb,
        }

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, controller: "CacheController") -> None:
        self.controllers[controller.cpu_id] = controller

    # ------------------------------------------------------------------
    # Issue / cancel / complete
    # ------------------------------------------------------------------
    def issue(self, request: BusRequest) -> None:
        """Queue a request for arbitration."""
        self._queue.append(request)
        self._pump()

    def cancel(self, request: BusRequest) -> None:
        """Withdraw a queued request (used for writebacks that raced with
        an incoming forward).  No-op once the request has been ordered."""
        if request.order_time is None:
            self._cancelled.add(request.req_id)

    def complete(self, request: BusRequest) -> None:
        """The requester signals the transaction fully done (data home)."""
        self._outstanding -= 1
        self._pump()

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._granting or not self._queue:
            return
        if self._outstanding >= self._max_outstanding:
            return
        self._granting = True
        delay = self._next_grant_time - self.sim.now
        if delay < 0:
            delay = 0
        self.sim.schedule(delay, self._grant, label="bus-grant")

    def _grant(self) -> None:
        self._granting = False
        while self._queue and self._queue[0].req_id in self._cancelled:
            self._cancelled.discard(self._queue[0].req_id)
            self._queue.popleft()
        if not self._queue:
            return
        if self._outstanding >= self._max_outstanding:
            return
        request = self._queue.popleft()
        self._outstanding += 1
        occupancy = self._occupancy
        stats = self.stats
        stats.bus_transactions += 1
        stats.bus_busy_cycles += occupancy
        self._next_grant_time = self.sim.now + occupancy
        label = (f"bus-order {request!r}" if self.sim.verbose_labels
                 else "bus-order")
        self.sim.schedule(self._snoop_latency, self._order, request,
                          label=label)
        self._pump()

    # ------------------------------------------------------------------
    # The global order point
    # ------------------------------------------------------------------
    def _order(self, request: BusRequest) -> None:
        request.order_time = self.sim.now
        self._order_handlers[request.kind](request)

    def _nacked(self, request: BusRequest) -> bool:
        """NACK-policy snoop outcome: if the owning cache refuses the
        request, the transaction is void -- no directory change, no
        invalidations -- and the requester is told to retry.  This
        mirrors a combined snoop response of 'retry' in NACK-capable
        protocols."""
        prev_owner = self.directory.owner(request.line)
        if prev_owner == MEMORY or prev_owner == request.requester:
            return False
        owner = self.controllers[prev_owner]
        if not owner.would_nack(request):
            return False
        self._outstanding -= 1
        requester = self.controllers[request.requester]
        label = f"nack {request!r}" if self.sim.verbose_labels else "nack"
        self.sim.schedule(self._snoop_latency,
                          requester.handle_nack, request,
                          label=label)
        self._pump()
        return True

    def _order_gets(self, request: BusRequest) -> None:
        if self._nacked(request):
            return
        directory = self.directory
        line = request.line
        prev_owner = directory.owner(line)
        had_sharers = bool(directory.sharers(line) - {request.requester})
        directory.add_sharer(line, request.requester)
        requester = self.controllers[request.requester]
        if prev_owner == MEMORY:
            grant = State.SHARED if had_sharers else State.EXCLUSIVE
            if grant is State.EXCLUSIVE:
                directory.set_owner(line, request.requester)
            requester.request_ordered(request, grant)
            self.memory.supply(request, self._deliver)
        else:
            # MOESI: the owning cache supplies and retains ownership (O).
            requester.request_ordered(request, State.SHARED)
            self.controllers[prev_owner].handle_forward(request)

    def _order_getx(self, request: BusRequest) -> None:
        if self._nacked(request):
            return
        directory = self.directory
        line = request.line
        prev_owner = directory.owner(line)
        prev_sharers = (directory.sharers(line)
                        - {request.requester, prev_owner})
        directory.set_owner(line, request.requester)
        directory.set_sharers(line, {request.requester})
        requester = self.controllers[request.requester]
        requester.request_ordered(request, State.MODIFIED)
        for sharer in prev_sharers:
            self.controllers[sharer].handle_invalidation(request)
        if prev_owner == MEMORY:
            self.memory.supply(request, self._deliver)
        elif prev_owner == request.requester:
            # We were still the order-owner (e.g. re-request after losing
            # data to a pass-through); memory has the committed values.
            self.memory.supply(request, self._deliver)
        else:
            self.controllers[prev_owner].handle_forward(request)

    def _order_upg(self, request: BusRequest) -> None:
        directory = self.directory
        line = request.line
        prev_owner = directory.owner(line)
        still_sharer = request.requester in directory.sharers(line)
        requester = self.controllers[request.requester]
        upgrade_ok = still_sharer and prev_owner in (MEMORY,
                                                     request.requester)
        if not upgrade_ok:
            # Lost the shared copy (or another cache owns the line) between
            # issue and order: the upgrade becomes a full GETX.
            request.kind = ReqKind.GETX
            self._order_getx(request)
            return
        prev_sharers = directory.sharers(line) - {request.requester}
        directory.set_owner(line, request.requester)
        directory.set_sharers(line, {request.requester})
        for sharer in prev_sharers:
            self.controllers[sharer].handle_invalidation(request)
        requester.request_ordered(request, State.MODIFIED)
        requester.upgrade_granted(request)

    def _order_wb(self, request: BusRequest) -> None:
        directory = self.directory
        line = request.line
        if directory.owner(line) == request.requester:
            directory.set_owner(line, MEMORY)
            directory.remove_sharer(line, request.requester)
            self.memory.writeback(line)
        # A stale writeback (ownership already moved on) has no effect.
        self.controllers[request.requester].writeback_ordered(request)

    # ------------------------------------------------------------------
    # Data delivery (via the point-to-point network closure)
    # ------------------------------------------------------------------
    def _deliver(self, request: BusRequest) -> None:
        self.deliver_data(request, MEMORY)
