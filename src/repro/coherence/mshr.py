"""Miss-status handling registers.

One MSHR tracks one outstanding address transaction.  Besides the request
itself it records:

* the processor callbacks waiting on the fill (the core blocks on at most
  a couple of these at a time, but the structure is general);
* the *successor*: a later requester to whom the line's ownership was
  transferred at the bus order point while our data was still in flight --
  the forward obligation that builds the coherence chain of the paper's
  Figures 6 and 7;
* the *upstream* neighbour learned from a marker message, used to route
  probes toward the data holder;
* a ``pass_through`` flag set when this processor lost a TLR conflict
  while the miss was in flight: the arriving data is forwarded onward
  without being consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.coherence.messages import BusRequest, Timestamp


@dataclass(slots=True)
class Mshr:
    """One outstanding miss."""

    request: BusRequest
    waiters: list[Callable[[], None]] = field(default_factory=list)
    # Forward obligations chained behind this miss, in bus order.  Any
    # number of GETS may chain (ownership does not move on a read), but
    # a GETX moves ownership to its requester, so it is always last.
    successors: list[BusRequest] = field(default_factory=list)
    upstream: Optional[int] = None
    pass_through: bool = False
    ordered: bool = False
    in_txn: bool = False   # issued from within a speculative transaction
    fill_invalid: bool = False  # an invalidation ordered after our GETS
    # Probe timestamps seen before the marker arrived; flushed upstream
    # as soon as the upstream neighbour becomes known.
    pending_probe_ts: list[Timestamp] = field(default_factory=list)
    issue_time: int = 0

    @property
    def line(self) -> int:
        return self.request.line


class MshrFile:
    """The per-controller MSHR file (one entry per line)."""

    def __init__(self, entries: int = 16):
        self.entries = entries
        self._by_line: dict[int, Mshr] = {}
        # ``get`` is the hottest MSHR operation (every snoop and every
        # access probes it); bind the dict's own ``get`` so the call
        # costs no Python frame.  allocate/release mutate the same dict,
        # so the binding never goes stale.
        self.get = self._by_line.get

    def get(self, line: int) -> Optional[Mshr]:  # overridden per-instance
        return self._by_line.get(line)

    def allocate(self, request: BusRequest, issue_time: int) -> Mshr:
        if request.line in self._by_line:
            raise RuntimeError(
                f"MSHR already allocated for line {request.line:#x}")
        if len(self._by_line) >= self.entries:
            raise RuntimeError("MSHR file full")
        mshr = Mshr(request=request, issue_time=issue_time)
        self._by_line[request.line] = mshr
        return mshr

    def release(self, line: int) -> Mshr:
        return self._by_line.pop(line)

    def __len__(self) -> int:
        return len(self._by_line)

    def __iter__(self):
        return iter(list(self._by_line.values()))

    def entries_view(self):
        """No-copy iteration for read-only scans (hot paths); callers
        must not allocate or release MSHRs while iterating."""
        return self._by_line.values()

    def lines(self) -> set[int]:
        return set(self._by_line)
