"""Memory-system substrate: MOESI broadcast snooping a la Sun Gigaplane."""

from repro.coherence.bus import Bus, LineDirectory
from repro.coherence.cache import CacheArray, CapacityError, VictimCache
from repro.coherence.controller import CacheController, Decision
from repro.coherence.datanet import DataNetwork
from repro.coherence.memory import MemoryController, ValueStore
from repro.coherence.messages import (MEMORY, BusRequest, Marker, Probe,
                                      ReqKind, Timestamp, beats)
from repro.coherence.mshr import Mshr, MshrFile
from repro.coherence.states import Line, State

__all__ = [
    "Bus", "LineDirectory", "CacheArray", "VictimCache", "CapacityError",
    "CacheController", "Decision", "DataNetwork", "MemoryController",
    "ValueStore", "BusRequest", "Marker", "Probe", "ReqKind", "Timestamp",
    "beats", "MEMORY", "Mshr", "MshrFile", "Line", "State",
]
