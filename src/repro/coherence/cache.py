"""Set-associative L1 cache array and victim cache.

The L1 tracks coherence state and the SLE/TLR access bits per line.  The
victim cache (paper Sections 3.3 and 4) is a small fully-associative
buffer that catches lines evicted by conflict/capacity misses; it carries
the same speculative-access bits so a transaction's footprint may exceed
one set's associativity without forcing a lock acquisition.  A line is
*pinned* while it has an outstanding miss or an unserviced forward
obligation and is never chosen as a victim.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.coherence.states import Line, State
from repro.harness.config import CacheConfig


class CapacityError(Exception):
    """Raised when no line can be evicted to make room.

    For a speculating processor this is the resource-constraint signal
    that forces the TLR/SLE fallback to a real lock acquisition.
    """


class VictimCache:
    """Fully-associative FIFO victim buffer."""

    def __init__(self, entries: int):
        self.entries = entries
        self._lines: dict[int, Line] = {}

    def lookup(self, line_addr: int) -> Optional[Line]:
        return self._lines.get(line_addr)

    def insert(self, line: Line) -> Optional[Line]:
        """Insert ``line``; returns a displaced line if the buffer is full.

        Displacement is FIFO among non-speculative lines; if every entry
        is speculative the caller must treat it as a capacity overflow.
        """
        if self.entries == 0:
            return line
        if len(self._lines) < self.entries:
            self._lines[line.addr] = line
            return None
        for addr, candidate in self._lines.items():
            if not candidate.accessed:
                del self._lines[addr]
                self._lines[line.addr] = line
                return candidate
        raise CapacityError(
            f"victim cache full of {self.entries} speculative lines")

    def remove(self, line_addr: int) -> Optional[Line]:
        return self._lines.pop(line_addr, None)

    def __iter__(self) -> Iterator[Line]:
        return iter(list(self._lines.values()))

    def __len__(self) -> int:
        return len(self._lines)


class CacheArray:
    """The L1 data cache: set-associative, write-back, LRU."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: list[dict[int, Line]] = [
            {} for _ in range(config.num_sets)]
        # ``num_sets`` is a derived config property; resolve it once --
        # the mask is consulted on every lookup.
        self._set_mask = config.num_sets - 1
        self._assoc = config.assoc
        self.victim = VictimCache(config.victim_entries)
        self._use_clock = 0
        # Lines that must not be evicted (pending miss / obligation).
        self._pinned: set[int] = set()
        # Optional flat permission index (repro.sim.fastpath.FlatL1Index)
        # attached by the batched backend's FastProcessor; None under the
        # reference backend so the sync points below cost one attribute
        # test on the (rare) install/evict/drop roads.
        self._flat = None

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self, line_addr: int) -> None:
        self._pinned.add(line_addr)

    def unpin(self, line_addr: int) -> None:
        self._pinned.discard(line_addr)

    def is_pinned(self, line_addr: int) -> bool:
        return line_addr in self._pinned

    # ------------------------------------------------------------------
    # Lookup / install
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[Line]:
        """Find a valid line in the main array or the victim cache."""
        line = self._sets[line_addr & self._set_mask].get(line_addr)
        if line is not None:
            self._use_clock += 1
            line.last_use = self._use_clock
            return line
        victim_line = self.victim.lookup(line_addr)
        if victim_line is not None:
            # Promote back into the main array (swap with an LRU victim).
            self.victim.remove(line_addr)
            self._install(victim_line)
            return victim_line
        return None

    def peek(self, line_addr: int) -> Optional[Line]:
        """Side-effect-free lookup: no LRU bump, no victim promotion.

        The invariant monitors inspect every controller's view of a line
        after each coherence event; a normal :meth:`lookup` would perturb
        replacement state and victim residency, changing the very
        execution being checked.
        """
        line = self._sets[line_addr & self._set_mask].get(line_addr)
        if line is not None:
            return line
        return self.victim.lookup(line_addr)

    def install(self, line_addr: int, state: State) -> Line:
        """Allocate (or revalidate) ``line_addr`` in ``state``.

        May evict an existing line into the victim cache; raises
        :class:`CapacityError` when nothing can make room (the caller
        converts that into a speculation fallback or a writeback stall).
        """
        existing = self.lookup(line_addr)
        if existing is not None:
            existing.state = state
            flat = self._flat
            if flat is not None:  # inlined FlatL1Index.update (hot site)
                slot = flat.slot_of.get(line_addr)
                if slot is not None:
                    flat.flags[slot] = state.flat_bits
            return existing
        line = Line(addr=line_addr, state=state)
        self._install(line)
        return line

    def _install(self, line: Line) -> None:
        cache_set = self._sets[line.addr & self._set_mask]
        self._use_clock += 1
        line.last_use = self._use_clock
        if len(cache_set) >= self._assoc:
            victim = self._choose_victim(cache_set)
            del cache_set[victim.addr]
            if self._flat is not None:
                self._flat.remove(victim.addr)
            if victim.state.valid:
                displaced = self.victim.insert(victim)
                if displaced is not None and displaced.accessed:
                    raise CapacityError(
                        "speculative line displaced from victim cache")
                if displaced is not None:
                    self._notify_eviction(displaced)
        cache_set[line.addr] = line
        if self._flat is not None:
            self._flat.add(line)

    def _choose_victim(self, cache_set: dict[int, Line]) -> Line:
        candidates = [l for l in cache_set.values()
                      if l.addr not in self._pinned]
        if not candidates:
            raise CapacityError("all lines in set pinned by pending misses")
        # Prefer invalid, then non-speculative LRU, then speculative LRU.
        invalid = [l for l in candidates if not l.state.valid]
        if invalid:
            return invalid[0]
        clean = [l for l in candidates if not l.accessed]
        pool = clean or candidates
        return min(pool, key=lambda l: l.last_use)

    # ------------------------------------------------------------------
    # Eviction callback (set by the controller to issue writebacks)
    # ------------------------------------------------------------------
    on_eviction: Optional[Callable[[Line], None]] = None

    def _notify_eviction(self, line: Line) -> None:
        if self.on_eviction is not None:
            self.on_eviction(line)

    # ------------------------------------------------------------------
    # Whole-cache iteration (snoop handling, end-of-transaction cleanup)
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Line]:
        for cache_set in self._sets:
            yield from cache_set.values()
        yield from self.victim

    def speculative_lines(self) -> list[Line]:
        return [l for l in self if l.accessed]

    def drop(self, line_addr: int) -> None:
        """Remove a line entirely (post-invalidation tidy-up)."""
        self._sets[self.set_index(line_addr)].pop(line_addr, None)
        self.victim.remove(line_addr)
        if self._flat is not None:
            self._flat.remove(line_addr)
