"""MOESI line states and per-line cache metadata.

The paper's target machine uses a Sun Gigaplane-like MOESI broadcast
snooping protocol.  Each L1 line carries, in addition to its coherence
state, the *access bit* SLE/TLR use to track data touched within the
current transaction (one bit per block, paper Figure 5) and a
speculatively-written bit distinguishing read-set from write-set lines.

The state predicates (``valid``/``owned``/``writable``/``dirty``) are
assigned as plain per-member attributes after the class body rather than
properties: they run on every L1 lookup and snoop, and a data-descriptor
lookup costs a Python call per access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class State(enum.Enum):
    """MOESI coherence states.

    Member attributes (precomputed below):

    * ``valid`` -- any state but INVALID;
    * ``owned`` -- this cache is the line's owner (must supply data);
    * ``writable`` -- a store may complete without a bus transaction;
    * ``dirty`` -- eviction requires a writeback;
    * ``flat_bits`` -- the permission mask (bit 0 valid, bit 1 writable)
      stored per slot by the flat L1 index (:mod:`repro.sim.fastpath`).
    """

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


for _s in State:
    _s.valid = _s is not State.INVALID
    _s.owned = _s in (State.MODIFIED, State.OWNED, State.EXCLUSIVE)
    _s.writable = _s in (State.MODIFIED, State.EXCLUSIVE)
    _s.dirty = _s in (State.MODIFIED, State.OWNED)
    _s.flat_bits = (1 if _s.valid else 0) | (2 if _s.writable else 0)
del _s


@dataclass(slots=True)
class Line:
    """One L1 (or victim-cache) line."""

    addr: int                      # line-aligned address (line index)
    state: State = State.INVALID
    accessed: bool = False         # touched within the current transaction
    spec_written: bool = False     # in the transaction's write set
    last_use: int = 0              # for LRU replacement

    def clear_speculative(self) -> None:
        """Drop transaction-tracking bits (``end_defer`` behaviour)."""
        self.accessed = False
        self.spec_written = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = ""
        if self.accessed:
            bits += "a"
        if self.spec_written:
            bits += "w"
        return f"<Line {self.addr:#x} {self.state.value}{(':' + bits) if bits else ''}>"
