"""MOESI line states and per-line cache metadata.

The paper's target machine uses a Sun Gigaplane-like MOESI broadcast
snooping protocol.  Each L1 line carries, in addition to its coherence
state, the *access bit* SLE/TLR use to track data touched within the
current transaction (one bit per block, paper Figure 5) and a
speculatively-written bit distinguishing read-set from write-set lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class State(enum.Enum):
    """MOESI coherence states."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def valid(self) -> bool:
        return self is not State.INVALID

    @property
    def owned(self) -> bool:
        """True when this cache is the line's owner (must supply data)."""
        return self in (State.MODIFIED, State.OWNED, State.EXCLUSIVE)

    @property
    def writable(self) -> bool:
        """True when a store may complete without a bus transaction."""
        return self in (State.MODIFIED, State.EXCLUSIVE)

    @property
    def dirty(self) -> bool:
        """True when eviction requires a writeback."""
        return self in (State.MODIFIED, State.OWNED)


@dataclass
class Line:
    """One L1 (or victim-cache) line."""

    addr: int                      # line-aligned address (line index)
    state: State = State.INVALID
    accessed: bool = False         # touched within the current transaction
    spec_written: bool = False     # in the transaction's write set
    last_use: int = 0              # for LRU replacement

    def clear_speculative(self) -> None:
        """Drop transaction-tracking bits (``end_defer`` behaviour)."""
        self.accessed = False
        self.spec_written = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = ""
        if self.accessed:
            bits += "a"
        if self.spec_written:
            bits += "w"
        return f"<Line {self.addr:#x} {self.state.value}{(':' + bits) if bits else ''}>"
