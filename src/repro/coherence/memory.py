"""Memory-side controller and the architectural value store.

Two separable concerns live here:

* :class:`ValueStore` -- the single architectural image of memory, a map
  from word address to value.  Coherence governs *permissions and timing*;
  values are read and written through this store at the instant an access
  is allowed to complete.  Speculative stores live in per-processor write
  buffers until commit, so the store only ever holds committed state.

* :class:`MemoryController` -- the memory side of the snooping protocol
  (the shared L2 plus DRAM behind it).  When the bus orders a request for
  a line whose owner is memory, this controller supplies the data after
  the L2 (or DRAM) latency.  L2 residency is tracked with an LRU tag set
  of configurable capacity; the default is unbounded, because the paper's
  4 MB shared L2 comfortably holds our scaled working sets.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from repro.coherence.messages import BusRequest
from repro.harness.config import MemoryConfig
from repro.sim.kernel import Simulator
from repro.sim.rng import LatencyPerturber
from repro.sim.stats import SimStats


class ValueStore:
    """Architectural memory: word address -> value (default 0)."""

    def __init__(self):
        self._words: dict[int, int] = {}

    def read(self, addr: int) -> int:
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self._words[addr] = value

    def snapshot(self) -> dict[int, int]:
        """A copy of all written words (for checkers and tests)."""
        return dict(self._words)


class MemoryController:
    """The memory side of the bus: supplies data when no cache owns it.

    The shared L2 is modeled as an LRU set of line tags of configurable
    capacity (``l2_capacity_lines``; 0 means unbounded, which matches
    the paper's 4 MB L2 comfortably holding our scaled working sets):
    lines resident in the set are served at the L2 latency, others at
    the DRAM latency and then installed.
    """

    def __init__(self, sim: Simulator, config: MemoryConfig,
                 stats: SimStats, perturber: Optional[LatencyPerturber] = None,
                 l2_capacity_lines: int = 0):
        self.sim = sim
        self.config = config
        self.stats = stats
        self.perturber = perturber
        self.l2_capacity_lines = l2_capacity_lines
        self._l2_tags: "OrderedDict[int, None]" = OrderedDict()
        self.l2_hits = 0
        self.l2_misses = 0

    def _l2_lookup(self, line: int) -> bool:
        if line in self._l2_tags:
            self._l2_tags.move_to_end(line)
            return True
        return False

    def _l2_install(self, line: int) -> None:
        self._l2_tags[line] = None
        self._l2_tags.move_to_end(line)
        if self.l2_capacity_lines and \
                len(self._l2_tags) > self.l2_capacity_lines:
            self._l2_tags.popitem(last=False)

    def supply_latency(self, line: int) -> int:
        """L2 hit latency for resident lines, DRAM latency otherwise."""
        if self._l2_lookup(line):
            self.l2_hits += 1
            latency = self.config.l2_latency
        else:
            self.l2_misses += 1
            latency = self.config.dram_latency
            self._l2_install(line)
        if self.perturber is not None:
            latency = self.perturber.perturb(latency)
        return latency

    def supply(self, request: BusRequest,
               deliver: Callable[[BusRequest], None]) -> None:
        """Schedule the data response for ``request``.

        ``deliver`` is the data-network send closure provided by the
        machine builder; it is invoked after the memory access latency.
        """
        self.stats.memory_reads += 1
        label = (f"mem-supply {request!r}" if self.sim.verbose_labels
                 else "mem-supply")
        self.sim.schedule(self.supply_latency(request.line), deliver, request,
                          label=label)

    def writeback(self, line: int) -> None:
        """Accept a dirty line (values are already in the store)."""
        self._l2_install(line)
