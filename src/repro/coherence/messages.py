"""Coherence messages.

Address-bus requests (GETS/GETX/UPG/WB) are broadcast and *ordered*; data
responses travel point-to-point; markers and probes are the TLR-specific
directed messages of Section 3.1.1 -- they carry priority information along
a coherence chain and have no coherence state interactions.

A ``Timestamp`` is the pair (local logical clock, processor id) from
Section 2.1.2; tuple comparison gives exactly the paper's priority order
(earlier clock wins, processor id breaks ties).  ``None`` marks an
*untimestamped* request -- one issued outside any transaction -- which is
treated as having the latest timestamp in the system (lowest priority) so
it can be deferred and ordered after the current critical section.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

Timestamp = tuple[int, int]  # (logical clock, cpu id); smaller = older = wins

MEMORY = -1  # pseudo "node id" for the memory-side controller


def beats(challenger: Optional[Timestamp], incumbent: Optional[Timestamp]) -> bool:
    """True when ``challenger`` has priority over ``incumbent``.

    Untimestamped (None) requests lose to any timestamped request and, for
    determinism, a None challenger never beats anyone.
    """
    if challenger is None:
        return False
    if incumbent is None:
        return True
    return challenger < incumbent


class ReqKind(enum.Enum):
    """Address-bus transaction kinds."""

    GETS = "GETS"    # read, shared copy
    GETX = "GETX"    # read-exclusive, writable copy
    UPG = "UPG"      # upgrade S -> M, no data needed
    WB = "WB"        # writeback of a dirty evicted line

    @property
    def is_write(self) -> bool:
        return self in (ReqKind.GETX, ReqKind.UPG)


_request_ids = itertools.count(1)


@dataclass
class BusRequest:
    """One address-bus transaction.

    ``ts`` is the issuing transaction's timestamp (None outside TLR mode).
    ``is_lock`` tags requests to lock variables for the Figure 11 stall
    breakdown.  ``order_time`` is stamped by the bus when the request
    reaches its global order point.  ``prio`` carries the issuing
    transaction's accumulated contention-manager priority (used only by
    priority-ordered policies such as ``backoff``; always 0 under the
    paper's timestamp policies).
    """

    kind: ReqKind
    line: int
    requester: int
    ts: Optional[Timestamp] = None
    is_lock: bool = False
    prio: int = 0
    req_id: int = field(default_factory=lambda: next(_request_ids))
    order_time: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ts = f" ts={self.ts}" if self.ts is not None else ""
        return (f"<{self.kind.value} line={self.line:#x} cpu={self.requester}"
                f"{ts} #{self.req_id}>")


@dataclass
class Marker:
    """Directed owner -> requester message (Section 3.1.1).

    Sent when a request's data is not provided immediately -- either
    because the owner is deferring it or because the owner is itself
    waiting for data.  Tells the requester who its upstream neighbour in
    the coherence chain is, enabling probes.
    """

    line: int
    sender: int       # the upstream node
    req_id: int       # the request being answered with a marker


@dataclass
class Probe:
    """Directed requester -> upstream message carrying a conflicting
    timestamp toward the node that actually holds the data.

    Forwarded hop-by-hop along marker-established chain edges until it
    reaches a node that can resolve the conflict (win: keep deferring;
    lose: restart and release ownership).
    """

    line: int
    ts: Timestamp
    origin: int       # processor whose request the probe champions
