"""Coherence messages.

Address-bus requests (GETS/GETX/UPG/WB) are broadcast and *ordered*; data
responses travel point-to-point; markers and probes are the TLR-specific
directed messages of Section 3.1.1 -- they carry priority information along
a coherence chain and have no coherence state interactions.

A ``Timestamp`` is the pair (local logical clock, processor id) from
Section 2.1.2; tuple comparison gives exactly the paper's priority order
(earlier clock wins, processor id breaks ties).  ``None`` marks an
*untimestamped* request -- one issued outside any transaction -- which is
treated as having the latest timestamp in the system (lowest priority) so
it can be deferred and ordered after the current critical section.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.coherence.states import State

Timestamp = tuple[int, int]  # (logical clock, cpu id); smaller = older = wins

MEMORY = -1  # pseudo "node id" for the memory-side controller


def beats(challenger: Optional[Timestamp], incumbent: Optional[Timestamp]) -> bool:
    """True when ``challenger`` has priority over ``incumbent``.

    Untimestamped (None) requests lose to any timestamped request and, for
    determinism, a None challenger never beats anyone.
    """
    if challenger is None:
        return False
    if incumbent is None:
        return True
    return challenger < incumbent


class ReqKind(enum.Enum):
    """Address-bus transaction kinds.

    ``is_write`` is assigned as a plain per-member attribute below rather
    than a property: it is consulted on every snoop-side conflict check,
    and a data-descriptor lookup costs a Python call per access.
    """

    GETS = "GETS"    # read, shared copy
    GETX = "GETX"    # read-exclusive, writable copy
    UPG = "UPG"      # upgrade S -> M, no data needed
    WB = "WB"        # writeback of a dirty evicted line


for _kind in ReqKind:
    _kind.is_write = _kind in (ReqKind.GETX, ReqKind.UPG)
del _kind


_request_ids = itertools.count(1)


@dataclass(slots=True)
class BusRequest:
    """One address-bus transaction.

    ``ts`` is the issuing transaction's timestamp (None outside TLR mode).
    ``is_lock`` tags requests to lock variables for the Figure 11 stall
    breakdown.  ``order_time`` is stamped by the bus when the request
    reaches its global order point.  ``prio`` carries the issuing
    transaction's accumulated contention-manager priority (used only by
    priority-ordered policies such as ``backoff``; always 0 under the
    paper's timestamp policies).

    ``grant_state`` is stamped by the requester's controller when its own
    request reaches the order point (the state the directory granted);
    ``abort_on_nack`` rides on a NACKed request when the refusing holder
    also decided to kill the requester's transaction -- encoded as the
    holder's cpu id + 1 (any truthy value means "abort"; the offset lets
    the victim attribute the kill for abort-attribution profiling).
    """

    kind: ReqKind
    line: int
    requester: int
    ts: Optional[Timestamp] = None
    is_lock: bool = False
    prio: int = 0
    req_id: int = field(default_factory=lambda: next(_request_ids))
    order_time: Optional[int] = None
    grant_state: Optional["State"] = None
    abort_on_nack: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ts = f" ts={self.ts}" if self.ts is not None else ""
        return (f"<{self.kind.value} line={self.line:#x} cpu={self.requester}"
                f"{ts} #{self.req_id}>")


@dataclass(slots=True)
class Marker:
    """Directed owner -> requester message (Section 3.1.1).

    Sent when a request's data is not provided immediately -- either
    because the owner is deferring it or because the owner is itself
    waiting for data.  Tells the requester who its upstream neighbour in
    the coherence chain is, enabling probes.
    """

    line: int
    sender: int       # the upstream node
    req_id: int       # the request being answered with a marker


@dataclass(slots=True)
class Probe:
    """Directed requester -> upstream message carrying a conflicting
    timestamp toward the node that actually holds the data.

    Forwarded hop-by-hop along marker-established chain edges until it
    reaches a node that can resolve the conflict (win: keep deferring;
    lose: restart and release ownership).
    """

    line: int
    ts: Timestamp
    origin: int       # processor whose request the probe champions
