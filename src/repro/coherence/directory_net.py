"""Directory-based interconnect (CC-NUMA style).

The paper's implementation discussion makes no assumption about the
protocol family: "The protocol may be broadcast snooping or
directory-based and interconnect may be ordered or un-ordered"
(Section 3).  This module provides the directory alternative to the
Gigaplane-like :class:`~repro.coherence.bus.Bus`:

* requests travel an **unordered point-to-point network** to the line's
  *home* directory (homes are interleaved across ``num_homes`` nodes);
* each home serializes the requests it receives (its processing
  occupancy is the throughput bound) -- there is no global broadcast
  bottleneck, so traffic to *different* homes proceeds in parallel;
* the home's processing instant is the line's global order point, where
  the same ownership/sharer bookkeeping and forwarding decisions are
  made as on the bus (the directory state is authoritative rather than
  a mirror of combined snoop responses).

Everything downstream -- controller behaviour, TLR deferral, markers,
probes, NACKs -- is protocol-agnostic and reused unchanged, exactly the
paper's point that TLR needs no coherence protocol modifications.

Because the request network is unordered, two requests issued in one
order can reach their homes in the other order; the TLR layer must (and
does) tolerate this, which the protocol-fuzz tests exercise.
"""

from __future__ import annotations

from repro.coherence.bus import Bus
from repro.coherence.messages import BusRequest
from repro.harness.config import DirectoryConfig
from repro.sim.kernel import Simulator
from repro.sim.rng import LatencyPerturber
from repro.sim.stats import SimStats


class DirectoryInterconnect(Bus):
    """Drop-in replacement for :class:`Bus` with home-node ordering."""

    def __init__(self, sim: Simulator, config: DirectoryConfig,
                 stats: SimStats,
                 perturber: LatencyPerturber | None = None):
        # The Bus constructor expects a BusConfig-shaped object; the
        # DirectoryConfig provides the attributes Bus actually touches
        # (snoop_latency is unused on this path).
        super().__init__(sim, config, stats)
        self.dir_config = config
        self.perturber = perturber
        self._home_free = [0] * config.num_homes

    # ------------------------------------------------------------------
    # Issue path: unordered network to the home, serialized there
    # ------------------------------------------------------------------
    def issue(self, request: BusRequest) -> None:
        latency = self.dir_config.request_latency
        if self.perturber is not None:
            latency = self.perturber.perturb(latency)
        self.stats.bus_transactions += 1
        self._outstanding += 1
        self.sim.schedule(latency, self._arrive_at_home, request,
                          label=f"dir-arrive {request!r}")

    def _arrive_at_home(self, request: BusRequest) -> None:
        if request.req_id in self._cancelled:
            self._cancelled.discard(request.req_id)
            self._outstanding -= 1
            return
        home = request.line % self.dir_config.num_homes
        start = max(self.sim.now, self._home_free[home])
        self._home_free[home] = start + self.dir_config.home_occupancy
        self.stats.bus_busy_cycles += self.dir_config.home_occupancy
        delay = start - self.sim.now + self.dir_config.processing_latency
        self.sim.schedule(delay, self._order, request,
                          label=f"dir-order {request!r}")

    def complete(self, request: BusRequest) -> None:
        self._outstanding -= 1

    # Cancellation (writeback races) must work for in-flight requests.
    def cancel(self, request: BusRequest) -> None:
        if request.order_time is None:
            self._cancelled.add(request.req_id)
