"""Point-to-point data network.

The paper's target machine ships data over a pipelined point-to-point
network with a 20-cycle latency; address traffic rides the broadcast bus.
Because the network is pipelined, the first-order contention effect in the
evaluation is address-bus occupancy, not data-network queueing, so this
model charges a fixed (jittered) hop latency per message.  Markers and
probes -- small directed control messages -- travel the same network.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.harness.config import MemoryConfig
from repro.sim.kernel import Simulator
from repro.sim.rng import LatencyPerturber
from repro.sim.stats import SimStats


class DataNetwork:
    """Fixed-latency pipelined point-to-point message delivery."""

    def __init__(self, sim: Simulator, config: MemoryConfig, stats: SimStats,
                 perturber: Optional[LatencyPerturber] = None):
        self.sim = sim
        self.config = config
        self.stats = stats
        self.perturber = perturber
        self._next_slot = 0  # bandwidth model: next free delivery slot
        # Hot-path aliases: one send per data message makes the config
        # attribute chase and the _latency call wrapper measurable.
        self._base_latency = config.data_latency
        self._interval = config.data_bandwidth_interval
        self._perturb = perturber.perturb if perturber is not None else None

    def _latency(self) -> int:
        latency = self._base_latency
        if self._perturb is not None:
            latency = self._perturb(latency)
        return latency

    def send(self, deliver: Callable[..., None], *args,
             label: str = "data") -> None:
        """Deliver ``deliver(*args)`` one network hop from now.

        With a configured bandwidth interval, deliveries are spaced at
        least that many cycles apart (a simple aggregate-bandwidth
        model); otherwise the network is perfectly pipelined.
        """
        self.stats.data_messages += 1
        delay = self._base_latency
        if self._perturb is not None:
            delay = self._perturb(delay)
        interval = self._interval
        if interval > 0:
            now = self.sim.now
            earliest = now + delay
            if earliest < self._next_slot:
                earliest = self._next_slot
            self._next_slot = earliest + interval
            delay = earliest - now
        self.sim.schedule(delay, deliver, *args, label=label)

    def send_control(self, deliver: Callable[..., None], *args,
                     label: str = "ctl") -> None:
        """Control messages (markers, probes): same latency, not counted
        as data transfers."""
        delay = self._base_latency
        if self._perturb is not None:
            delay = self._perturb(delay)
        self.sim.schedule(delay, deliver, *args, label=label)
