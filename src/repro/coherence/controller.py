"""Per-processor coherence controller.

This is where the paper's algorithm (Figure 3) actually runs: the
controller snoops the ordered bus, tracks outstanding misses, and -- when
its processor is executing an optimistic lock-free transaction -- performs
the TLR concurrency control *alongside* the unmodified MOESI protocol:

* incoming conflicting requests with a **later** timestamp are deferred
  (buffered in the deferred input queue, ownership retained, a marker sent
  to the requester);
* incoming conflicting requests with an **earlier** timestamp make the
  local transaction lose: deferred requests are serviced in order, the
  conflicting request is serviced, and the processor restarts;
* when a request cannot be answered with data immediately (the line's
  previous owner is itself waiting), the obligation chains behind our own
  miss, a **marker** teaches the requester its upstream neighbour, and
  **probes** carry conflicting timestamps upstream to break cyclic waits
  (Section 3.1.1, Figure 6);
* Section 3.2's single-block relaxation: an earlier-timestamp request may
  still be deferred when the transaction has exactly one block under
  conflict and no other miss outstanding (deadlock is impossible), unless
  configured strict (the TLR-strict-ts curve of Figure 9).

*Which* side of a conflict wins -- and how losers are paced -- is decided
by the configured :class:`~repro.policies.base.ContentionPolicy`
(``config.spec.contention_policy``); the controller owns all protocol
mechanics (deferred queue, markers/probes, NACK transport) and maps the
policy's verdicts onto them.  The default ``timestamp`` policy replays
the paper's rules bit-identically.

Plain SLE (no TLR) uses the same controller with ``tlr_enabled`` false:
conflicts simply trigger misspeculation and the request is serviced.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import TYPE_CHECKING, Callable, Optional

from repro.coherence.cache import CacheArray, CapacityError
from repro.coherence.messages import (MEMORY, BusRequest, Marker, Probe,
                                      ReqKind, Timestamp)
from repro.coherence.mshr import MshrFile
from repro.coherence.states import Line, State
from repro.policies import make_policy
from repro.policies.base import ConflictContext, PolicyDecision
from repro.tlr.deferral import ChainState, DeferredQueue
from repro.harness.config import SystemConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import CpuStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coherence.bus import Bus
    from repro.coherence.datanet import DataNetwork


class Decision(enum.Enum):
    """Outcome of conflict resolution for one incoming request."""

    SERVE = "serve"
    DEFER = "defer"
    LOSE = "lose"
    SERVE_ABORT = "serve-abort"  # serve the data, abort the *requester*


# How often a waiter re-champions its timestamp upstream (cycles).
PROBE_WATCHDOG_PERIOD = 300


class CacheController:
    """One processor's L1 cache + coherence controller + TLR logic."""

    def __init__(self, cpu_id: int, sim: Simulator, bus: "Bus",
                 datanet: "DataNetwork", config: SystemConfig,
                 stats: CpuStats):
        self.cpu_id = cpu_id
        self.sim = sim
        self.bus = bus
        self.datanet = datanet
        self.config = config
        self.stats = stats
        self.cache = CacheArray(config.cache)
        self.cache.on_eviction = self._evict_dirty
        self.mshrs = MshrFile()
        self.deferred = DeferredQueue(capacity=max(8, 4 * config.num_cpus))
        # Hot-path constants, resolved once (each is an attribute chain
        # through config dataclasses otherwise).
        self._hit_latency = config.cache.hit_latency
        self._single_block_relax = config.spec.single_block_relaxation
        # Lines touched by the current transaction (addr -> Line).  The
        # controller is the only writer of the per-line access bits, so
        # this registry is always a superset of {lines with accessed set}
        # and replaces whole-cache scans at commit/abort time; entries
        # whose bits were cleared individually are filtered on read.
        self._spec_touched: dict[int, Line] = {}
        self.chains: dict[int, ChainState] = {}
        self.watchers: dict[int, list[Callable[[], None]]] = {}
        self.evicting: dict[int, BusRequest] = {}
        self.upgrade_violations: Counter = Counter()
        # Speculation state (driven by the processor / SLE module).
        self.speculating = False
        self.tlr_enabled = config.scheme.is_tlr
        self.current_ts: Optional[Timestamp] = None
        # Conflict-resolution policy (repro.policies); per-controller
        # because policies may carry per-processor state (priorities).
        self.policy = make_policy(config, cpu_id)
        # Callback into the processor, wired by the machine builder.
        self.on_misspeculation: Callable[[str, int], None] = \
            lambda reason, line: None
        self.on_conflict_ts: Callable[[Optional[Timestamp]], None] = \
            lambda ts: None
        # Optional invariant monitor (repro.verify.monitors); None in
        # normal runs so the hot path pays only an attribute test.
        self.monitor = None
        # Optional metrics collector (repro.obs.MachineMetrics), gated
        # the same way.
        self.obs = None
        # LL/SC link register.
        self._link: Optional[int] = None
        bus.attach(self)

    # ------------------------------------------------------------------
    # Processor-facing interface
    # ------------------------------------------------------------------
    def access(self, line_addr: int, write: bool, on_effect: Callable[[], None],
               want_exclusive: bool = False, is_lock: bool = False,
               still_wanted: Optional[Callable[[], bool]] = None) -> bool:
        """Request permission to perform an access.

        Returns True on an L1 hit -- the caller performs its architectural
        effect immediately (synchronously) and charges the hit latency
        itself.  On a miss, returns False and ``on_effect`` is invoked
        synchronously at the instant the fill (or upgrade grant) arrives,
        which is the access's effect point.
        """
        need_writable = write or want_exclusive
        # Single-block relaxation bookkeeping (Section 3.2): taking a new
        # miss while holding a relaxation-deferred earlier-timestamp
        # request would risk deadlock, so timestamp order is enforced
        # *now*: lose, release, restart.
        line = self.cache.lookup(line_addr)
        hit = line is not None and line.state.valid and (
            not need_writable or line.state.writable)
        if (not hit and self.speculating
                and self._must_release_before_miss(line_addr)):
            self._handle_loss("relaxation-revoked", line_addr, None)
            return False
        if hit:
            self.stats.l1_hits += 1
            return True
        self.stats.l1_misses += 1
        pending = self.mshrs.get(line_addr)
        if pending is not None:
            # Merge: retry the access when the outstanding fill lands.
            pending.waiters.append(
                lambda: self._retry_access(line_addr, write, on_effect,
                                           want_exclusive, is_lock,
                                           still_wanted))
            return False
        kind = self._miss_kind(line, need_writable)
        ts = self.current_ts if self.speculating else None
        prio = self.policy.request_priority() if self.speculating else 0
        request = BusRequest(kind=kind, line=line_addr, requester=self.cpu_id,
                             ts=ts, is_lock=is_lock, prio=prio)
        if kind is ReqKind.UPG:
            self.stats.upgrades += 1
        mshr = self.mshrs.allocate(request, self.sim.now)
        mshr.in_txn = self.speculating
        mshr.waiters.append(on_effect)
        self.chains[line_addr] = ChainState()
        self.cache.pin(line_addr)
        self.bus.issue(request)
        if self.obs is not None:
            self.obs.on_request_issued(self, request)
        if self.tlr_enabled:
            # Watch every miss, not just transactional ones: a restarted
            # transaction may merge onto a request issued outside the
            # transaction, and its priority must still be championed.
            label = (f"probe-wd {line_addr:#x}" if self.sim.verbose_labels
                     else "probe-wd")
            self.sim.schedule(PROBE_WATCHDOG_PERIOD, self._probe_watchdog,
                              line_addr, request.req_id, label=label)
        return False

    def try_hit(self, line_addr: int, need_writable: bool) -> bool:
        """Hit-only fast path for the processor: mirrors the hit leg of
        :meth:`access` exactly (same lookup, same stats) without the
        caller having to build effect/squash closures first.  Returns
        False on a miss with no side effects beyond the lookup's
        (order-preserving) LRU bump; the caller then takes the full
        :meth:`access` path.
        """
        line = self.cache.lookup(line_addr)
        if line is not None and line.state.valid and (
                not need_writable or line.state.writable):
            self.stats.l1_hits += 1
            return True
        return False

    def _probe_watchdog(self, line_addr: int, req_id: int) -> None:
        """Re-champion our own timestamp upstream while a transactional
        miss is outstanding.

        A single probe can be lost -- it may reach the deferring holder
        during the brief window of a restart, when its speculative state
        is cleared -- and a lost probe means an unbroken cyclic wait.
        Re-probing until the miss completes makes priority propagation
        self-healing.
        """
        mshr = self.mshrs.get(line_addr)
        if mshr is None or mshr.request.req_id != req_id:
            return
        if self.speculating and self.current_ts is not None:
            chain = self.chains.get(line_addr)
            if chain is not None and chain.upstream is not None:
                self._send_probe(chain.upstream, line_addr, self.current_ts,
                                 origin=self.cpu_id)
        label = (f"probe-wd {line_addr:#x}" if self.sim.verbose_labels
                 else "probe-wd")
        self.sim.schedule(PROBE_WATCHDOG_PERIOD, self._probe_watchdog,
                          line_addr, req_id, label=label)

    def _retry_access(self, line_addr: int, write: bool,
                      on_effect: Callable[[], None], want_exclusive: bool,
                      is_lock: bool,
                      still_wanted: Optional[Callable[[], bool]]) -> None:
        if still_wanted is not None and not still_wanted():
            return  # The access was squashed; don't issue a stale request.
        if self.access(line_addr, write, on_effect,
                       want_exclusive=want_exclusive, is_lock=is_lock,
                       still_wanted=still_wanted):
            on_effect()

    def _miss_kind(self, line: Optional[Line], need_writable: bool) -> ReqKind:
        if not need_writable:
            return ReqKind.GETS
        if line is not None and line.state in (State.SHARED, State.OWNED):
            return ReqKind.UPG
        return ReqKind.GETX

    def has_writable(self, line_addr: int) -> bool:
        line = self.cache.lookup(line_addr)
        return line is not None and line.state.writable

    def _set_state(self, line: Line, state: State) -> None:
        """Change a resident line's MOESI state.

        Every in-place state write funnels through here so the batched
        backend's flat permission index (``cache._flat``, see
        :mod:`repro.sim.fastpath`) stays coherent; under the reference
        backend the flat index is None and this is a plain assignment.
        """
        line.state = state
        flat = self.cache._flat
        if flat is not None:  # inlined FlatL1Index.update (hot funnel)
            slot = flat.slot_of.get(line.addr)
            if slot is not None:
                flat.flags[slot] = state.flat_bits

    def mark_accessed(self, line_addr: int, written: bool) -> None:
        """Set the transaction access bits at an access's effect point."""
        if not self.speculating:
            return
        line = self.cache.lookup(line_addr)
        if line is None:
            return
        line.accessed = True
        if written:
            line.spec_written = True
        self._spec_touched[line_addr] = line

    def _speculative_lines(self) -> list[Line]:
        """The transaction's accessed lines, from the touched-line
        registry instead of a whole-cache scan.  Identical contents to
        ``cache.speculative_lines()``: the registry is a superset of the
        accessed set and the filter drops individually-cleared entries.
        """
        return [l for l in self._spec_touched.values() if l.accessed]

    def speculative_footprint(self) -> int:
        return len(self._speculative_lines())

    # -- spin-wait support ---------------------------------------------
    def watch(self, line_addr: int, callback: Callable[[], None]) -> None:
        """One-shot wakeup when the line is invalidated or refilled."""
        self.watchers.setdefault(line_addr, []).append(callback)

    def _wake_watchers(self, line_addr: int) -> None:
        if not self.watchers:
            return
        pending = self.watchers.pop(line_addr, None)
        if not pending:
            return
        label = (f"wake {line_addr:#x}" if self.sim.verbose_labels
                 else "wake")
        for callback in pending:
            self.sim.schedule(0, callback, label=label)

    # -- LL/SC link ----------------------------------------------------
    def set_link(self, line_addr: int) -> None:
        """Arm the link register -- unless the line is no longer valid
        locally (its fill was invalidated in flight), in which case a
        conflicting store was ordered between the LL and now and the
        upcoming SC must fail."""
        line = self.cache.lookup(line_addr)
        if line is not None and line.state.valid:
            self._link = line_addr
        else:
            self._link = None

    def link_valid(self, line_addr: int) -> bool:
        return self._link == line_addr

    def _clear_link(self, line_addr: int) -> None:
        if self._link == line_addr:
            self._link = None

    # -- speculation control -------------------------------------------
    def enter_speculation(self, ts: Optional[Timestamp]) -> None:
        """``start_defer``: the processor enters lock-free transaction
        mode.  ``ts`` is the TLR timestamp, or None under plain SLE."""
        self.speculating = True
        self.current_ts = ts
        self._spec_touched.clear()

    def commit_speculation(self) -> None:
        """``end_defer`` on success: clear access bits, service waiters.

        The processor must have drained its write buffer into the value
        store *before* calling this, so deferred requesters observe
        post-commit values.
        """
        self._exit_speculation()

    def abort_speculation(self) -> None:
        """Processor-initiated abort (resource fallback, deschedule):
        give up retained ownership, discard tracking state."""
        if not self.speculating:
            return
        self._exit_speculation()

    def _exit_speculation(self) -> None:
        for line in self._speculative_lines():
            line.clear_speculative()
        self._spec_touched.clear()
        self.speculating = False
        self.current_ts = None
        self._service_deferred()

    def _service_deferred(self) -> None:
        if not self.deferred:
            return
        verbose = self.sim.verbose_labels
        for entry in self.deferred.drain():
            label = (f"svc-deferred {entry.request!r}" if verbose
                     else "svc-deferred")
            self.sim.schedule(self._hit_latency,
                              self._service_obligation, entry.request,
                              label=label)

    # ------------------------------------------------------------------
    # Conflict resolution (the heart of TLR)
    # ------------------------------------------------------------------
    def _accessed_in_txn(self, line_addr: int) -> tuple[bool, bool]:
        """(accessed, written) for conflict detection, counting both
        installed lines and misses issued from within the transaction."""
        line = self.cache.lookup(line_addr)
        accessed = bool(line and line.accessed)
        written = bool(line and line.spec_written)
        mshr = self.mshrs.get(line_addr)
        if mshr is not None and self.speculating and mshr.in_txn:
            accessed = True
            written = written or mshr.request.kind in (ReqKind.GETX,
                                                       ReqKind.UPG)
        return accessed, written

    def _conflicts(self, request: BusRequest) -> bool:
        if not self.speculating:
            return False
        accessed, written = self._accessed_in_txn(request.line)
        if not accessed:
            return False
        if request.kind.is_write:
            return True
        return written

    def _relaxation_ok(self, line_addr: int) -> bool:
        if not self._single_block_relax:
            return False
        if not self.deferred.only_line(line_addr):
            return False
        for m in self.mshrs.entries_view():
            if m.in_txn and m.request.line != line_addr:
                return False
        return True

    def _must_release_before_miss(self, new_line: int) -> bool:
        """Two situations force a release before taking a new miss:

        * the policy says so -- under the paper's timestamp policy, when
          the transaction still holds a relaxation-deferred request with
          an *earlier* timestamp: taking another miss could now
          deadlock, so strict timestamp order is enforced (Section 3.2);
        * the new miss targets a line we are ourselves deferring -- our
          own request would queue behind the very chain we are stalling
          (a self-wait cycle no probe can break, since the probe carries
          our own timestamp back to us).

        Every policy answers False for an empty deferred queue, so the
        early-out is behaviour-preserving.
        """
        deferred = self.deferred
        if not deferred:
            return False
        if deferred.has_line(new_line):
            return True
        return self.policy.must_release_before_miss(deferred,
                                                    self.current_ts)

    def _policy_ctx(self, request: BusRequest,
                    at_snoop: bool = False) -> ConflictContext:
        """Package one conflict for the contention policy."""
        _, written = self._accessed_in_txn(request.line)
        has_miss = any(m.in_txn and m.request.line != request.line
                       for m in self.mshrs.entries_view())
        return ConflictContext(
            line=request.line, requester=request.requester,
            holder=self.cpu_id, requester_ts=request.ts,
            holder_ts=self.current_ts, is_write=request.kind.is_write,
            holder_wrote=written,
            relaxation_ok=self._relaxation_ok(request.line),
            requester_prio=request.prio, holder_has_miss=has_miss,
            holder_retries=self.policy.retries, at_snoop=at_snoop,
            now=self.sim.now)

    def _decide(self, request: BusRequest) -> Decision:
        if not self._conflicts(request):
            return Decision.SERVE
        self.on_conflict_ts(request.ts)
        if not self.tlr_enabled:
            # Plain SLE: a data conflict simply kills the speculation.
            return Decision.LOSE
        verdict = self.policy.resolve(self._policy_ctx(request))
        if verdict is PolicyDecision.ABORT_HOLDER:
            return Decision.LOSE
        if verdict is PolicyDecision.ABORT_REQUESTER:
            return Decision.SERVE_ABORT
        # DEFER -- or NACK_RETRY past the order point, where a refusal
        # is no longer possible and retention falls back to deferral
        # (the chained-request corner of the NACK policy).
        return Decision.DEFER

    # ------------------------------------------------------------------
    # Bus-side handlers
    # ------------------------------------------------------------------
    # -- NACK-based retention (the alternative policy of Section 3) ----
    def would_nack(self, request: BusRequest) -> bool:
        """Snoop-time check under a NACK-retaining policy: refuse a
        conflicting request we would win, forcing the requester to
        retry.  Only data present in an exclusively-owned state can be
        retained this way."""
        if not self.policy.uses_nack:
            return False
        if not self.tlr_enabled or not self.speculating:
            return False
        line = self.cache.lookup(request.line)
        if line is None or line.state not in (State.MODIFIED,
                                              State.EXCLUSIVE):
            return False
        if not self._conflicts(request):
            return False
        self.on_conflict_ts(request.ts)
        verdict = self.policy.resolve(self._policy_ctx(request,
                                                       at_snoop=True))
        if verdict is PolicyDecision.NACK_RETRY:
            self.stats.nacks_sent += 1
            return True
        if verdict is PolicyDecision.ABORT_REQUESTER:
            # Refuse *and* kill: the requester's transaction restarts
            # before its retry (carried on the request; consumed by
            # handle_nack).  Encoded as our cpu id + 1 -- any truthy
            # value means "abort"; the offset lets the victim attribute
            # the kill to this holder without a new message field.
            request.abort_on_nack = self.cpu_id + 1
            self.stats.nacks_sent += 1
            return True
        return False  # the incoming request wins; it must be served

    def handle_nack(self, request: BusRequest) -> None:
        """Our request was refused: back off and re-arbitrate."""
        mshr = self.mshrs.get(request.line)
        if mshr is None or mshr.request.req_id != request.req_id:
            return
        self.stats.nacks_received += 1
        if self.obs is not None:
            self.obs.on_nack(self, request)
        self.policy.on_nacked(request)
        if request.abort_on_nack:
            flag = request.abort_on_nack
            holder = (flag - 1 if isinstance(flag, int)
                      and not isinstance(flag, bool) else -1)
            request.abort_on_nack = False
            if self.speculating and mshr.in_txn:
                self._handle_loss("aborted-by-holder", request.line,
                                  request.ts, holder)
        mshr.ordered = False
        request.order_time = None
        label = (f"nack-retry {request!r}" if self.sim.verbose_labels
                 else "nack-retry")
        self.sim.schedule(self.policy.nack_delay(request),
                          self._reissue_after_nack, request,
                          label=label)

    def _reissue_after_nack(self, request: BusRequest) -> None:
        mshr = self.mshrs.get(request.line)
        if mshr is None or mshr.request.req_id != request.req_id:
            return
        if self.speculating and mshr.in_txn:
            # Refresh the carried priority: it may have grown while the
            # request waited out the NACK.
            request.prio = self.policy.request_priority()
        self.bus.issue(request)

    def request_ordered(self, request: BusRequest, grant: State) -> None:
        """Our own request reached the global order point."""
        mshr = self.mshrs.get(request.line)
        if mshr is not None:
            mshr.ordered = True
        request.grant_state = grant

    def handle_forward(self, request: BusRequest) -> None:
        """The bus forwarded a request to us: we were the line's
        order-owner at the request's order point and must (eventually)
        supply data."""
        line_addr = request.line
        mshr = self.mshrs.get(line_addr)
        line = self.cache.lookup(line_addr)
        have_data = line is not None and line.state.valid
        if mshr is not None and (mshr.ordered or not have_data):
            # The incoming request sits *behind* ours in coherence order
            # (or we simply have no data): it chains behind our miss and
            # is served only after our own fill is consumed.  Serving it
            # early from a leftover shared copy would reorder it ahead of
            # our exclusive request -- a lost update.
            self._chain_behind_miss(mshr, request)
            return
        # Remaining pending case: an *unordered* upgrade with valid data.
        # The incoming request was ordered first, so it must be served
        # from the current data now (our upgrade converts to a GETX at
        # its own order point).  Chaining it would deadlock the upgrade.
        wb = self.evicting.pop(line_addr, None)
        if wb is not None:
            # Our writeback raced with this request and lost: cancel the
            # writeback and supply the data ourselves.
            self.bus.cancel(wb)
        if not have_data:
            raise RuntimeError(
                f"cpu{self.cpu_id}: forwarded {request!r} for a line we "
                "neither hold nor await -- protocol invariant broken")
        self._resolve_obligation(request, line)

    def _resolve_obligation(self, request: BusRequest, line: Line) -> None:
        """Decide and act on an obligation we can satisfy with data."""
        decision = self._decide(request)
        if decision is Decision.DEFER and line.state not in (
                State.MODIFIED, State.EXCLUSIVE):
            # Only exclusively-owned blocks are retainable (paper,
            # Figure 3 caption); a non-exclusive block's conflict cannot
            # be masked, so the transaction loses.
            decision = Decision.LOSE
        label = (f"svc {request!r}" if self.sim.verbose_labels else "svc")
        if decision is Decision.SERVE:
            self.sim.schedule(self._hit_latency,
                              self._service_obligation, request,
                              label=label)
        elif decision is Decision.DEFER:
            self._defer(request)
        elif decision is Decision.SERVE_ABORT:
            # Serve the data but kill the requester's transaction (the
            # ABORT_REQUESTER policy verdict): it consumes the value
            # outside any speculation the holder must order against.
            self._send_remote_abort(request)
            self.sim.schedule(self._hit_latency,
                              self._service_obligation, request,
                              label=label)
        else:
            self._handle_loss("conflict-lost", request.line, request.ts,
                              request.requester)
            self.sim.schedule(self._hit_latency,
                              self._service_obligation, request,
                              label=label)

    def _chain_behind_miss(self, mshr, request: BusRequest) -> None:
        """A request arrived for a line whose fill we still await: record
        the forward obligation, teach the requester its upstream neighbour
        (marker), and champion its timestamp upstream (probe)."""
        if any(s.kind.is_write for s in mshr.successors):
            raise RuntimeError(
                f"cpu{self.cpu_id}: forward after a GETX successor for "
                f"line {request.line:#x} -- bus order should prevent this")
        mshr.successors.append(request)
        self._send_marker(request)
        if request.ts is not None:
            self._propagate_probe(request.line, request.ts,
                                  origin=request.requester)
            if (self._conflicts(request)
                    and self.policy.resolve(self._policy_ctx(request))
                    is PolicyDecision.ABORT_HOLDER):
                # We already know we lose this line: restart now and pass
                # the data through when it arrives.
                mshr.pass_through = True
                self._handle_loss("conflict-lost-pending", request.line,
                                  request.ts, request.requester)
        elif self._conflicts(request) and not self.tlr_enabled:
            mshr.pass_through = True
            self._handle_loss("data-conflict-pending", request.line,
                              request.ts, request.requester)

    def _defer(self, request: BusRequest) -> None:
        self.deferred.push(request, self.sim.now)
        self.cache.pin(request.line)
        self.stats.requests_deferred += 1
        if self.monitor is not None:
            self.monitor.on_defer(self, request)
        if self.obs is not None:
            self.obs.on_defer(self, request)
        self._send_marker(request)

    def _send_marker(self, request: BusRequest) -> None:
        marker = Marker(line=request.line, sender=self.cpu_id,
                        req_id=request.req_id)
        target = self.bus.controllers.get(request.requester)
        if target is not None:
            self.stats.markers_sent += 1
            if self.obs is not None:
                self.obs.on_marker_sent(self, marker)
            label = (f"marker {request.line:#x}" if self.sim.verbose_labels
                     else "marker")
            self.datanet.send_control(target.handle_marker, marker,
                                      label=label)

    def _propagate_probe(self, line_addr: int, ts: Timestamp,
                         origin: int) -> None:
        chain = self.chains.get(line_addr)
        if chain is None:
            return
        if chain.queue_probe(ts):
            self._send_probe(chain.upstream, line_addr, ts, origin)

    def _send_remote_abort(self, request: BusRequest) -> None:
        """Tell the requester its transaction lost (ABORT_REQUESTER)."""
        target = self.bus.controllers.get(request.requester)
        if target is not None:
            label = (f"rabort {request.line:#x}" if self.sim.verbose_labels
                     else "rabort")
            self.datanet.send_control(target.remote_abort, request.line,
                                      self.current_ts, self.cpu_id,
                                      label=label)

    def remote_abort(self, line_addr: int, ts: Optional[Timestamp],
                     holder: int = -1) -> None:
        """A holder served our request but killed our speculation."""
        if self.speculating:
            self._handle_loss("aborted-by-holder", line_addr, ts,
                              holder)

    def _send_probe(self, target_id: int, line_addr: int, ts: Timestamp,
                    origin: int) -> None:
        target = self.bus.controllers.get(target_id)
        if target is None:
            return
        self.stats.probes_sent += 1
        probe = Probe(line=line_addr, ts=ts, origin=origin)
        if self.obs is not None:
            self.obs.on_probe_sent(self, probe)
        label = (f"probe {line_addr:#x}" if self.sim.verbose_labels
                 else "probe")
        self.datanet.send_control(target.handle_probe, probe, label=label)

    def handle_marker(self, marker: Marker) -> None:
        if self.obs is not None:
            self.obs.on_marker(self, marker)
        chain = self.chains.get(marker.line)
        if chain is None:
            return  # The miss already completed; the chain is gone.
        for ts in chain.learn_upstream(marker.sender):
            self._send_probe(marker.sender, marker.line, ts, origin=-1)

    def handle_probe(self, probe: Probe) -> None:
        if self.obs is not None:
            self.obs.on_probe(self, probe)
        mshr = self.mshrs.get(probe.line)
        if mshr is not None:
            # Mid-chain: forward the conflict upstream; if it also beats
            # our own transaction, concede this line now.
            self._propagate_probe(probe.line, probe.ts, probe.origin)
            if (self._conflicts_with_ts(probe.line, probe.ts)
                    and not self._relaxation_ok(probe.line)):
                mshr.pass_through = True
                self._handle_loss("probe-lost-pending", probe.line, probe.ts,
                                  probe.origin)
            return
        if self._conflicts_with_ts(probe.line, probe.ts):
            self.stats.probe_losses += 1
            self._handle_loss("probe-lost", probe.line, probe.ts,
                              probe.origin)

    def _conflicts_with_ts(self, line_addr: int,
                           ts: Optional[Timestamp]) -> bool:
        if not self.speculating or not self.tlr_enabled:
            return False
        accessed, _ = self._accessed_in_txn(line_addr)
        if not accessed and not self.deferred.has_line(line_addr):
            # A line we defer requests for is retained for the
            # transaction even if its access bit was swept by an
            # intervening restart.
            return False
        self.on_conflict_ts(ts)
        return self.policy.probe_beats(ts, self.current_ts)

    def handle_invalidation(self, request: BusRequest) -> None:
        """We hold a shared copy being invalidated.  Invalidations cannot
        be deferred (Section 3.1.2): speculating sharers misspeculate."""
        line = self.cache.lookup(request.line)
        self._clear_link(request.line)
        if line is not None and line.state.valid:
            was_accessed = line.accessed
            self._set_state(line, State.INVALID)
            line.clear_speculative()
            if self.speculating and was_accessed:
                self.upgrade_violations[request.line] += 1
                self.on_conflict_ts(request.ts)
                self._handle_loss("invalidated", request.line, request.ts,
                                  request.requester)
        else:
            mshr = self.mshrs.get(request.line)
            if mshr is not None and mshr.request.kind is ReqKind.GETS:
                mshr.fill_invalid = True
                if self.speculating and mshr.in_txn:
                    # The write was ordered between our transactional read
                    # and its fill: the read's value is dead on arrival,
                    # and invalidations cannot be deferred -- restart.
                    self.upgrade_violations[request.line] += 1
                    self.on_conflict_ts(request.ts)
                    self._handle_loss("invalidated-in-flight", request.line,
                                      request.ts,
                                      request.requester)
        if self.monitor is not None:
            self.monitor.on_line_state(self, request.line)
        self._wake_watchers(request.line)

    def upgrade_granted(self, request: BusRequest) -> None:
        """Our UPG completed at its order point (no data needed)."""
        mshr = self.mshrs.release(request.line)
        self.chains.pop(request.line, None)
        line = self.cache.lookup(request.line)
        if line is not None:
            self._set_state(line, State.MODIFIED)
        if self.monitor is not None:
            self.monitor.on_line_state(self, request.line)
        self._finish_request(request, list(mshr.waiters),
                             list(mshr.successors),
                             pass_through=mshr.pass_through)

    def writeback_ordered(self, request: BusRequest) -> None:
        self.evicting.pop(request.line, None)
        self.bus.complete(request)

    def handle_data(self, request: BusRequest) -> None:
        """The fill for our outstanding request arrived."""
        mshr = self.mshrs.get(request.line)
        if mshr is None or mshr.request.req_id != request.req_id:
            return  # Stale delivery (request superseded); ignore.
        if self.obs is not None:
            self.obs.on_data(self, request)
        self.mshrs.release(request.line)
        self.chains.pop(request.line, None)
        grant = request.grant_state
        if grant is None:
            grant = State.SHARED
        if request.kind is ReqKind.GETX:
            grant = State.MODIFIED
        try:
            line = self.cache.install(request.line, grant)
        except CapacityError:
            self._resource_overflow(request.line)
            line = self.cache.install(request.line, grant)
        if mshr.fill_invalid:
            self._set_state(line, State.INVALID)
        elif (self.speculating and mshr.in_txn
                and (request.ts is None or request.ts == self.current_ts)):
            # A transactional fill is part of the access set the moment it
            # arrives (the paper sets access bits at fetch): chained
            # successors must see the conflict even before the (possibly
            # restarted) program re-touches the line.
            line.accessed = True
            if request.kind is ReqKind.GETX:
                line.spec_written = True
            self._spec_touched[request.line] = line
        if self.monitor is not None:
            self.monitor.on_line_state(self, request.line)
        self._wake_watchers(request.line)
        self._finish_request(request, list(mshr.waiters),
                             list(mshr.successors),
                             pass_through=mshr.pass_through)

    def _finish_request(self, request: BusRequest,
                        waiters: list[Callable[[], None]],
                        successors: list[BusRequest],
                        pass_through: bool) -> None:
        self.cache.unpin(request.line)
        self.bus.complete(request)
        if pass_through and successors:
            # We lost while the miss was in flight: hand the data straight
            # on *before* letting any local access at it.  The original
            # transaction's waiters are epoch-dead; a restarted attempt
            # may have merged a retry onto this MSHR, and it must observe
            # the line as gone (and re-request behind the new owner)
            # rather than peek at data that now belongs downstream.
            for successor in successors:
                self._service_obligation(successor)
            for waiter in waiters:
                waiter()
            return
        for waiter in waiters:
            waiter()
        for successor in successors:
            line = self.cache.lookup(request.line)
            if line is None or not line.state.valid:
                # Forced-invalid fill or an earlier obligation in this
                # batch already surrendered the line: pass data on.
                self.bus.deliver_data(successor, self.cpu_id)
                continue
            self._resolve_obligation(successor, line)

    # ------------------------------------------------------------------
    # Obligation service, loss handling, eviction
    # ------------------------------------------------------------------
    def _service_obligation(self, request: BusRequest) -> None:
        """Supply data for ``request`` and adjust our local state."""
        if self.obs is not None:
            self.obs.on_obligation_serviced(self, request)
        line = self.cache.lookup(request.line)
        # The serve decision may have been made an event earlier, before
        # a restarted transaction re-touched the line.  Losing a line the
        # live transaction has accessed is a conflict loss and must
        # restart it, or two transactions would consume the same value.
        lose_after = (line is not None and line.state.valid
                      and self.speculating
                      and line.accessed
                      and (request.kind.is_write or line.spec_written))
        if line is not None and line.state.valid:
            if request.kind is ReqKind.GETX:
                self._set_state(line, State.INVALID)
                line.clear_speculative()
                self._clear_link(request.line)
                self._wake_watchers(request.line)
            else:
                self._set_state(line, State.OWNED)
        if self.mshrs.get(request.line) is None \
                and not self.deferred.has_line(request.line):
            # Keep the line pinned while further deferred entries for it
            # remain queued, so an eviction cannot race their service.
            self.cache.unpin(request.line)
        if self.monitor is not None:
            self.monitor.on_line_state(self, request.line)
        self.bus.deliver_data(request, self.cpu_id)
        if lose_after:
            self.on_conflict_ts(request.ts)
            self._handle_loss("conflict-at-service", request.line,
                              request.ts, request.requester)

    def _handle_loss(self, reason: str, line_addr: int,
                     incoming_ts: Optional[Timestamp],
                     aborter: int = -1) -> None:
        """We lost a conflict: give up retained ownership (service the
        deferred queue in order), clear speculative state, restart.

        ``aborter`` is the cpu id whose request/probe caused the loss
        (-1 when unattributable, e.g. relaxation revocation).  It is
        consumed only by tap observers (the abort-attribution profiler)
        via the ``loss`` tap arguments; nothing on the simulation path
        reads it.  Call sites must pass it *positionally*: the tap shim
        forwards only positional arguments to consumers.
        """
        if not self.speculating:
            return
        if self.monitor is not None:
            self.monitor.on_loss(self, reason, line_addr, incoming_ts)
        for spec_line in self._speculative_lines():
            spec_line.clear_speculative()
        self._spec_touched.clear()
        self.speculating = False
        self.current_ts = None
        self._service_deferred()
        self.stats.misspeculations += 1
        self.on_misspeculation(reason, line_addr)

    def _resource_overflow(self, line_addr: int) -> None:
        """A fill found no victim: drop speculation (resource fallback)."""
        if self.speculating:
            self.stats.resource_fallbacks += 1
            self.abort_speculation()
            self.on_misspeculation("capacity", line_addr)
        else:
            raise RuntimeError(
                f"cpu{self.cpu_id}: cache set unexpectedly unevictable for "
                f"line {line_addr:#x}")

    def _evict_dirty(self, line: Line) -> None:
        """A dirty line left the cache hierarchy: write it back."""
        if not line.state.dirty and line.state is not State.EXCLUSIVE:
            return
        request = BusRequest(kind=ReqKind.WB, line=line.addr,
                             requester=self.cpu_id)
        self.evicting[line.addr] = request
        self.stats.writebacks += 1
        self.bus.issue(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "TLR" if self.tlr_enabled else "SLE"
        spec = f" spec ts={self.current_ts}" if self.speculating else ""
        return (f"<CacheController cpu{self.cpu_id} {mode}{spec} "
                f"mshrs={len(self.mshrs)} deferred={len(self.deferred)}>")
