"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates any of the paper's figures/tables from a terminal without
writing code, and runs individual workloads under chosen schemes::

    python -m repro figure9 --procs 2,4,8,16 --jobs 4
    python -m repro figure11 --cpus 16 --json
    python -m repro run single-counter --scheme TLR --cpus 8 --ops 2048
    python -m repro coarse-vs-fine
    python -m repro policies --policy timestamp,backoff --jobs 4
    python -m repro sched --schedulers rr,cfs --threads-per-cpu 2
    python -m repro verify --policy requester-wins --seeds 25
    python -m repro list

Every experiment accepts the sweep-engine options:

``--jobs N``       fan independent runs out over N worker processes
                   (default 1 = serial; results are bit-identical
                   either way);
``--timeout S``    per-run wall-clock budget in seconds (livelocked
                   runs are retried with bumped seeds, then reported
                   as failures without aborting the sweep);
``--json``         emit the result as JSON (stable ``to_dict`` schema)
                   instead of tables;
``--no-cache``     disable the on-disk result cache;
``--cache-dir D``  cache location (default ``$REPRO_CACHE_DIR`` or
                   ``~/.cache/repro-tlr``).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Optional

from repro.harness import report
from repro.harness.config import SchedConfig, SystemConfig
from repro.harness.experiments import (AppResult, PolicyGridResult,
                                       SchedGridResult, SweepResult)
from repro.harness.jobs import JobResult, submit
from repro.harness.parallel import FailedRun
from repro.harness.runner import RunResult
from repro.harness.spec import (SIZE_PARAM, WORKLOAD_BUILDERS, JobSpec,
                                RunSpec, scheme_from_str)

SCHEME_ALIASES = ("BASE", "SLE", "TLR", "TLR-STRICT-TS", "MCS")


def _parse_procs(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(","))


def _engine_opts(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = one per CPU)")
    cmd.add_argument("--timeout", type=float, default=None,
                     help="per-run wall-clock budget in seconds")
    cmd.add_argument("--json", action="store_true",
                     help="emit the result as JSON")
    cmd.add_argument("--no-cache", action="store_true",
                     help="disable the on-disk result cache")
    cmd.add_argument("--cache-dir", type=str, default=None,
                     help="result cache directory (default "
                          "$REPRO_CACHE_DIR or ~/.cache/repro-tlr)")


def _engine_kwargs(args) -> dict:
    cache = False if args.no_cache else (args.cache_dir or True)
    return {"jobs": args.jobs, "timeout": args.timeout, "cache": cache}


def _submit(spec: JobSpec, args) -> JobResult:
    """Every CLI subcommand funnels its work through here -- the same
    :func:`repro.harness.jobs.submit` the HTTP service calls."""
    return submit(spec, **_engine_kwargs(args))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLR (Rajwar & Goodman, ASPLOS 2002) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    def sweep_cmd(name: str, help_text: str):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--procs", type=_parse_procs,
                         default=(2, 4, 8, 16),
                         help="comma-separated processor counts")
        cmd.add_argument("--ops", type=int, default=None,
                         help="total operations (scaled default)")
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--plot", action="store_true",
                         help="also draw an ascii plot")
        _engine_opts(cmd)
        return cmd

    sweep_cmd("figure8", "multiple-counter sweep (coarse/no-conflicts)")
    sweep_cmd("figure9", "single-counter sweep (fine/high-conflict)")
    sweep_cmd("figure10", "linked-list sweep (dynamic conflicts)")

    fig7 = sub.add_parser("figure7", help="queue-on-data intuition")
    fig7.add_argument("--cpus", type=int, default=4)
    fig7.add_argument("--ops", type=int, default=256)
    _engine_opts(fig7)

    fig11 = sub.add_parser("figure11", help="application suite")
    fig11.add_argument("--cpus", type=int, default=16)
    fig11.add_argument("--apps", type=str, default=None,
                       help="comma-separated subset of app names")
    _engine_opts(fig11)

    _engine_opts(sub.add_parser("coarse-vs-fine",
                                help="mp3d lock granularity"))
    _engine_opts(sub.add_parser("rmw-predictor",
                                help="BASE vs BASE-no-opt"))

    verify_cmd = sub.add_parser(
        "verify", help="serializability oracle + invariant monitors "
                       "over a seed fan-out")
    verify_cmd.add_argument(
        "workloads", nargs="*", metavar="workload",
        help="workloads to verify (default: single-counter, "
             "multiple-counter, linked-list)")
    verify_cmd.add_argument("--scheme", type=str, default="TLR",
                            help="|".join(SCHEME_ALIASES))
    verify_cmd.add_argument("--cpus", type=int, default=4)
    verify_cmd.add_argument("--seeds", type=int, default=100,
                            help="seeds to fan each workload across")
    verify_cmd.add_argument("--ops", type=int, default=96,
                            help="workload size per run")
    verify_cmd.add_argument("--chaos", type=int, default=0,
                            help="kernel schedule-chaos amplitude "
                                 "(0 = deterministic FIFO within a cycle)")
    verify_cmd.add_argument("--base-seed", type=int, default=0)
    verify_cmd.add_argument("--litmus", action="store_true",
                            help="also run the TM litmus conformance "
                                 "scenarios (write skew, publication, "
                                 "atomicity); each failing seed is "
                                 "shrunk and auto-captures a record "
                                 "log")
    verify_cmd.add_argument("--no-shrink", action="store_true",
                            help="report failing seeds without shrinking")
    verify_cmd.add_argument("--policy", type=str, default=None,
                            help="contention policy to verify under "
                                 "(default: the paper's timestamp "
                                 "deferral)")
    _engine_opts(verify_cmd)

    policies_cmd = sub.add_parser(
        "policies", help="contention-policy grid (policies x workloads "
                         "x processors), every run oracle-checked")
    policies_cmd.add_argument(
        "--policy", type=str, default=None,
        help="comma-separated policies (default: all four)")
    policies_cmd.add_argument(
        "--workloads", type=str, default=None,
        help="comma-separated workloads (default: single-counter, "
             "linked-list, ocean-cont, barnes)")
    policies_cmd.add_argument("--procs", type=_parse_procs,
                              default=(2, 4, 8),
                              help="comma-separated processor counts")
    policies_cmd.add_argument("--seeds", type=int, default=3,
                              help="seeds per grid cell")
    policies_cmd.add_argument("--ops", type=int, default=96,
                              help="microbenchmark size per run")
    policies_cmd.add_argument("--app-scale", type=int, default=12,
                              help="application-kernel scale per run")
    policies_cmd.add_argument("--base-seed", type=int, default=0)
    policies_cmd.add_argument(
        "--backend", choices=SystemConfig.KNOWN_BACKENDS,
        default="reference",
        help="event-core backend for every grid cell (bit-identical; "
             "batched is faster at high CPU counts)")
    _engine_opts(policies_cmd)

    sched_cmd = sub.add_parser(
        "sched", help="preemptive-scheduler grid (schedulers x quanta "
                      "x policies x workloads) with more threads than "
                      "CPUs, every run oracle-checked")
    sched_cmd.add_argument(
        "--schedulers", type=str, default=None,
        help="comma-separated scheduler cores (default: rr,mlfq,cfs)")
    sched_cmd.add_argument(
        "--quanta", type=str, default=None,
        help="comma-separated timer quanta in cycles (default: 200,800)")
    sched_cmd.add_argument(
        "--policy", type=str, default=None,
        help="comma-separated contention policies (default: "
             "timestamp,nack)")
    sched_cmd.add_argument(
        "--workloads", type=str, default=None,
        help="comma-separated workloads (default: single-counter, "
             "linked-list)")
    sched_cmd.add_argument("--cpus", type=int, default=4,
                           help="runtime threads (thread contexts)")
    sched_cmd.add_argument("--threads-per-cpu", type=int, default=2,
                           help="multiplexing ratio: threads per CPU "
                                "slot (cpus // this = slots)")
    sched_cmd.add_argument("--migrate", action="store_true",
                           help="allow threads to resume on any slot "
                                "(pay the migration penalty)")
    sched_cmd.add_argument("--seeds", type=int, default=2,
                           help="seeds per grid cell")
    sched_cmd.add_argument("--ops", type=int, default=96,
                           help="microbenchmark size per run")
    sched_cmd.add_argument("--app-scale", type=int, default=12,
                           help="application-kernel scale per run")
    sched_cmd.add_argument("--base-seed", type=int, default=0)
    sched_cmd.add_argument(
        "--backend", choices=SystemConfig.KNOWN_BACKENDS,
        default="reference",
        help="event-core backend for every grid cell (bit-identical; "
             "batched is faster at high CPU counts)")
    _engine_opts(sched_cmd)

    trend_cmd = sub.add_parser(
        "trend", help="diff BENCH_*.json artifacts against a baseline "
                      "git ref (or artifact directory); exits non-zero "
                      "on regressions beyond the threshold")
    trend_cmd.add_argument(
        "ref", nargs="?", default=None,
        help="baseline git ref, e.g. HEAD~1 (default HEAD)")
    trend_cmd.add_argument(
        "--against", type=str, default=None,
        help="baseline git ref or a directory of artifacts "
             "(alternative spelling of the positional ref)")
    trend_cmd.add_argument(
        "--artifacts", type=str, default=".",
        help="directory holding the current artifacts (default: cwd)")
    trend_cmd.add_argument(
        "--repo", type=str, default=None,
        help="git repository to resolve the ref in (default: the "
             "artifacts directory)")
    trend_cmd.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative change that counts as a regression "
             "(default 0.05 = 5%%)")
    trend_cmd.add_argument("--json", action="store_true",
                           help="emit the report as JSON")
    trend_cmd.add_argument(
        "--history", type=int, default=None, metavar="N",
        help="instead of a two-point diff, show per-metric value "
             "series across HEAD~N..HEAD plus the working tree "
             "(changing metrics only; informational, never fails)")
    trend_cmd.add_argument(
        "--all-metrics", action="store_true",
        help="with --history: include metrics that never changed")

    perf_cmd = sub.add_parser(
        "perf", help="measure simulator throughput (events/sec, wall "
                     "seconds, peak RSS) on the profiled hot workloads")
    perf_cmd.add_argument("--quick", action="store_true",
                          help="quarter-size workloads (CI smoke)")
    perf_cmd.add_argument("--repeats", type=int, default=3,
                          help="runs per workload; best wall time wins")
    perf_cmd.add_argument("--backend", choices=SystemConfig.KNOWN_BACKENDS,
                          default="reference",
                          help="kernel backend to measure "
                               "(default reference)")
    perf_cmd.add_argument("--ab", action="store_true",
                          help="measure both backends interleaved in one "
                               "process; records batched rows and the "
                               "speedup table under config.backends and "
                               "fails on any cross-backend fingerprint "
                               "mismatch")
    perf_cmd.add_argument("--out", type=str, default=None,
                          help="write the BENCH-schema payload to this "
                               "path (e.g. BENCH_perf.json)")
    perf_cmd.add_argument("--baseline", type=str, default=None,
                          help="an earlier perf payload (file or git "
                               "ref) to record speedups against")
    perf_cmd.add_argument("--check", type=str, default=None,
                          metavar="REF|PATH",
                          help="fail if events/sec dropped more than "
                               "--max-drop vs this reference payload")
    perf_cmd.add_argument("--max-drop", type=float, default=0.25,
                          help="allowed relative events/sec drop for "
                               "--check (default 0.25)")
    perf_cmd.add_argument("--json", action="store_true",
                          help="emit the payload as JSON on stdout")

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clean the on-disk result cache")
    cache_cmd.add_argument("--cache-dir", type=str, default=None,
                           help="cache location (default "
                                "$REPRO_CACHE_DIR or ~/.cache/repro-tlr)")
    cache_cmd.add_argument("--prune", action="store_true",
                           help="remove entries from superseded "
                                "fingerprint-schema versions")
    cache_cmd.add_argument("--ttl", type=float, default=None,
                           metavar="SECONDS",
                           help="with --prune: also evict current-"
                                "version entries older than SECONDS "
                                "(by mtime, oldest first)")
    cache_cmd.add_argument("--clear", action="store_true",
                           help="remove every entry (all versions)")
    cache_cmd.add_argument("--stats", action="store_true",
                           help="entry count, byte footprint and the "
                                "hit/miss counters persisted by the "
                                "service")

    serve_cmd = sub.add_parser(
        "serve", help="run the HTTP job-queue service (POST JobSpec "
                      "envelopes to /jobs; progress on /jobs/<id>/events; "
                      "OpenMetrics on /metrics)")
    serve_cmd.add_argument("--host", type=str, default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8023,
                           help="listen port (0 = ephemeral)")
    serve_cmd.add_argument("--workers", type=int, default=2,
                           help="concurrent jobs (worker threads)")
    serve_cmd.add_argument("--regen", action="store_true",
                           help="before serving, re-simulate BENCH "
                                "artifact cells whose fingerprints are "
                                "missing from the cache")
    serve_cmd.add_argument("--verbose", action="store_true",
                           help="log every HTTP request")
    _engine_opts(serve_cmd)

    runner = sub.add_parser("run", help="run one workload")
    runner.add_argument("workload", choices=sorted(WORKLOAD_BUILDERS))
    runner.add_argument("--scheme", type=str, default="TLR",
                        help="|".join(SCHEME_ALIASES))
    runner.add_argument("--cpus", type=int, default=8)
    runner.add_argument("--ops", type=int, default=None,
                        help="workload size: total operations for the "
                             "microbenchmarks, iterations per thread for "
                             "the application kernels")
    runner.add_argument("--seed", type=int, default=0)
    runner.add_argument("--metrics", action="store_true",
                        help="also print the run's conflict telemetry "
                             "(counters, gauges, histograms)")
    runner.add_argument("--format", choices=("table", "openmetrics"),
                        default="table",
                        help="telemetry rendering for --metrics: the "
                             "human table or OpenMetrics text "
                             "exposition format")
    runner.add_argument("--record", type=str, default=None, metavar="PATH",
                        help="capture the run's binary record log to "
                             "PATH (always executes: recorded runs "
                             "never replay from the cache)")
    runner.add_argument("--sched", type=str, default=None,
                        metavar="SCHEDULER",
                        help="preemptive scheduler core (rr|mlfq|cfs): "
                             "multiplex the threads over fewer CPU "
                             "slots, preempting at instruction "
                             "boundaries")
    runner.add_argument("--quantum", type=int, default=200,
                        help="scheduler time slice in cycles "
                             "(default 200)")
    runner.add_argument("--threads-per-cpu", type=int, default=2,
                        help="multiplexing ratio for --sched: threads "
                             "sharing one CPU slot (default 2)")
    runner.add_argument("--migrate", action="store_true",
                        help="with --sched: let threads run on any "
                             "slot instead of a pinned home slot")
    runner.add_argument("--backend", choices=SystemConfig.KNOWN_BACKENDS,
                        default="reference",
                        help="event-core backend (bit-identical results; "
                             "REPRO_KERNEL_BACKEND overrides)")
    _engine_opts(runner)

    replay_cmd = sub.add_parser(
        "replay", help="time-travel debugger over a record log: replay "
                       "purity check by default; --seek/--line/--cpu "
                       "answer state and history queries from the log "
                       "alone, without re-simulating")
    replay_cmd.add_argument("log", help="record log path (.rlog)")
    replay_cmd.add_argument("--seek", type=int, default=None,
                            metavar="CYCLE",
                            help="reconstruct machine state at CYCLE")
    replay_cmd.add_argument("--line", type=lambda t: int(t, 0),
                            default=None, metavar="ADDR",
                            help="history of one cache line (hex ok)")
    replay_cmd.add_argument("--cpu", type=int, default=None,
                            help="history of one CPU's records")
    replay_cmd.add_argument("--since", type=int, default=0,
                            help="history window start cycle")
    replay_cmd.add_argument("--until", type=int, default=None,
                            help="history window end cycle")
    replay_cmd.add_argument("--spans", action="store_true",
                            help="list transaction windows "
                                 "(cpu, begin, end, outcome)")
    replay_cmd.add_argument("--sched", action="store_true",
                            help="list scheduler slot-occupancy windows "
                                 "(slot, thread, on, off) from the "
                                 "OP_SCHED records; with --seek, "
                                 "state_at already shows who was "
                                 "on-CPU at that cycle")
    replay_cmd.add_argument("--counts", action="store_true",
                            help="histogram of record ops / tap kinds")
    replay_cmd.add_argument("--dump", action="store_true",
                            help="dump decoded records (respects "
                                 "--since/--until)")
    replay_cmd.add_argument("--diff", type=str, default=None,
                            metavar="OTHER",
                            help="compare against another log and "
                                 "report the first diverging record")
    replay_cmd.add_argument("--vcd", type=str, default=None,
                            metavar="OUT",
                            help="export waveform signals as VCD")

    profile_cmd = sub.add_parser(
        "profile", help="per-lock contention profile and abort "
                        "attribution: run a workload live, or fold an "
                        "existing record log (--from-log) without "
                        "re-simulating")
    profile_cmd.add_argument("workload", nargs="?", default=None,
                             choices=sorted(WORKLOAD_BUILDERS),
                             help="workload to run live (omit when "
                                  "using --from-log)")
    profile_cmd.add_argument("--from-log", type=str, default=None,
                             metavar="PATH",
                             help="fold a v3 record log's transaction "
                                  "records instead of running anything")
    profile_cmd.add_argument("--scheme", type=str, default="TLR",
                             help="|".join(SCHEME_ALIASES))
    profile_cmd.add_argument("--cpus", type=int, default=8)
    profile_cmd.add_argument("--ops", type=int, default=None,
                             help="workload size (same knob as "
                                  "``repro run --ops``)")
    profile_cmd.add_argument("--seed", type=int, default=0)
    profile_cmd.add_argument("--format",
                             choices=("markdown", "json", "folded"),
                             default="markdown",
                             help="markdown report, the raw snapshot "
                                  "as JSON, or folded stacks for "
                                  "flamegraph tooling")

    sub.add_parser("list", help="list workloads and schemes")
    return parser


def _config(seed: int = 0) -> SystemConfig:
    return SystemConfig(seed=seed)


def _emit_sweep(result, args) -> int:
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(report.sweep_table(result))
    if result.failures:
        print(report.failures_table(result.failures))
    if args.plot:
        print()
        print(report.ascii_series(result))
    telemetry = report.telemetry_line(result.extra.get("telemetry"))
    if telemetry:
        print(telemetry, file=sys.stderr)
    return 0


def _do_sweep(args, name: str) -> int:
    params = {"processor_counts": list(args.procs),
              "config": _config(args.seed)}
    if args.ops:
        params["total_ops" if name == "figure10"
               else "total_increments"] = args.ops
    job = _submit(JobSpec.sweep(name, **params), args)
    result = SweepResult.from_dict(job.result)
    if job.telemetry is not None:
        result.extra["telemetry"] = job.telemetry
    return _emit_sweep(result, args)


def _print_telemetry(job: JobResult) -> None:
    if job.cached:
        print("job replayed from cache (nothing simulated)",
              file=sys.stderr)
        return
    line = report.telemetry_line(job.telemetry)
    if line:
        print(line, file=sys.stderr)


def _render_verify_payload(payload: dict) -> str:
    """Human summary of a serialized VerifySuiteResult payload."""
    lines = []
    for name, entry in (payload.get("workloads") or {}).items():
        status = ("PASS" if entry["ok"]
                  else f"FAIL ({len(entry['failures'])} seeds)")
        lines.append(
            f"{name}: {status} -- {entry['seeds']} seeds, "
            f"{entry['total_txns']} txns verified, "
            f"{entry['cache_hits']} cached, "
            f"{entry['wall_seconds']:.1f}s")
    shrunk = payload.get("shrunk")
    if shrunk:
        spec = shrunk.get("spec") or {}
        config = spec.get("config") or {}
        problem = (shrunk.get("result") or {}).get("error") or ", ".join(
            (shrunk.get("result") or {}).get("violations") or ["?"])[:200]
        lines += ["",
                  f"minimal reproduction after "
                  f"{shrunk.get('shrink_steps', 0)} shrink steps: "
                  f"{spec.get('workload')} cpus={config.get('num_cpus')} "
                  f"seed={config.get('seed')}",
                  f"failure: {problem}", "", shrunk.get("trace", "")]
    return "\n".join(lines)


def _do_replay(args) -> int:
    """The ``repro replay`` subcommand: every mode except the default
    purity check reads the log alone -- no re-simulation."""
    from repro.record import (LogFormatError, Timeline, export_vcd,
                              first_divergence, load_log, replay_log)
    try:
        with open(args.log, "rb") as fh:
            raw = fh.read()
        image = load_log(raw)
    except (OSError, LogFormatError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2

    queried = False
    timeline = Timeline(image)
    if args.seek is not None:
        queried = True
        print(timeline.state_at(args.seek).render())
    if args.line is not None:
        queried = True
        history = timeline.line_history(args.line, since=args.since,
                                        until=args.until)
        print(f"line {args.line:#x}: {len(history)} records in "
              f"[{args.since}, {args.until if args.until is not None else timeline.final_time}]")
        for record in history:
            print("  " + record.render())
    if args.cpu is not None:
        queried = True
        history = timeline.cpu_history(args.cpu, since=args.since,
                                       until=args.until)
        print(f"cpu{args.cpu}: {len(history)} records")
        for record in history:
            print("  " + record.render())
    if args.spans:
        queried = True
        for cpu, begin, end, outcome in timeline.txn_spans():
            print(f"cpu{cpu}: t={begin}..{end} ({outcome})")
    if args.sched:
        queried = True
        spans = timeline.sched_spans()
        if not spans:
            print("no scheduler records (scheduler-off log)")
        for slot, thread, on, off in spans:
            print(f"slot{slot}: thread{thread} t={on}..{off} "
                  f"({off - on} cycles)")
    if args.counts:
        queried = True
        for key, count in sorted(timeline.counts().items()):
            print(f"{key:<20} {count}")
    if args.dump:
        queried = True
        for record in timeline.records:
            if record.time < args.since:
                continue
            if args.until is not None and record.time > args.until:
                break
            print(record.render())
    if args.vcd:
        queried = True
        with open(args.vcd, "w") as fh:
            changes = export_vcd(timeline, fh)
        print(f"wrote {args.vcd} ({changes} value changes)")
    if args.diff:
        try:
            other = load_log(args.diff)
        except (OSError, LogFormatError) as exc:
            print(f"replay: {exc}", file=sys.stderr)
            return 2
        divergence = first_divergence(image, other)
        if divergence is None:
            print("logs identical (record streams match)")
            return 0
        print(divergence.render())
        return 1
    if queried:
        return 0

    report_out = replay_log(raw)
    print(report_out.render())
    return 0 if report_out.ok else 1


def _do_profile(args) -> int:
    """The ``repro profile`` subcommand: live per-lock contention
    profile of one run, or the identical profile folded post-hoc from
    a record log."""
    from repro.obs.profile import render_folded, render_markdown

    if args.from_log and args.workload:
        print("profile: give a workload or --from-log, not both",
              file=sys.stderr)
        return 2
    if args.from_log:
        from repro.obs.causal import profile_from_log
        from repro.record import LogFormatError
        try:
            snapshot = profile_from_log(args.from_log)
        except (OSError, LogFormatError) as exc:
            print(f"profile: {exc}", file=sys.stderr)
            return 2
        title = f"contention profile of {args.from_log}"
    elif args.workload:
        scheme_name = args.scheme.upper().replace("_", "-")
        if scheme_name not in SCHEME_ALIASES:
            print(f"unknown scheme {args.scheme}; one of "
                  f"{' '.join(SCHEME_ALIASES)}", file=sys.stderr)
            return 2
        scheme = scheme_from_str(scheme_name.replace("-", "_"))
        workload_args = ({SIZE_PARAM[args.workload]: args.ops}
                         if args.ops is not None else {})
        config = SystemConfig(num_cpus=args.cpus, scheme=scheme,
                              seed=args.seed)
        spec = RunSpec(workload=args.workload, config=config,
                       workload_args=workload_args)
        from repro.harness.runner import execute_workload
        result = execute_workload(spec.build_workload(), spec.config,
                                  validate=spec.validate)
        snapshot = (result.metrics or {}).get("profile")
        if snapshot is None:
            print("profile: run produced no profile (config.metrics "
                  "off?)", file=sys.stderr)
            return 1
        title = (f"contention profile: {args.workload} under "
                 f"{scheme.value} on {args.cpus} CPUs")
    else:
        print("profile: give a workload to run or --from-log PATH",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.format == "folded":
        print(render_folded(snapshot), end="")
    else:
        print(render_markdown(snapshot, title=title), end="")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        print("workloads:")
        for name in sorted(WORKLOAD_BUILDERS):
            print(f"  {name}")
        print("schemes:", " ".join(SCHEME_ALIASES))
        return 0

    if args.command in ("figure8", "figure9", "figure10"):
        return _do_sweep(args, args.command)

    if args.command == "figure7":
        job = _submit(JobSpec.sweep("figure7", num_cpus=args.cpus,
                                    total_increments=args.ops), args)
        if args.json:
            print(json.dumps(job.result, indent=2))
        else:
            print(report.dict_table(job.result,
                                    "figure 7: queue on data (TLR)"))
            _print_telemetry(job)
        return 0

    if args.command == "figure11":
        apps = args.apps.split(",") if args.apps else None
        job = _submit(JobSpec.sweep("figure11", num_cpus=args.cpus,
                                    apps=apps), args)
        if args.json:
            print(json.dumps(job.result, indent=2))
            return 0
        results = {name: AppResult.from_dict(app)
                   for name, app in job.result.items()}
        print(report.figure11_table(results))
        print(report.speedup_summary(results))
        for app in results.values():
            if app.failures:
                print(report.failures_table(app.failures), file=sys.stderr)
        _print_telemetry(job)
        return 0

    if args.command == "coarse-vs-fine":
        job = _submit(JobSpec.sweep("coarse-vs-fine"), args)
        if args.json:
            print(json.dumps(job.result, indent=2))
        else:
            print(report.dict_table(job.result,
                                    "mp3d: coarse vs fine grain"))
            _print_telemetry(job)
        return 0

    if args.command == "rmw-predictor":
        job = _submit(JobSpec.sweep("rmw-predictor"), args)
        if args.json:
            print(json.dumps(job.result, indent=2))
        else:
            print(report.dict_table(job.result, "BASE / BASE-no-opt"))
            _print_telemetry(job)
        return 0

    if args.command == "verify":
        scheme_name = args.scheme.upper().replace("_", "-")
        if scheme_name not in SCHEME_ALIASES:
            print(f"unknown scheme {args.scheme}; one of "
                  f"{' '.join(SCHEME_ALIASES)}", file=sys.stderr)
            return 2
        for name in args.workloads:
            if name not in WORKLOAD_BUILDERS:
                print(f"unknown workload {name}; one of "
                      f"{' '.join(sorted(WORKLOAD_BUILDERS))}",
                      file=sys.stderr)
                return 2
        from repro.policies import POLICY_NAMES
        if args.policy is not None and args.policy not in POLICY_NAMES:
            print(f"unknown policy {args.policy}; one of "
                  f"{' '.join(POLICY_NAMES)}", file=sys.stderr)
            return 2
        workloads = args.workloads or None
        if args.litmus:
            from repro.verify.explorer import DEFAULT_VERIFY_WORKLOADS
            from repro.workloads.litmus import LITMUS_WORKLOADS
            workloads = (list(args.workloads
                              or DEFAULT_VERIFY_WORKLOADS)
                         + list(LITMUS_WORKLOADS))
        job = _submit(JobSpec.verify(
            workloads=workloads,
            scheme=scheme_from_str(scheme_name.replace("-", "_")),
            num_cpus=args.cpus, seeds=args.seeds, ops=args.ops,
            chaos=args.chaos, base_seed=args.base_seed,
            shrink=not args.no_shrink, policy=args.policy), args)
        if args.json:
            print(json.dumps(job.result, indent=2))
        else:
            print(_render_verify_payload(job.result))
            _print_telemetry(job)
        return 0 if job.result["ok"] else 1

    if args.command == "policies":
        from repro.policies import POLICY_NAMES
        policies = (tuple(args.policy.split(","))
                    if args.policy else None)
        for name in policies or ():
            if name not in POLICY_NAMES:
                print(f"unknown policy {name}; one of "
                      f"{' '.join(POLICY_NAMES)}", file=sys.stderr)
                return 2
        workloads = (tuple(args.workloads.split(","))
                     if args.workloads else None)
        for name in workloads or ():
            if name not in WORKLOAD_BUILDERS:
                print(f"unknown workload {name}; one of "
                      f"{' '.join(sorted(WORKLOAD_BUILDERS))}",
                      file=sys.stderr)
                return 2
        job = _submit(JobSpec.sweep(
            "policies", policies=policies, workloads=workloads,
            processor_counts=list(args.procs), seeds=args.seeds,
            ops=args.ops, app_scale=args.app_scale,
            base_seed=args.base_seed, backend=args.backend), args)
        grid = PolicyGridResult.from_dict(job.result)
        if args.json:
            print(json.dumps(job.result, indent=2))
        else:
            print(report.policy_grid_table(grid))
            _print_telemetry(job)
        return 0 if grid.ok else 1

    if args.command == "sched":
        from repro.policies import POLICY_NAMES
        from repro.sched import KNOWN_SCHEDULERS
        schedulers = (tuple(args.schedulers.split(","))
                      if args.schedulers else None)
        for name in schedulers or ():
            if name not in KNOWN_SCHEDULERS:
                print(f"unknown scheduler {name}; one of "
                      f"{' '.join(KNOWN_SCHEDULERS)}", file=sys.stderr)
                return 2
        policies = (tuple(args.policy.split(","))
                    if args.policy else None)
        for name in policies or ():
            if name not in POLICY_NAMES:
                print(f"unknown policy {name}; one of "
                      f"{' '.join(POLICY_NAMES)}", file=sys.stderr)
                return 2
        workloads = (tuple(args.workloads.split(","))
                     if args.workloads else None)
        for name in workloads or ():
            if name not in WORKLOAD_BUILDERS:
                print(f"unknown workload {name}; one of "
                      f"{' '.join(sorted(WORKLOAD_BUILDERS))}",
                      file=sys.stderr)
                return 2
        quanta = (tuple(int(q) for q in args.quanta.split(","))
                  if args.quanta else None)
        job = _submit(JobSpec.sched(
            schedulers=schedulers, quanta=quanta, policies=policies,
            workloads=workloads, num_cpus=args.cpus,
            threads_per_cpu=args.threads_per_cpu, migrate=args.migrate,
            seeds=args.seeds, ops=args.ops, app_scale=args.app_scale,
            base_seed=args.base_seed, backend=args.backend), args)
        grid = SchedGridResult.from_dict(job.result)
        if args.json:
            print(json.dumps(job.result, indent=2))
        else:
            print(report.sched_grid_table(grid))
            _print_telemetry(job)
        return 0 if grid.ok else 1

    if args.command == "trend":
        from repro.harness import trend
        if args.ref and args.against:
            print("give either a positional ref or --against, not both",
                  file=sys.stderr)
            return 2
        against = args.against or args.ref or "HEAD"
        if args.history is not None:
            try:
                history = trend.history_report(
                    args.history, artifacts_dir=args.artifacts,
                    repo=args.repo)
            except trend.TrendError as exc:
                print(f"trend: {exc}", file=sys.stderr)
                return 2
            changed_only = not args.all_metrics
            if args.json:
                print(json.dumps(history.to_dict(changed_only=changed_only),
                                 indent=2))
            else:
                print(history.to_markdown(changed_only=changed_only))
            return 0
        try:
            result = trend.trend_report(
                against=against, artifacts_dir=args.artifacts,
                repo=args.repo, threshold=args.threshold)
        except trend.TrendError as exc:
            print(f"trend: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(result.to_markdown())
        return 0 if result.ok else 1

    if args.command == "run":
        scheme_name = args.scheme.upper().replace("_", "-")
        if scheme_name not in SCHEME_ALIASES:
            print(f"unknown scheme {args.scheme}; one of "
                  f"{' '.join(SCHEME_ALIASES)}", file=sys.stderr)
            return 2
        scheme = scheme_from_str(scheme_name.replace("-", "_"))
        workload_args = ({SIZE_PARAM[args.workload]: args.ops}
                         if args.ops is not None else {})
        config = SystemConfig(num_cpus=args.cpus, scheme=scheme,
                              seed=args.seed,
                              kernel_backend=args.backend)
        if args.sched:
            from repro.sched import KNOWN_SCHEDULERS
            if args.sched not in KNOWN_SCHEDULERS:
                print(f"unknown scheduler {args.sched}; one of "
                      f"{' '.join(KNOWN_SCHEDULERS)}", file=sys.stderr)
                return 2
            config = replace(config, sched=SchedConfig(
                scheduler=args.sched, quantum=args.quantum,
                threads_per_cpu=args.threads_per_cpu,
                migrate=args.migrate))
        spec = RunSpec(workload=args.workload, config=config,
                       workload_args=workload_args)
        if args.record:
            from repro.record import record_run
            recorded = record_run(spec)
            with open(args.record, "wb") as fh:
                fh.write(recorded.log)
            outcome = recorded.result
            print(f"{args.workload} under {scheme.value} on "
                  f"{args.cpus} CPUs:")
            print(f"  cycles: {outcome.cycles}")
            for key, value in outcome.stats.summary().items():
                print(f"  {key}: {value}")
            print(f"record log: {args.record} ({len(recorded.log)} bytes, "
                  f"fingerprint {recorded.fingerprint[:12]}…)")
            if recorded.error:
                print(f"run failed: {recorded.error}", file=sys.stderr)
                return 1
            return 0
        job = _submit(JobSpec.run(spec), args)
        if not job.result["ok"]:
            failed = FailedRun.from_dict(job.result["outcome"])
            print(f"run failed after {failed.attempts} attempts: "
                  f"{failed.error}: {failed.message}", file=sys.stderr)
            return 1
        outcome = RunResult.from_dict(job.result["outcome"])
        if args.json:
            print(json.dumps(job.result["outcome"], indent=2))
            return 0
        print(f"{args.workload} under {scheme.value} on {args.cpus} CPUs:")
        print(f"  cycles: {outcome.cycles}")
        for key, value in outcome.stats.summary().items():
            print(f"  {key}: {value}")
        if args.metrics:
            if args.format == "openmetrics":
                from repro.obs import openmetrics_from_dict
                print(openmetrics_from_dict(outcome.metrics), end="")
            else:
                table = report.metrics_table(outcome.metrics)
                print(table if table else "  (no telemetry: run was "
                                          "cached before metrics or "
                                          "config.metrics is off)")
        return 0

    if args.command == "replay":
        return _do_replay(args)

    if args.command == "profile":
        return _do_profile(args)

    if args.command == "perf":
        from repro.harness import perf
        baseline = None
        if args.baseline:
            try:
                baseline = perf.load_reference(args.baseline)
            except (FileNotFoundError, json.JSONDecodeError) as exc:
                print(f"perf: {exc}", file=sys.stderr)
                return 2
        job = submit(JobSpec.perf(quick=args.quick, repeats=args.repeats,
                                  baseline=baseline,
                                  backend=args.backend, ab=args.ab))
        payload = job.result
        if args.out:
            from pathlib import Path
            Path(args.out).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(perf.render_table(payload))
        if args.ab:
            mismatches = perf.check_backend_fingerprints(payload)
            for mismatch in mismatches:
                print(f"backend divergence: {mismatch}", file=sys.stderr)
            if mismatches:
                return 1
        if args.check:
            try:
                reference = perf.load_reference(args.check)
            except (FileNotFoundError, json.JSONDecodeError) as exc:
                print(f"perf: {exc}", file=sys.stderr)
                return 2
            failures = perf.check_throughput(payload, reference,
                                             max_drop=args.max_drop)
            for failure in failures:
                print(f"perf regression: {failure}", file=sys.stderr)
            if failures:
                return 1
            print(f"perf check vs {args.check}: ok "
                  f"(events/sec within {args.max_drop:.0%})")
        return 0

    if args.command == "cache":
        from repro.harness.cache import ResultCache
        store = ResultCache(args.cache_dir)
        if args.clear:
            print(f"removed {store.clear()} entries from {store.root}")
            return 0
        if args.prune:
            removed = store.prune(ttl=args.ttl)
            what = ("superseded/expired" if args.ttl is not None
                    else "superseded")
            print(f"pruned {removed} {what} entries from {store.root}")
        elif args.ttl is not None:
            print("--ttl requires --prune", file=sys.stderr)
            return 2
        print(f"cache root: {store.root}")
        print(f"current schema: {store.version_dir.name} "
              f"({len(store)} entries)")
        if args.stats:
            stats = store.stats()
            print(f"size: {stats['bytes']} bytes "
                  f"across {stats['entries']} entries")
            print(f"lifetime hits/misses: {stats['hits']}/"
                  f"{stats['misses']}")
        return 0

    if args.command == "serve":
        from repro.serve import serve
        engine = _engine_kwargs(args)
        serve(args.host, args.port, workers=args.workers,
              jobs=engine["jobs"], cache=engine["cache"],
              timeout=engine["timeout"], regen=args.regen,
              verbose=args.verbose)
        return 0

    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
