"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates any of the paper's figures/tables from a terminal without
writing code, and runs individual workloads under chosen schemes::

    python -m repro figure9 --procs 2,4,8,16
    python -m repro figure11 --cpus 16
    python -m repro run single-counter --scheme TLR --cpus 8 --ops 2048
    python -m repro coarse-vs-fine
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.harness import experiments, report
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.runner import run as run_workload
from repro.workloads.apps import ALL_APPS, mp3d
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)

WORKLOADS: dict[str, Callable] = {
    "multiple-counter": multiple_counter,
    "single-counter": single_counter,
    "linked-list": linked_list,
    **ALL_APPS,
    "mp3d-coarse": lambda n, scale=None: (
        mp3d(n, scale, coarse=True) if scale else mp3d(n, coarse=True)),
}

SCHEME_ALIASES = {
    "BASE": SyncScheme.BASE,
    "SLE": SyncScheme.SLE,
    "TLR": SyncScheme.TLR,
    "TLR-STRICT-TS": SyncScheme.TLR_STRICT_TS,
    "MCS": SyncScheme.MCS,
}


def _parse_procs(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(","))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TLR (Rajwar & Goodman, ASPLOS 2002) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    def sweep_cmd(name: str, help_text: str):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--procs", type=_parse_procs,
                         default=(2, 4, 8, 16),
                         help="comma-separated processor counts")
        cmd.add_argument("--ops", type=int, default=None,
                         help="total operations (scaled default)")
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--plot", action="store_true",
                         help="also draw an ascii plot")
        return cmd

    sweep_cmd("figure8", "multiple-counter sweep (coarse/no-conflicts)")
    sweep_cmd("figure9", "single-counter sweep (fine/high-conflict)")
    sweep_cmd("figure10", "linked-list sweep (dynamic conflicts)")

    fig7 = sub.add_parser("figure7", help="queue-on-data intuition")
    fig7.add_argument("--cpus", type=int, default=4)
    fig7.add_argument("--ops", type=int, default=256)

    fig11 = sub.add_parser("figure11", help="application suite")
    fig11.add_argument("--cpus", type=int, default=16)
    fig11.add_argument("--apps", type=str, default=None,
                       help="comma-separated subset of app names")

    sub.add_parser("coarse-vs-fine", help="mp3d lock granularity")
    sub.add_parser("rmw-predictor", help="BASE vs BASE-no-opt")

    runner = sub.add_parser("run", help="run one workload")
    runner.add_argument("workload", choices=sorted(WORKLOADS))
    runner.add_argument("--scheme", type=str, default="TLR",
                        help="|".join(SCHEME_ALIASES))
    runner.add_argument("--cpus", type=int, default=8)
    runner.add_argument("--ops", type=int, default=None,
                        help="workload size: total operations for the "
                             "microbenchmarks, iterations per thread for "
                             "the application kernels")
    runner.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list workloads and schemes")
    return parser


def _config(seed: int = 0) -> SystemConfig:
    return SystemConfig(seed=seed)


def _do_sweep(args, name: str) -> int:
    kwargs = {"processor_counts": args.procs,
              "config": _config(args.seed)}
    if name == "figure8":
        if args.ops:
            kwargs["total_increments"] = args.ops
        result = experiments.figure8_multiple_counter(**kwargs)
    elif name == "figure9":
        if args.ops:
            kwargs["total_increments"] = args.ops
        result = experiments.figure9_single_counter(**kwargs)
    else:
        if args.ops:
            kwargs["total_ops"] = args.ops
        result = experiments.figure10_linked_list(**kwargs)
    print(report.sweep_table(result))
    if args.plot:
        print()
        print(report.ascii_series(result))
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        print("workloads:")
        for name in sorted(WORKLOADS):
            print(f"  {name}")
        print("schemes:", " ".join(SCHEME_ALIASES))
        return 0

    if args.command in ("figure8", "figure9", "figure10"):
        return _do_sweep(args, args.command)

    if args.command == "figure7":
        result = experiments.figure7_queue_on_data(
            num_cpus=args.cpus, total_increments=args.ops)
        print(report.dict_table(result, "figure 7: queue on data (TLR)"))
        return 0

    if args.command == "figure11":
        apps = args.apps.split(",") if args.apps else None
        results = experiments.figure11_applications(num_cpus=args.cpus,
                                                    apps=apps)
        print(report.figure11_table(results))
        print(report.speedup_summary(results))
        return 0

    if args.command == "coarse-vs-fine":
        print(report.dict_table(experiments.table_coarse_vs_fine(),
                                "mp3d: coarse vs fine grain"))
        return 0

    if args.command == "rmw-predictor":
        print(report.dict_table(experiments.table_rmw_predictor(),
                                "BASE / BASE-no-opt"))
        return 0

    if args.command == "run":
        scheme_name = args.scheme.upper().replace("_", "-")
        if scheme_name not in SCHEME_ALIASES:
            print(f"unknown scheme {args.scheme}; one of "
                  f"{' '.join(SCHEME_ALIASES)}", file=sys.stderr)
            return 2
        scheme = SCHEME_ALIASES[scheme_name]
        builder = WORKLOADS[args.workload]
        workload = (builder(args.cpus, args.ops) if args.ops is not None
                    else builder(args.cpus))
        config = SystemConfig(num_cpus=args.cpus, scheme=scheme,
                              seed=args.seed)
        result = run_workload(workload, config)
        print(f"{args.workload} under {scheme.value} on {args.cpus} CPUs:")
        print(f"  cycles: {result.cycles}")
        for key, value in result.stats.summary().items():
            print(f"  {key}: {value}")
        return 0

    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
