"""The workload-facing thread API.

Workloads are written as generator coroutines against :class:`ThreadEnv`,
in the style of an ordinary lock-based threaded program::

    def worker(env):
        for _ in range(n):
            def body(env):
                v = yield env.read(counter, pc="cnt.load")
                yield env.compute(10)
                yield env.write(counter, v + 1, pc="cnt.store")
            yield from env.critical(lock, body, pc="cnt")
            yield env.compute(env.fair_delay())

The crucial piece is :meth:`ThreadEnv.critical`: the critical-section
*body* is a re-invocable generator function.  Under BASE/MCS it runs once
with the lock genuinely held.  Under SLE/TLR the hardware may elide the
lock and run the body speculatively; on misspeculation the processor
throws :class:`RestartSignal` into the coroutine and ``critical`` simply
re-executes the body from scratch -- the software-visible equivalent of a
register-checkpoint restore, giving failure atomicity for free.  The
signal carries the nesting depth of the speculation root so a conflict in
a nested section restarts the whole transaction.

Everything the body reads or writes must live in simulated memory (word
addresses via ``read``/``write``); Python locals are recomputed on
restart, which is exactly what makes them safe.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, Optional

from repro.cpu import isa
from repro.cpu.checkpoint import RestartSignal


class ThreadEnv:
    """Per-thread handle: operation constructors plus the CS protocol."""

    def __init__(self, processor, lock_api, num_cpus: int,
                 rng: random.Random):
        self.processor = processor
        self.lock_api = lock_api
        self.num_cpus = num_cpus
        self.rng = rng
        self.cs_completed = 0
        # Interned ops: workload loops issue the same (addr, pc) reads
        # and fixed-cycle computes millions of times, and the ops are
        # never mutated after construction, so per-thread caches replace
        # a dataclass construction per issue with a dict probe.  Writes
        # are not interned (their values vary per iteration).
        self._read_ops: dict = {}
        self._compute_ops: dict = {}

    @property
    def cpu_id(self) -> int:
        return self.processor.cpu_id

    # ------------------------------------------------------------------
    # Plain operations (yield the returned op)
    # ------------------------------------------------------------------
    def read(self, addr: int, pc: str = "", lock: bool = False) -> isa.Read:
        key = (addr, pc, lock)
        op = self._read_ops.get(key)
        if op is None:
            op = self._read_ops[key] = isa.Read(addr=addr, pc=pc,
                                                is_lock=lock)
        return op

    def write(self, addr: int, value: int, pc: str = "",
              lock: bool = False) -> isa.Write:
        return isa.Write(addr=addr, value=value, pc=pc, is_lock=lock)

    def compute(self, cycles: int) -> isa.Compute:
        if cycles < 0:
            cycles = 0
        op = self._compute_ops.get(cycles)
        if op is None:
            op = self._compute_ops[cycles] = isa.Compute(cycles=cycles)
        return op

    def fair_delay(self, lo: int = 20, hi: int = 200) -> int:
        """The paper's post-release randomized delay: after releasing a
        lock, wait a minimum random interval so another processor has an
        opportunity to acquire it (fairness methodology, Section 5.1)."""
        return self.rng.randint(lo, hi)

    # ------------------------------------------------------------------
    # Critical sections
    # ------------------------------------------------------------------
    def critical(self, lock_addr: int,
                 body: Callable[["ThreadEnv"], Generator],
                 pc: str = "cs") -> Generator:
        """Run ``body`` under ``lock_addr`` with restart semantics."""
        my_depth = self.processor.cs_depth
        while True:
            try:
                yield from self.lock_api.acquire(self, lock_addr, pc)
                self.processor.enter_cs()
                result = yield from body(self)
                yield from self.lock_api.release(self, lock_addr, pc)
                self.processor.exit_cs()
                self.cs_completed += 1
                return result
            except RestartSignal as signal:
                if signal.depth != my_depth:
                    raise
                continue

    def acquire(self, lock_addr: int, pc: str = "cs") -> Generator:
        """Bare acquire (for irregular locking patterns; prefer
        :meth:`critical`, which alone provides restart handling)."""
        yield from self.lock_api.acquire(self, lock_addr, pc)
        self.processor.enter_cs()

    def release(self, lock_addr: int, pc: str = "cs") -> Generator:
        yield from self.lock_api.release(self, lock_addr, pc)
        self.processor.exit_cs()
