"""Workload packaging.

A :class:`Workload` bundles everything the harness needs to run one
benchmark: per-thread program factories, the shared address map they were
built against, and a validation hook that checks the final architectural
memory against the workload's sequential specification -- the equivalent
of the paper's functional checker simulator (Section 5.3), catching any
serializability violation the memory system might introduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.coherence.memory import ValueStore
from repro.runtime.env import ThreadEnv

ThreadFactory = Callable[[ThreadEnv], Generator]
Validator = Callable[[ValueStore], None]


class ValidationError(AssertionError):
    """The final memory image violates the workload's specification."""


@dataclass
class Workload:
    """One runnable benchmark instance."""

    name: str
    threads: list[ThreadFactory]
    validate: Optional[Validator] = None
    lock_addrs: set[int] = field(default_factory=set)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def check(self, store: ValueStore) -> None:
        """Run the functional validation; raises ValidationError."""
        if self.validate is not None:
            self.validate(store)
