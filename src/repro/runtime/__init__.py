"""Thread-program runtime: the workload-facing API."""

from repro.runtime.env import ThreadEnv
from repro.runtime.program import (ThreadFactory, ValidationError, Validator,
                                   Workload)

__all__ = ["ThreadEnv", "Workload", "ThreadFactory", "Validator",
           "ValidationError"]
