"""Scheduler cores: who runs next on a CPU slot, and for how long.

A core is pure policy -- it owns the ready set and answers three
questions (``pick``, ``should_preempt``, ``quantum_for``) but never
touches the simulator, the processors or any clock other than the
``now`` values the engine hands it.  That keeps every core trivially
deterministic: no RNG, no wall time, iteration order fixed by thread
id.  The engine (:mod:`repro.sched.engine`) owns mechanism: timer
events, deschedule/reschedule, migration penalties and accounting.

``eligible`` is the engine's slot-affinity filter (home-slot pinning
when migration is off, everything otherwise); cores treat it as an
opaque predicate so affinity policy lives in exactly one place.

Three cores, same interface:

* ``rr``   -- round-robin: FIFO ready queue, fixed quantum, a
  preempted thread goes to the tail.
* ``mlfq`` -- multi-level feedback queue: a thread that burns its full
  quantum is demoted one level (levels double the quantum); all
  threads are boosted back to the top level on a fixed period so
  demoted lock holders cannot starve.
* ``cfs``  -- fair scheduler: per-thread virtual runtime, always pick
  the minimum, preempt when a waiter has run strictly less than the
  incumbent would have after its slice.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

#: Scheduler names accepted by :class:`repro.harness.config.SchedConfig`
#: (``"none"`` is the off switch and never reaches ``make_scheduler``).
KNOWN_SCHEDULERS = ("rr", "mlfq", "cfs")

Eligible = Callable[[int], bool]


class SchedulerCore:
    """Interface every scheduler core implements."""

    name = "?"

    def __init__(self, num_threads: int, num_slots: int, quantum: int):
        self.num_threads = num_threads
        self.num_slots = num_slots
        self.quantum = quantum

    def admit(self, thread: int) -> None:
        """``thread`` becomes runnable for the first time."""
        raise NotImplementedError

    def requeue(self, thread: int, ran: int) -> None:
        """``thread`` was preempted after ``ran`` on-CPU cycles."""
        raise NotImplementedError

    def pick(self, slot: int, eligible: Eligible) -> Optional[int]:
        """Pop and return the next thread to run on ``slot``."""
        raise NotImplementedError

    def peek(self, slot: int, eligible: Eligible) -> Optional[int]:
        """Like :meth:`pick` but without removing the thread."""
        raise NotImplementedError

    def should_preempt(self, slot: int, thread: int, ran: int,
                       eligible: Eligible) -> bool:
        """Should the engine preempt ``thread`` (on ``slot`` for
        ``ran`` cycles)?  Must return False when no eligible waiter
        exists -- that invariant is what keeps the scheduler layer
        inert at ``threads == cpus`` (see the property test)."""
        raise NotImplementedError

    def on_done(self, thread: int) -> None:
        """``thread`` finished; forget it."""

    def on_tick(self, now: int) -> None:
        """Periodic hook, called once per slot per timer tick."""

    def quantum_for(self, thread: int) -> int:
        return self.quantum


class RoundRobinScheduler(SchedulerCore):
    """FIFO rotation with a fixed quantum."""

    name = "rr"

    def __init__(self, num_threads: int, num_slots: int, quantum: int):
        super().__init__(num_threads, num_slots, quantum)
        self._ready: deque[int] = deque()

    def admit(self, thread: int) -> None:
        self._ready.append(thread)

    def requeue(self, thread: int, ran: int) -> None:
        self._ready.append(thread)

    def peek(self, slot: int, eligible: Eligible) -> Optional[int]:
        for thread in self._ready:
            if eligible(thread):
                return thread
        return None

    def pick(self, slot: int, eligible: Eligible) -> Optional[int]:
        for thread in self._ready:
            if eligible(thread):
                self._ready.remove(thread)
                return thread
        return None

    def should_preempt(self, slot: int, thread: int, ran: int,
                       eligible: Eligible) -> bool:
        return (ran >= self.quantum
                and self.peek(slot, eligible) is not None)

    def on_done(self, thread: int) -> None:
        if thread in self._ready:
            self._ready.remove(thread)


class MlfqScheduler(SchedulerCore):
    """Multi-level feedback queue with periodic priority boost.

    Level ``k`` gets quantum ``quantum * 2**k``; a thread that used its
    whole slice is demoted, one that blocked/finished early keeps its
    level.  Every ``boost_period`` cycles everything returns to level
    0, which bounds how long a demoted (e.g. lock-holding) thread can
    be deprioritised -- the anti-starvation half of the livelock test.
    """

    name = "mlfq"
    levels = 3

    def __init__(self, num_threads: int, num_slots: int, quantum: int):
        super().__init__(num_threads, num_slots, quantum)
        self._queues: list[deque[int]] = [deque()
                                          for _ in range(self.levels)]
        self._level: dict[int, int] = {}
        self.boost_period = quantum * 8 * max(1, self.levels)
        self._next_boost = self.boost_period

    def admit(self, thread: int) -> None:
        self._level[thread] = 0
        self._queues[0].append(thread)

    def requeue(self, thread: int, ran: int) -> None:
        level = self._level.get(thread, 0)
        if ran >= self.quantum_for(thread):
            level = min(level + 1, self.levels - 1)
        self._level[thread] = level
        self._queues[level].append(thread)

    def peek(self, slot: int, eligible: Eligible) -> Optional[int]:
        for queue in self._queues:
            for thread in queue:
                if eligible(thread):
                    return thread
        return None

    def pick(self, slot: int, eligible: Eligible) -> Optional[int]:
        for queue in self._queues:
            for thread in queue:
                if eligible(thread):
                    queue.remove(thread)
                    return thread
        return None

    def should_preempt(self, slot: int, thread: int, ran: int,
                       eligible: Eligible) -> bool:
        return (ran >= self.quantum_for(thread)
                and self.peek(slot, eligible) is not None)

    def on_done(self, thread: int) -> None:
        level = self._level.pop(thread, None)
        if level is not None and thread in self._queues[level]:
            self._queues[level].remove(thread)

    def on_tick(self, now: int) -> None:
        if now < self._next_boost:
            return
        self._next_boost += self.boost_period
        boosted = [t for queue in self._queues[1:] for t in queue]
        for queue in self._queues[1:]:
            queue.clear()
        for thread in sorted(boosted):
            self._level[thread] = 0
            self._queues[0].append(thread)

    def quantum_for(self, thread: int) -> int:
        return self.quantum * (2 ** self._level.get(thread, 0))


class CfsScheduler(SchedulerCore):
    """Completely-fair-style scheduler on virtual runtime.

    Each thread accumulates the cycles it has been on-CPU; the ready
    thread with the least accumulated runtime always runs next (ties
    break on thread id, keeping the core deterministic).  The quantum
    acts as the minimum granularity: the incumbent is preempted only
    after a full slice *and* only when a waiter is genuinely behind.
    """

    name = "cfs"

    def __init__(self, num_threads: int, num_slots: int, quantum: int):
        super().__init__(num_threads, num_slots, quantum)
        self._vruntime: dict[int, int] = {}
        self._ready: set[int] = set()

    def admit(self, thread: int) -> None:
        self._vruntime.setdefault(thread, 0)
        self._ready.add(thread)

    def requeue(self, thread: int, ran: int) -> None:
        self._vruntime[thread] = self._vruntime.get(thread, 0) + ran
        self._ready.add(thread)

    def peek(self, slot: int, eligible: Eligible) -> Optional[int]:
        best = None
        for thread in sorted(self._ready):
            if not eligible(thread):
                continue
            if best is None or self._vruntime[thread] < self._vruntime[best]:
                best = thread
        return best

    def pick(self, slot: int, eligible: Eligible) -> Optional[int]:
        best = self.peek(slot, eligible)
        if best is not None:
            self._ready.discard(best)
        return best

    def should_preempt(self, slot: int, thread: int, ran: int,
                       eligible: Eligible) -> bool:
        if ran < self.quantum:
            return False
        waiter = self.peek(slot, eligible)
        if waiter is None:
            return False
        incumbent = self._vruntime.get(thread, 0) + ran
        return self._vruntime[waiter] < incumbent

    def on_done(self, thread: int) -> None:
        self._ready.discard(thread)
        self._vruntime.pop(thread, None)


_CORES = {cls.name: cls for cls in
          (RoundRobinScheduler, MlfqScheduler, CfsScheduler)}


def make_scheduler(name: str, num_threads: int, num_slots: int,
                   quantum: int) -> SchedulerCore:
    """Instantiate the named core; raises ``ValueError`` on unknowns."""
    try:
        cls = _CORES[name]
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; "
                         f"known: {sorted(_CORES)}") from None
    return cls(num_threads, num_slots, quantum)
