"""repro.sched -- preemptive OS scheduling over the simulated machine.

The paper's stress mode that single-threaded-per-CPU runs never reach:
a lock holder (or speculating elider) yanked off its CPU mid critical
section.  This package multiplexes N workload threads over M simulated
CPU *slots* (M = ``num_cpus // threads_per_cpu``): pluggable scheduler
cores (:mod:`repro.sched.core`) decide who runs, and the engine
(:mod:`repro.sched.engine`) drives kernel timer events that deschedule
the victim at an instruction boundary -- aborting in-flight elision via
the processor's existing deschedule contract -- and reschedule the next
runnable thread, optionally migrating it across slots.

The subsystem is strictly an overlay: when ``SystemConfig.sched`` is
off (the default), no engine is constructed, no events are scheduled
and no RNG is drawn, so scheduler-off runs stay bit-identical to the
golden fingerprints.  Even when attached, the engine preempts only if
another runnable thread is waiting for the slot, so ``threads == cpus``
configurations remain behaviourally inert (property-tested).
"""

from repro.sched.core import (KNOWN_SCHEDULERS, CfsScheduler, MlfqScheduler,
                              RoundRobinScheduler, SchedulerCore,
                              make_scheduler)
from repro.sched.engine import (SCHED_IN, SCHED_MIGRATE, SCHED_OUT,
                                SchedEngine)

__all__ = [
    "KNOWN_SCHEDULERS", "CfsScheduler", "MlfqScheduler",
    "RoundRobinScheduler", "SchedulerCore", "make_scheduler",
    "SCHED_IN", "SCHED_MIGRATE", "SCHED_OUT", "SchedEngine",
]
