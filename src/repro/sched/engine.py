"""The preemption engine: timer interrupts over the simulated machine.

:class:`SchedEngine` multiplexes the workload's N threads over
``M = num_cpus // threads_per_cpu`` CPU *slots*.  Each workload thread
keeps its hardware context (cache, write buffer, speculation state) --
like an SMT context -- but at most M contexts are *running* at any
instant; the rest sit descheduled via the processor's existing
:meth:`~repro.cpu.processor.Processor.deschedule` contract.  That
contract is precisely the paper's context-switch stress: descheduling
a speculating processor aborts its in-flight elision (counted in
``restart_reasons["deschedule"]``), and TLR's lock-free claim is that
the *other* threads keep committing while the victim is off-CPU.

Mechanism notes (the invariants tests rely on):

* **Timer ticks.**  One self-rescheduling kernel event per slot, period
  = quantum, first firing staggered by the slot index so slots do not
  all switch on the same cycle.  A tick handle follows the kernel's
  recycled-``Event`` contract: the firing callback nulls the holder
  field before doing anything else.  Ticks stop rescheduling once every
  thread finished, so the kernel queue drains and end-of-run deadlock
  detection keeps working.
* **Inertness.**  A core may only request preemption when an eligible
  waiter exists (see ``SchedulerCore.should_preempt``), so with
  ``threads == cpus`` the engine never preempts, never migrates, draws
  no RNG and writes nothing into ``stats.extra`` -- result fingerprints
  match scheduler-off bit-for-bit.
* **Migration.**  Home slot = ``thread % slots``; with ``migrate=True``
  slots steal any ready thread.  A migration is charged when a thread
  resumes on a different slot than it last ran on.  Both context
  switches and migrations are modelled as pure *time* penalties before
  the resume -- the victim's cache contents are left alone, because
  flushing owned (M/O) lines would require write-backs that perturb
  coherence far beyond what a scheduler should do; DESIGN §8 records
  the trade-off.
* **Accounting.**  Preemption/migration/context-switch-abort totals go
  to ``stats.extra`` (only ever written when an event actually
  happens) and to the obs registry via the attached
  ``MachineMetrics``; per-thread on-CPU cycles accumulate in
  :attr:`oncpu` for per-thread latency attribution at finalize.
* **Record.**  Listeners (``machine.sched_listeners``) receive
  ``(time, kind, slot, thread)`` for every switch-in/out/migration;
  the flight recorder turns them into ``OP_SCHED`` records so replay
  can answer "who was on CPU at cycle T".
"""

from __future__ import annotations

from typing import Optional

from repro.sched.core import make_scheduler

#: ``kind`` values shared with the record log's ``OP_SCHED`` payload.
SCHED_IN = 0        # thread switched onto a slot
SCHED_OUT = 1       # thread switched off a slot (preempt or finish)
SCHED_MIGRATE = 2   # thread is resuming on a different slot


class SchedEngine:
    """Preemptive multiplexer for one :class:`~repro...Machine` run."""

    def __init__(self, machine, num_threads: int):
        cfg = machine.config.sched
        self.machine = machine
        self.sim = machine.sim
        self.cfg = cfg
        self.num_threads = num_threads
        self.threads_per_cpu = cfg.threads_per_cpu
        self.slots = max(1, machine.config.num_cpus // cfg.threads_per_cpu)
        self.quantum = cfg.quantum
        self.core = make_scheduler(cfg.scheduler, num_threads, self.slots,
                                   cfg.quantum)
        self.migrate = cfg.migrate
        self.stats = machine.stats
        self.listeners = machine.sched_listeners
        self.obs = None                     # MachineMetrics, if attached

        self.running: list[Optional[int]] = [None] * self.slots
        self.ran_since: list[int] = [0] * self.slots
        self.thread_slot: dict[int, int] = {}
        self.last_slot: dict[int, int] = {}
        self.oncpu: dict[int, int] = {t: 0 for t in range(num_threads)}
        self.preemptions = 0
        self.migrations = 0
        self.context_switch_aborts = 0
        self._finished = 0
        self._ticks: list[Optional[object]] = [None] * self.slots
        self._tick_labels = [f"sched-tick{s}" for s in range(self.slots)]
        # Slot affinity in one place: home-pinned unless migration is on.
        if self.migrate:
            self._eligible = [(lambda t: True)] * self.slots
        else:
            self._eligible = [
                (lambda t, _s=s: t % self.slots == _s)
                for s in range(self.slots)]

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Park every thread, fill the slots, arm the timers.  Called
        by ``Machine.run_workload`` after programs are attached and
        before the simulation runs."""
        self.obs = getattr(self.machine.processors[0], "obs", None)
        for thread in range(self.num_threads):
            proc = self.machine.processors[thread]
            proc.on_finish = self._on_thread_finish
            proc.deschedule()
            self.core.admit(thread)
        for slot in range(self.slots):
            self._dispatch(slot, initial=True)
        for slot in range(self.slots):
            # Stagger first firings by the slot index so slot switches
            # never all land on one cycle.
            self._ticks[slot] = self.sim.schedule(
                self.quantum + slot, self._tick, slot,
                label=self._tick_labels[slot])

    def thread_on_slot(self, slot: int) -> Optional[int]:
        return self.running[slot]

    def thread_on_context(self, cpu_id: int) -> int:
        """The workload thread bound to hardware context ``cpu_id``.
        In the slot-overlay model contexts are per-thread, so this is
        the identity map -- the seam exists so span keys survive any
        future shared-context design."""
        return cpu_id

    # ------------------------------------------------------------------
    # timer interrupt

    def _tick(self, slot: int) -> None:
        self._ticks[slot] = None    # handle is recycled after firing
        if self._finished >= self.num_threads:
            return                  # let the kernel queue drain
        self.core.on_tick(self.sim.now)
        current = self.running[slot]
        if current is not None:
            ran = self.sim.now - self.ran_since[slot]
            if self.core.should_preempt(slot, current, ran,
                                        self._eligible[slot]):
                self._preempt(slot)
        if self.running[slot] is None:
            self._dispatch(slot)
        self._ticks[slot] = self.sim.schedule(
            self.quantum, self._tick, slot, label=self._tick_labels[slot])

    # ------------------------------------------------------------------
    # switching

    def _preempt(self, slot: int) -> None:
        thread = self.running[slot]
        proc = self.machine.processors[thread]
        was_speculating = proc.spec.active
        proc.deschedule()           # aborts in-flight elision if active
        ran = max(0, self.sim.now - self.ran_since[slot])
        self.oncpu[thread] += ran
        self.running[slot] = None
        self.thread_slot.pop(thread, None)
        self.core.requeue(thread, ran)
        self.preemptions += 1
        self.stats.extra["sched.preemptions"] += 1
        if was_speculating:
            self.context_switch_aborts += 1
            self.stats.extra["sched.context_switch_aborts"] += 1
        self._emit(SCHED_OUT, slot, thread)
        if self.obs is not None:
            self.obs.on_sched_preempt(slot, thread, ran, was_speculating)

    def _dispatch(self, slot: int, initial: bool = False) -> None:
        thread = self.core.pick(slot, self._eligible[slot])
        if thread is None:
            return
        delay = 0 if initial else self.cfg.context_switch_penalty
        prev = self.last_slot.get(thread)
        if prev is not None and prev != slot:
            delay += self.cfg.migration_penalty
            self.migrations += 1
            self.stats.extra["sched.migrations"] += 1
            self._emit(SCHED_MIGRATE, slot, thread)
            if self.obs is not None:
                self.obs.on_sched_migrate(thread, prev, slot)
        self.last_slot[thread] = slot
        self.running[slot] = thread
        self.thread_slot[thread] = slot
        self.ran_since[slot] = self.sim.now + delay
        self._emit(SCHED_IN, slot, thread)
        if delay:
            self.sim.schedule(delay, self._resume, thread,
                              label=f"sched-switch{slot}")
        else:
            self.machine.processors[thread].reschedule()

    def _resume(self, thread: int) -> None:
        # The thread may have been preempted again (or finished its
        # whole program is impossible -- it never ran) before the
        # switch penalty elapsed; only resume if it still owns a slot.
        if self.thread_slot.get(thread) is None:
            return
        self.machine.processors[thread].reschedule()

    def _on_thread_finish(self, proc) -> None:
        thread = proc.cpu_id
        self._finished += 1
        self.core.on_done(thread)
        slot = self.thread_slot.pop(thread, None)
        if slot is None:
            return
        self.oncpu[thread] += max(0, self.sim.now - self.ran_since[slot])
        self.running[slot] = None
        self._emit(SCHED_OUT, slot, thread)
        # Fast refill: do not leave the slot idle until the next tick.
        if self._finished < self.num_threads:
            self._dispatch(slot)

    # ------------------------------------------------------------------

    def _emit(self, kind: int, slot: int, thread: int) -> None:
        for listener in self.listeners:
            listener(self.sim.now, kind, slot, thread)

    def snapshot(self) -> dict:
        """Accounting summary for obs finalize and tests."""
        return {
            "slots": self.slots,
            "preemptions": self.preemptions,
            "migrations": self.migrations,
            "context_switch_aborts": self.context_switch_aborts,
            "oncpu": dict(self.oncpu),
        }
