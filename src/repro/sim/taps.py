"""Shared machine event taps: one set of wrappers, many consumers.

The span tracer (:mod:`repro.sim.trace`) and the flight recorder
(:mod:`repro.record`) both need to observe the same controller,
processor and bus entry points.  Before this module each observer
wrapped the methods itself, so attaching two observers stacked two
layers of shims in attachment order -- workable but wasteful, and it
made post-call observation (reading a line's coherence state *after*
the handler mutated it) impossible to share.

:class:`MachineTaps` installs **one** wrapper per hooked method and fans
each call out to every registered consumer:

* ``on_tap(time, cpu, kind, args, obj)`` fires before the original
  method runs (the classic tracer instant);
* ``on_tap_post(time, cpu, kind, args, obj)`` (optional) fires after it
  returns, with ``obj`` the hooked component -- this is where the
  recorder reads post-mutation coherence state via the side-effect-free
  ``cache.peek``.

Consumers are pure observers: they must not schedule events, draw
random numbers or mutate machine state, which is what keeps
taps-attached runs bit-identical to bare runs (the golden-fingerprint
tests pin this).  The tap layer itself follows the same zero-cost
discipline as ``repro.obs``: nothing is wrapped until the first
consumer attaches.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.machine import Machine


#: Hooked controller methods -> tap kind.  The kinds are the tracer's
#: historical vocabulary; the recorder interns the same strings.
CONTROLLER_HOOKS = {
    "handle_forward": "forward",
    "handle_invalidation": "invalidation",
    "handle_data": "data",
    "handle_marker": "marker",
    "handle_probe": "probe",
    "handle_nack": "nack",
    "_defer": "defer",
    "_service_obligation": "service",
    "_handle_loss": "loss",
    "commit_speculation": "commit",
    "abort_speculation": "abort",
    "enter_speculation": "txn-begin",
}

#: Hooked processor methods -> tap kind.
PROCESSOR_HOOKS = {
    "commit_transaction": "txn-commit",
    "_on_misspeculation": "misspec",
}


@runtime_checkable
class TapConsumer(Protocol):  # pragma: no cover - typing aid
    def on_tap(self, time: int, cpu: int, kind: str, args: tuple,
               obj: object) -> None: ...


class MachineTaps:
    """The per-machine tap fanout.  Use :meth:`ensure`, not the
    constructor: a machine carries at most one tap layer."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._consumers: list = []
        self._post: list = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    @classmethod
    def ensure(cls, machine: "Machine") -> "MachineTaps":
        """The machine's tap layer, installing the wrappers on first
        use.  Must be called before ``run_workload``."""
        taps = getattr(machine, "taps", None)
        if taps is None:
            taps = cls(machine)
            taps._install()
            machine.taps = taps
        return taps

    def add_consumer(self, consumer) -> "MachineTaps":
        """Register ``consumer`` for every subsequent tap firing.
        Consumers fire in registration order; one with an
        ``on_tap_post`` method also receives post-call notifications."""
        self._consumers.append(consumer)
        if hasattr(consumer, "on_tap_post"):
            self._post.append(consumer)
        return self

    def _install(self) -> None:
        machine = self.machine
        for controller in machine.controllers:
            for method, kind in CONTROLLER_HOOKS.items():
                self._wrap(controller, method, kind)
        for processor in machine.processors:
            for method, kind in PROCESSOR_HOOKS.items():
                self._wrap(processor, method, kind)
            # The controller captured the *bound* _on_misspeculation in
            # Processor.__init__, before the shim above replaced the
            # attribute -- so controller-initiated losses (conflict
            # aborts, capacity overflow) would bypass the "misspec" tap
            # entirely.  Re-point the callback at the shim so every
            # abort path fires; the shim only fans out to pure
            # observers before calling the original, so untapped
            # behavior is unchanged.
            processor.controller.on_misspeculation = \
                processor._on_misspeculation
        self._wrap_issue(machine.bus)

    def _wrap(self, obj, method_name: str, kind: str) -> None:
        original = getattr(obj, method_name)
        cpu = getattr(obj, "cpu_id", -1)
        sim = obj.sim
        consumers = self._consumers   # live lists: later add_consumer
        post = self._post             # registrations are seen by shims

        @functools.wraps(original)
        def shim(*args, **kwargs):
            now = sim.now
            for consumer in consumers:
                consumer.on_tap(now, cpu, kind, args, obj)
            result = original(*args, **kwargs)
            if post:
                for consumer in post:
                    consumer.on_tap_post(now, cpu, kind, args, obj)
            return result

        setattr(obj, method_name, shim)

    def _wrap_issue(self, bus) -> None:
        """The bus has no cpu identity; each issued request is
        attributed to the *requesting* CPU."""
        original = bus.issue
        sim = bus.sim
        consumers = self._consumers
        post = self._post

        @functools.wraps(original)
        def shim(request):
            now = sim.now
            for consumer in consumers:
                consumer.on_tap(now, request.requester, "request",
                                (request,), bus)
            result = original(request)
            if post:
                for consumer in post:
                    consumer.on_tap_post(now, request.requester, "request",
                                         (request,), bus)
            return result

        bus.issue = shim
