"""Flat-array L1 fast path for the batched kernel backend.

The reference hot path for an L1 hit walks ``Processor._do_read`` ->
``CacheController.try_hit`` -> ``CacheArray.lookup`` -> ``State`` property
checks -> ``mark_accessed`` (a second lookup) -- around ten Python calls
and a dict-of-dicts chase per memory operation.  This module collapses
that chain into a handful of int operations against *flat parallel
arrays*:

* ``FlatL1Index.slot_of`` maps a line address to a small integer slot;
* ``FlatL1Index.flags`` is an ``array('q')`` of permission bits per slot
  (bit 0 = valid, bit 1 = writable, so ``flags[slot] & need`` answers
  the MOESI hit question in one mask test);
* ``FlatL1Index.lines`` holds the backing :class:`Line` object per slot
  for the rare fields the fast leg still touches (LRU stamp, access bits).

The index mirrors *main-array residency only*.  Victim-cache residents,
wrong-state hits and misses all fall back to the unmodified reference
path, which preserves every side effect of the slow road (LRU bumps on
failed state checks, victim promotion, MSHR merging) by construction.

Synchronisation is funnelled through three writers: ``CacheArray``
install/evict/drop keep membership in sync, and
``CacheController._set_state`` keeps the permission bits in sync at the
six places a resident line's MOESI state can change.  The contract --
enforced by the cross-backend golden-fingerprint suite -- is that a
machine built with :class:`FastProcessor` is *bit-identical* to the
reference: same event stream, same RNG draws, same LRU clock, same
fingerprint.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.coherence.states import Line, State
from repro.cpu import isa
from repro.cpu.processor import Processor, _PENDING
from repro.cpu.writebuffer import WriteBufferOverflow

# Permission bits per MOESI state live as a precomputed plain attribute
# on each State member (``state.flat_bits``, see repro.coherence.states):
# bit 0 valid, bit 1 writable.  ``writable`` implies ``valid`` for every
# member, so a single mask test ``flags[slot] & (2 if need_writable else
# 1)`` reproduces the reference check ``state.valid and (not
# need_writable or state.writable)``.

_LINE_SHIFT = isa._LINE_SHIFT


class FlatL1Index:
    """Flat mirror of one L1's main-array residency and permissions."""

    __slots__ = ("slot_of", "flags", "lines", "_free")

    def __init__(self) -> None:
        self.slot_of: dict[int, int] = {}
        self.flags = array("q")
        self.lines: list[Optional[Line]] = []
        self._free: list[int] = []

    def add(self, line: Line) -> None:
        """A line entered the main array (install or victim promotion)."""
        bits = line.state.flat_bits
        slot = self.slot_of.get(line.addr)
        if slot is not None:  # re-install over an existing mapping
            self.lines[slot] = line
            self.flags[slot] = bits
            return
        free = self._free
        if free:
            slot = free.pop()
            self.lines[slot] = line
            self.flags[slot] = bits
        else:
            slot = len(self.lines)
            self.lines.append(line)
            self.flags.append(bits)
        self.slot_of[line.addr] = slot

    def remove(self, line_addr: int) -> None:
        """A line left the main array (eviction to victim, or drop)."""
        slot = self.slot_of.pop(line_addr, None)
        if slot is not None:
            self.flags[slot] = 0
            self.lines[slot] = None
            self._free.append(slot)

    def update(self, line: Line) -> None:
        """A resident line's MOESI state changed; refresh its bits.

        The two hot sync sites (``CacheController._set_state`` and
        ``CacheArray.install``) inline this body to skip the call.
        """
        slot = self.slot_of.get(line.addr)
        if slot is not None:
            self.flags[slot] = line.state.flat_bits


class FastProcessor(Processor):
    """Processor with flat-array fused hit legs for loads and stores.

    Only the *pure L1 hit* road is specialised; anything else -- victim
    hits, wrong-state hits, misses, LL/SC, atomics -- falls through to
    the inherited reference implementation unchanged.  The fused legs
    replicate the reference side effects exactly: one LRU clock bump for
    the ``try_hit`` lookup, a second bump for ``mark_accessed``'s lookup
    when the controller is speculating, the same stats counters in the
    same order, and the same write-buffer / RMW-predictor interactions.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        cache = self.controller.cache
        flat = FlatL1Index()
        cache._flat = flat
        # Mirror any pre-existing main-array residency (the cache is
        # empty when the machine builder constructs processors, but stay
        # correct if a harness warms the cache first).
        for cache_set in cache._sets:
            for line in cache_set.values():
                flat.add(line)
        self._cache = cache
        self._slot_of = flat.slot_of
        self._flags = flat.flags
        self._flines = flat.lines
        # The write buffer is never shimmed, so its methods may be bound
        # once here.  ``_arch_read`` and ``store.write`` must stay late
        # lookups: the verify/record observers (FootprintRecorder)
        # replace them with instance-attribute shims *after* machine
        # construction, and the fused legs must stay observable.
        self._wb_read = self.write_buffer.read
        self._wb_write = self.write_buffer.write

    # -- loads ----------------------------------------------------------
    def _do_read(self, op: isa.Read) -> object:
        stats = self.stats
        stats.loads += 1
        stats.ops_completed += 1
        spec_active = self.spec.active
        if spec_active:
            buffered = self._wb_read(op.addr)
            if buffered is not None:
                self._debt += self._hit_latency
                return buffered
        addr = op.addr
        line = addr >> _LINE_SHIFT
        ctl = self.controller
        if op.is_lock:
            want_x = False
        elif spec_active and (ctl.upgrade_violations[line]
                              >= self._read_esc_threshold):
            want_x = True
        else:
            want_x = self.cs_depth > 0 and self.rmw.predict_exclusive(op.pc)
        slot = self._slot_of.get(line)
        if slot is not None and self._flags[slot] & (2 if want_x else 1):
            # Fused hit leg == try_hit + _arch_read + mark_accessed +
            # _note_cs_load, with both lookups' LRU bumps preserved.
            cache = self._cache
            line_obj = self._flines[slot]
            clock = cache._use_clock + 1
            cache._use_clock = clock
            line_obj.last_use = clock
            stats.l1_hits += 1
            value = self._arch_read(addr)
            if ctl.speculating:
                clock = cache._use_clock + 1
                cache._use_clock = clock
                line_obj.last_use = clock
                line_obj.accessed = True
                if want_x:  # as_written = want_x and spec.active
                    line_obj.spec_written = True
                ctl._spec_touched[line] = line_obj
            if self.cs_depth > 0 and op.pc and not op.is_lock:
                self._cs_loads[addr] = op.pc
            self._debt += self._hit_latency
            return value
        # Slow road: the reference path from the try_hit probe onward
        # (covers victim promotion, wrong-state LRU bumps, and misses).
        as_written = want_x and spec_active
        if ctl.try_hit(line, want_x):
            value = self._arch_read(op.addr)
            ctl.mark_accessed(line, written=as_written)
            self._note_cs_load(op)
            self._debt += self._hit_latency
            return value
        issue_time = self.sim.now
        epoch = self.epoch

        def effect() -> None:
            if self.epoch != epoch:
                return
            value = self._arch_read(op.addr)
            ctl.mark_accessed(line, written=as_written)
            self._note_cs_load(op)
            self._charge_wait(issue_time, op.is_lock)
            self._resume_later(value)

        hit = ctl.access(line, write=False, on_effect=effect,
                         want_exclusive=want_x, is_lock=op.is_lock,
                         still_wanted=lambda: self.epoch == epoch)
        if hit:
            value = self._arch_read(op.addr)
            ctl.mark_accessed(line, written=as_written)
            self._note_cs_load(op)
            self._debt += self._hit_latency
            return value
        return _PENDING

    # -- stores ---------------------------------------------------------
    def _do_write(self, op: isa.Write) -> object:
        stats = self.stats
        stats.stores += 1
        stats.ops_completed += 1
        epoch_before = self.epoch
        if self.spec.absorbs_release(op):
            self._debt += self._hit_latency
            return None
        if self.epoch != epoch_before:
            # Absorption killed the speculation (non-silent store pair).
            return _PENDING
        addr = op.addr
        line = addr >> _LINE_SHIFT
        slot = self._slot_of.get(line)
        if slot is not None and self._flags[slot] & 2:
            # Fused hit leg == try_hit(writable) + _apply_store +
            # _train_store.
            cache = self._cache
            line_obj = self._flines[slot]
            clock = cache._use_clock + 1
            cache._use_clock = clock
            line_obj.last_use = clock
            stats.l1_hits += 1
            ctl = self.controller
            if self.spec.active:
                try:
                    self._wb_write(addr, op.value)
                except WriteBufferOverflow:
                    self.resource_fallback("wb-overflow")
                    return _PENDING
                if ctl.speculating:
                    clock = cache._use_clock + 1
                    cache._use_clock = clock
                    line_obj.last_use = clock
                    line_obj.accessed = True
                    line_obj.spec_written = True
                    ctl._spec_touched[line] = line_obj
            else:
                self.store.write(addr, op.value)
            pc = self._cs_loads.pop(addr, None)
            if pc is not None:
                self.rmw.train_rmw(pc)
            self._debt += self._hit_latency
            return None
        # Slow road: the reference store path from the try_hit probe on.
        ctl = self.controller
        if ctl.try_hit(line, True):
            if not self._apply_store(op):
                return _PENDING
            self._debt += self._hit_latency
            return None
        issue_time = self.sim.now
        epoch = self.epoch

        def effect() -> None:
            if self.epoch != epoch:
                return
            if not self._apply_store(op):
                return  # resource fallback under way; op squashed
            self._charge_wait(issue_time, op.is_lock)
            self._resume_later(None)

        hit = ctl.access(line, write=True, on_effect=effect,
                         is_lock=op.is_lock,
                         still_wanted=lambda: self.epoch == epoch)
        if hit:
            if not self._apply_store(op):
                return _PENDING
            self._debt += self._hit_latency
            return None
        return _PENDING
