"""Statistics collection.

The paper reports wall-clock (parallel) execution cycles, a breakdown of
stall cycles into *lock-variable* and *non-lock* contributions (Figure 11),
and various event counts we use for analysis (restarts, elisions,
deferrals, bus transactions).  Attribution follows the paper's convention:
the instruction (here: architectural operation) that stalls completion is
charged the stall, classified by whether it targets a lock variable.

``SimStats`` is system-wide; each processor owns a ``CpuStats``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field


@dataclass
class CpuStats:
    """Per-processor counters."""

    cpu_id: int
    ops_completed: int = 0
    loads: int = 0
    stores: int = 0
    compute_cycles: int = 0
    # Stall attribution (the Figure 11 breakdown).
    lock_stall_cycles: int = 0
    nonlock_stall_cycles: int = 0
    spin_cycles: int = 0          # cycles parked in a spin-wait (lock stall)
    # Cache behaviour.
    l1_hits: int = 0
    l1_misses: int = 0
    upgrades: int = 0
    writebacks: int = 0
    victim_hits: int = 0
    # Speculation (SLE/TLR).
    elisions_started: int = 0
    elisions_committed: int = 0
    misspeculations: int = 0
    restarts: int = 0
    lock_fallbacks: int = 0       # speculation abandoned, lock acquired
    resource_fallbacks: int = 0   # fallback caused by buffer/cache limits
    # TLR specifics.
    requests_deferred: int = 0
    markers_sent: int = 0
    probes_sent: int = 0
    probe_losses: int = 0
    timestamp_updates: int = 0
    nacks_sent: int = 0
    nacks_received: int = 0
    # Critical sections.
    critical_sections: int = 0
    finish_time: int = 0
    # Why this processor's speculations died (reason -> count).
    restart_reasons: Counter = field(default_factory=Counter)

    @property
    def stall_cycles(self) -> int:
        """Total attributed stall cycles."""
        return self.lock_stall_cycles + self.nonlock_stall_cycles

    def charge_stall(self, cycles: int, is_lock: bool) -> None:
        """Attribute ``cycles`` of stall to the lock or non-lock bucket."""
        if cycles <= 0:
            return
        if is_lock:
            self.lock_stall_cycles += cycles
        else:
            self.nonlock_stall_cycles += cycles

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (counters as plain dicts)."""
        data = asdict(self)
        data["restart_reasons"] = dict(self.restart_reasons)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CpuStats":
        data = dict(data)
        data["restart_reasons"] = Counter(data.get("restart_reasons") or {})
        return cls(**data)


@dataclass
class SimStats:
    """System-wide statistics for one simulation run."""

    cpus: list[CpuStats] = field(default_factory=list)
    bus_transactions: int = 0
    bus_busy_cycles: int = 0
    data_messages: int = 0
    memory_reads: int = 0
    total_cycles: int = 0
    extra: Counter = field(default_factory=Counter)

    def cpu(self, cpu_id: int) -> CpuStats:
        while len(self.cpus) <= cpu_id:
            self.cpus.append(CpuStats(cpu_id=len(self.cpus)))
        return self.cpus[cpu_id]

    # ------------------------------------------------------------------
    # Aggregates used by the harness and the report generators
    # ------------------------------------------------------------------
    def total(self, field_name: str) -> int:
        """Sum a ``CpuStats`` field across processors."""
        return sum(getattr(c, field_name) for c in self.cpus)

    @property
    def lock_stall_cycles(self) -> int:
        return self.total("lock_stall_cycles")

    @property
    def nonlock_stall_cycles(self) -> int:
        return self.total("nonlock_stall_cycles")

    @property
    def restarts(self) -> int:
        return self.total("restarts")

    @property
    def elisions_committed(self) -> int:
        return self.total("elisions_committed")

    def reason_totals(self) -> dict[str, int]:
        """Restart-reason breakdown aggregated across processors (the
        per-policy restart attribution the obs layer exports)."""
        totals: Counter = Counter()
        for cpu in self.cpus:
            totals.update(cpu.restart_reasons)
        return dict(sorted(totals.items()))

    def lock_fraction(self) -> float:
        """Fraction of all attributed stall cycles charged to locks."""
        stall = self.lock_stall_cycles + self.nonlock_stall_cycles
        if stall == 0:
            return 0.0
        return self.lock_stall_cycles / stall

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of every counter (the stable
        on-disk format used by the result cache and ``--json``)."""
        return {
            "cpus": [c.to_dict() for c in self.cpus],
            "bus_transactions": self.bus_transactions,
            "bus_busy_cycles": self.bus_busy_cycles,
            "data_messages": self.data_messages,
            "memory_reads": self.memory_reads,
            "total_cycles": self.total_cycles,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        stats = cls(cpus=[CpuStats.from_dict(c) for c in data.get("cpus", [])],
                    bus_transactions=data.get("bus_transactions", 0),
                    bus_busy_cycles=data.get("bus_busy_cycles", 0),
                    data_messages=data.get("data_messages", 0),
                    memory_reads=data.get("memory_reads", 0),
                    total_cycles=data.get("total_cycles", 0),
                    extra=Counter(data.get("extra") or {}))
        return stats

    def summary(self) -> dict:
        """A flat dict convenient for tables and ``extra_info``."""
        return {
            "total_cycles": self.total_cycles,
            "bus_transactions": self.bus_transactions,
            "l1_misses": self.total("l1_misses"),
            "lock_stall_cycles": self.lock_stall_cycles,
            "nonlock_stall_cycles": self.nonlock_stall_cycles,
            "restarts": self.restarts,
            "misspeculations": self.total("misspeculations"),
            "elisions_committed": self.elisions_committed,
            "lock_fallbacks": self.total("lock_fallbacks"),
            "resource_fallbacks": self.total("resource_fallbacks"),
            "requests_deferred": self.total("requests_deferred"),
            "markers_sent": self.total("markers_sent"),
            "probes_sent": self.total("probes_sent"),
            "nacks_sent": self.total("nacks_sent"),
            "critical_sections": self.total("critical_sections"),
        }
