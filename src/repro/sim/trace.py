"""Structured event tracing.

A :class:`Tracer` records typed simulation events (bus transactions,
deferrals, losses, commits, restarts...) with timestamps, supports
filtering by line or CPU, and renders a readable interleaving -- the
tool that found most protocol bugs during this reproduction's own
development, packaged for users debugging their workloads.

Attach with :meth:`Tracer.attach`; it wraps the relevant controller and
processor entry points non-invasively (no hooks are needed in the hot
path when tracing is off).
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.machine import Machine


@dataclass
class TraceEvent:
    """One recorded event."""

    time: int
    cpu: int
    kind: str
    line: Optional[int]
    detail: str

    def render(self) -> str:
        where = f" line={self.line:#x}" if self.line is not None else ""
        return f"{self.time:>9}  cpu{self.cpu:<3} {self.kind:<18}{where}  {self.detail}"


class Tracer:
    """Records controller/processor events from one machine."""

    CONTROLLER_HOOKS = {
        "handle_forward": "forward",
        "handle_invalidation": "invalidation",
        "handle_data": "data",
        "handle_marker": "marker",
        "handle_probe": "probe",
        "handle_nack": "nack",
        "_defer": "defer",
        "_service_obligation": "service",
        "_handle_loss": "loss",
        "commit_speculation": "commit",
        "abort_speculation": "abort",
        "enter_speculation": "txn-begin",
    }

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._machine: Optional["Machine"] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, machine: "Machine") -> "Tracer":
        """Wrap the machine's controllers and processors with recording
        shims.  Call before ``run_workload``."""
        self._machine = machine
        for controller in machine.controllers:
            for method, kind in self.CONTROLLER_HOOKS.items():
                self._wrap(controller, method, kind)
        for processor in machine.processors:
            self._wrap(processor, "commit_transaction", "txn-commit")
            self._wrap(processor, "_on_misspeculation", "misspec")
        return self

    def _wrap(self, obj, method_name: str, kind: str) -> None:
        original = getattr(obj, method_name)
        cpu = getattr(obj, "cpu_id", -1)
        sim = obj.sim

        @functools.wraps(original)
        def shim(*args, **kwargs):
            self.record(sim.now, cpu, kind, _line_of_args(args),
                        _describe(args))
            return original(*args, **kwargs)

        setattr(obj, method_name, shim)

    # ------------------------------------------------------------------
    # Recording and querying
    # ------------------------------------------------------------------
    def record(self, time: int, cpu: int, kind: str,
               line: Optional[int], detail: str) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, cpu, kind, line, detail))

    def filter(self, kinds: Optional[Iterable[str]] = None,
               cpu: Optional[int] = None,
               line: Optional[int] = None,
               since: int = 0, until: Optional[int] = None
               ) -> list[TraceEvent]:
        wanted = set(kinds) if kinds is not None else None
        out = []
        for event in self.events:
            if wanted is not None and event.kind not in wanted:
                continue
            if cpu is not None and event.cpu != cpu:
                continue
            if line is not None and event.line != line:
                continue
            if event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def render(self, **filter_kwargs) -> str:
        lines = [event.render() for event in self.filter(**filter_kwargs)]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped "
                         f"(capacity {self.capacity})")
        return "\n".join(lines)

    def counts(self) -> dict[str, int]:
        """Event-kind histogram (handy for assertions in tests)."""
        histogram: dict[str, int] = {}
        for event in self.events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_trace(self, path: Union[str, "os.PathLike"],
                        **filter_kwargs) -> int:
        """Write the (optionally filtered) events as a ``chrome://tracing``
        / Perfetto JSON file and return the number of events written.

        Each simulation cycle maps to one microsecond on the viewer's
        timeline (the target machine runs at 1 GHz, so a cycle is really
        a nanosecond; the x1000 scale only renames the axis).  Every CPU
        appears as its own thread row, each recorded event as an instant
        event on that row, so a failing schedule from the explorer can be
        inspected visually -- load the file via ``chrome://tracing`` or
        https://ui.perfetto.dev.
        """
        events = self.filter(**filter_kwargs)
        payload: list[dict] = []
        for cpu in sorted({e.cpu for e in events}):
            payload.append({"name": "thread_name", "ph": "M", "pid": 0,
                            "tid": cpu,
                            "args": {"name": f"cpu{cpu}"}})
        for event in events:
            args = {"detail": event.detail}
            if event.line is not None:
                args["line"] = f"{event.line:#x}"
            payload.append({"name": event.kind, "ph": "i", "s": "t",
                            "pid": 0, "tid": event.cpu,
                            "ts": event.time, "args": args})
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": payload, "displayTimeUnit": "ms"},
                      fh)
        return len(events)


def _line_of_args(args) -> Optional[int]:
    for arg in args:
        line = getattr(arg, "line", None)
        if isinstance(line, int):
            return line
        if hasattr(arg, "line") and isinstance(getattr(arg, "line"), int):
            return getattr(arg, "line")
    for arg in args:
        if isinstance(arg, int):
            return arg
    return None


def _describe(args) -> str:
    parts = []
    for arg in args:
        if isinstance(arg, (str, int, tuple)) or hasattr(arg, "req_id"):
            parts.append(repr(arg))
    return " ".join(parts[:3])
