"""Structured event tracing.

A :class:`Tracer` records typed simulation events (bus transactions,
deferrals, losses, commits, restarts...) with timestamps, supports
filtering by line or CPU, and renders a readable interleaving -- the
tool that found most protocol bugs during this reproduction's own
development, packaged for users debugging their workloads.

Attach with :meth:`Tracer.attach`; it registers on the machine's shared
tap layer (:class:`repro.sim.taps.MachineTaps`), which wraps the
relevant controller and processor entry points non-invasively (no hooks
are needed in the hot path when tracing is off).  The flight recorder
(:mod:`repro.record`) rides the same taps, so attaching both installs
one set of wrappers, and each consumer keeps its own drop accounting.

Besides instant events the tracer pairs matching begin/end instants
into **span events** (:class:`SpanEvent`):

* ``txn`` -- txn-begin to commit/abort/loss (the outcome is the span's
  detail), one open span per CPU;
* ``defer`` -- a request entering a holder's deferred queue to its
  service at the holder's commit, keyed by request id;
* ``request`` -- a miss leaving for the bus to its data fill, keyed by
  request id (NACK reissues extend the original span).

``to_chrome_trace`` exports spans as Chrome/Perfetto *async* events
(``ph: "b"/"e"``) rather than strict ``B``/``E`` duration pairs:
defer-spans routinely outlive the txn-span that deferred them, and
async events do not require stack nesting per thread row.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.sim.taps import CONTROLLER_HOOKS, MachineTaps

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.machine import Machine


@dataclass
class TraceEvent:
    """One recorded event."""

    time: int
    cpu: int
    kind: str
    line: Optional[int]
    detail: str

    def render(self) -> str:
        where = f" line={self.line:#x}" if self.line is not None else ""
        return f"{self.time:>9}  cpu{self.cpu:<3} {self.kind:<18}{where}  {self.detail}"


@dataclass
class SpanEvent:
    """A paired begin/end duration (txn, defer, request)."""

    begin: int
    end: int
    cpu: int
    kind: str
    line: Optional[int]
    detail: str

    @property
    def duration(self) -> int:
        return self.end - self.begin

    def render(self) -> str:
        where = f" line={self.line:#x}" if self.line is not None else ""
        return (f"{self.begin:>9}..{self.end:<9} cpu{self.cpu:<3} "
                f"{self.kind:<10}{where}  {self.detail}")


#: Instant kinds that open a span: kind -> (span kind, key builder).
#: ``txn`` spans key on the CPU; ``defer``/``request`` spans key on the
#: globally unique request id carried by the triggering message.
_SPAN_OPENERS = {"txn-begin": "txn", "defer": "defer", "request": "request"}
#: Instant kinds that close a span: kind -> (span kind, outcome label).
_SPAN_CLOSERS = {"commit": ("txn", "commit"), "abort": ("txn", "abort"),
                 "loss": ("txn", "loss"), "service": ("defer", ""),
                 "data": ("request", "")}


class Tracer:
    """Records controller/processor events from one machine.

    ``capacity`` bounds the instant-event buffer.  The default policy
    drops the *newest* events once full (the historical behaviour,
    cheap and allocation-free); ``ring=True`` keeps the most recent
    ``capacity`` events instead -- the useful window when the bug is at
    the *end* of a long run.  Dropped events are tallied per kind in
    :attr:`dropped_by_kind` either way.
    """

    #: Kept as a class attribute for backward compatibility; the
    #: authoritative mapping lives in :mod:`repro.sim.taps`.
    CONTROLLER_HOOKS = CONTROLLER_HOOKS

    def __init__(self, capacity: int = 100_000, ring: bool = False):
        self.capacity = capacity
        self.ring = ring
        self.events = (deque(maxlen=capacity) if ring
                       else [])  # type: ignore[var-annotated]
        self.spans: list[SpanEvent] = []
        self.dropped = 0
        self.dropped_by_kind: dict[str, int] = {}
        self._machine: Optional["Machine"] = None
        # Open spans: txn keyed by cpu; defer/request keyed by req_id.
        self._open: dict[str, dict] = {"txn": {}, "defer": {},
                                       "request": {}}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, machine: "Machine") -> "Tracer":
        """Register on the machine's shared tap layer (installing it if
        this is the first consumer).  Call before ``run_workload``."""
        self._machine = machine
        MachineTaps.ensure(machine).add_consumer(self)
        return self

    def on_tap(self, time: int, cpu: int, kind: str, args: tuple,
               obj: object) -> None:
        """Tap-consumer entry point (see :class:`MachineTaps`)."""
        if kind == "request":
            request = args[0]
            self.record(time, cpu, kind, request.line, repr(request),
                        ref=request.req_id)
            return
        # loss/misspec carry the restart reason first; threading it
        # through lets txn spans say *why* they aborted.
        reason = (args[0] if kind in ("loss", "misspec") and args
                  and isinstance(args[0], str) else None)
        self.record(time, cpu, kind, _line_of_args(args, kind),
                    _describe(args), ref=_ref_of_args(args),
                    reason=reason)

    # ------------------------------------------------------------------
    # Recording and querying
    # ------------------------------------------------------------------
    def record(self, time: int, cpu: int, kind: str,
               line: Optional[int], detail: str,
               ref: Optional[int] = None,
               reason: Optional[str] = None) -> None:
        # Span pairing happens regardless of the instant buffer's
        # capacity: spans are few (one per txn/defer/miss) and losing
        # their ends alongside dropped instants would corrupt durations.
        self._update_spans(time, cpu, kind, line, ref, reason)
        if len(self.events) >= self.capacity:
            self.dropped += 1
            if self.ring:
                evicted = self.events[0]  # pushed out by append below
                self.dropped_by_kind[evicted.kind] = \
                    self.dropped_by_kind.get(evicted.kind, 0) + 1
            else:
                self.dropped_by_kind[kind] = \
                    self.dropped_by_kind.get(kind, 0) + 1
                return
        self.events.append(TraceEvent(time, cpu, kind, line, detail))

    def _txn_key(self, cpu: int):
        """Span key for a txn opened on hardware context ``cpu``.

        With the preemptive scheduler multiplexing thread contexts over
        CPU slots (``threads_per_cpu > 1``), the key is ``(cpu,
        thread)`` so a span survives the context being descheduled and
        rescheduled between its begin and its close.  With one pinned
        thread per CPU (the default) the key stays the bare ``cpu``,
        preserving byte-identical span streams for existing runs.
        """
        machine = self._machine
        engine = getattr(machine, "sched_engine", None) \
            if machine is not None else None
        if engine is not None and engine.threads_per_cpu > 1:
            return (cpu, engine.thread_on_context(cpu))
        return cpu

    def _update_spans(self, time: int, cpu: int, kind: str,
                      line: Optional[int], ref: Optional[int],
                      reason: Optional[str] = None) -> None:
        span_kind = _SPAN_OPENERS.get(kind)
        if span_kind is not None:
            open_spans = self._open[span_kind]
            key = self._txn_key(cpu) if span_kind == "txn" else ref
            if key is not None or span_kind == "txn":
                open_spans.setdefault(key, (time, cpu, line))
            return
        if kind == "misspec" and reason is not None:
            # A resource fallback closes its span at the preceding
            # "abort" tap, before the restart reason exists; the
            # misspec that follows in the same cycle patches it in.
            for span in reversed(self.spans):
                if span.cpu != cpu or span.kind != "txn":
                    continue
                if span.end == time and span.detail == "abort":
                    span.detail = f"abort:{reason}"
                break
            return
        closer = _SPAN_CLOSERS.get(kind)
        if closer is None:
            return
        span_kind, outcome = closer
        key = self._txn_key(cpu) if span_kind == "txn" else ref
        opened = self._open[span_kind].pop(key, None)
        if opened is None:
            return  # no matching begin (e.g. abort outside speculation)
        begin, span_cpu, span_line = opened
        if span_kind == "txn" and outcome == "loss" and reason is not None:
            outcome = f"loss:{reason}"
        self.spans.append(SpanEvent(begin=begin, end=time, cpu=span_cpu,
                                    kind=span_kind,
                                    line=span_line if span_line is not None
                                    else line,
                                    detail=outcome))

    def filter(self, kinds: Optional[Iterable[str]] = None,
               cpu: Optional[int] = None,
               line: Optional[int] = None,
               since: int = 0, until: Optional[int] = None
               ) -> list[TraceEvent]:
        wanted = set(kinds) if kinds is not None else None
        out = []
        for event in self.events:
            if wanted is not None and event.kind not in wanted:
                continue
            if cpu is not None and event.cpu != cpu:
                continue
            if line is not None and event.line != line:
                continue
            if event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def filter_spans(self, kinds: Optional[Iterable[str]] = None,
                     cpu: Optional[int] = None,
                     line: Optional[int] = None,
                     since: int = 0, until: Optional[int] = None
                     ) -> list[SpanEvent]:
        """Like :meth:`filter`, over paired spans.  A span matches a
        time window when it *overlaps* it (a long transaction is part
        of the story of every window it crosses)."""
        wanted = set(kinds) if kinds is not None else None
        out = []
        for span in self.spans:
            if wanted is not None and span.kind not in wanted:
                continue
            if cpu is not None and span.cpu != cpu:
                continue
            if line is not None and span.line != line:
                continue
            if span.end < since:
                continue
            if until is not None and span.begin > until:
                continue
            out.append(span)
        return out

    def render(self, **filter_kwargs) -> str:
        lines = [event.render() for event in self.filter(**filter_kwargs)]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped "
                         f"({'ring' if self.ring else 'tail'} mode, "
                         f"capacity {self.capacity})")
        return "\n".join(lines)

    def counts(self, dropped: bool = False) -> dict[str, int]:
        """Event-kind histogram (handy for assertions in tests).

        With ``dropped=True``, the histogram of events that fell to the
        capacity bound instead (per kind: the newest-dropped kinds in
        the default mode, the evicted-oldest kinds under ``ring``).
        """
        if dropped:
            return dict(self.dropped_by_kind)
        histogram: dict[str, int] = {}
        for event in self.events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_trace(self, path: Union[str, "os.PathLike"],
                        **filter_kwargs) -> int:
        """Write the (optionally filtered) events as a ``chrome://tracing``
        / Perfetto JSON file and return the number of instant events
        written.

        Each simulation cycle maps to one microsecond on the viewer's
        timeline (the target machine runs at 1 GHz, so a cycle is really
        a nanosecond; the x1000 scale only renames the axis).  Every CPU
        appears as its own thread row, each recorded event as an instant
        event on that row, and each paired span (txn, defer, request) as
        an async begin/end bar, so a failing schedule from the explorer
        can be inspected visually -- load the file via
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events = self.filter(**filter_kwargs)
        spans = self.filter_spans(**filter_kwargs)
        payload: list[dict] = []
        cpus = sorted({e.cpu for e in events} | {s.cpu for s in spans})
        for cpu in cpus:
            payload.append({"name": "thread_name", "ph": "M", "pid": 0,
                            "tid": cpu,
                            "args": {"name": f"cpu{cpu}"}})
        for event in events:
            args = {"detail": event.detail}
            if event.line is not None:
                args["line"] = f"{event.line:#x}"
            payload.append({"name": event.kind, "ph": "i", "s": "t",
                            "pid": 0, "tid": event.cpu,
                            "ts": event.time, "args": args})
        for index, span in enumerate(spans):
            name = (f"{span.kind}:{span.detail}" if span.detail
                    else span.kind)
            args = {}
            if span.line is not None:
                args["line"] = f"{span.line:#x}"
            common = {"name": name, "cat": span.kind, "id": index,
                      "pid": 0, "tid": span.cpu, "args": args}
            payload.append({**common, "ph": "b", "ts": span.begin})
            payload.append({**common, "ph": "e", "ts": span.end})
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": payload, "displayTimeUnit": "ms"},
                      fh)
        return len(events)


#: Hooked methods that carry a bare-``int`` cache line at a known
#: positional index (every other hook's line rides on a message
#: object's ``.line`` attribute).  ``_handle_loss(reason, line, ts)``
#: and ``_on_misspeculation(reason, line)`` both carry it second.
_INT_LINE_POS = {"loss": 1, "misspec": 1}


def _line_of_args(args, kind: Optional[str] = None) -> Optional[int]:
    for arg in args:
        line = getattr(arg, "line", None)
        if isinstance(line, int):
            return line
    # Bare ints are accepted only from positions known to carry a line
    # address: an arbitrary int argument (a timestamp component, a
    # count) must not be misattributed as a cache line.
    pos = _INT_LINE_POS.get(kind)
    if pos is not None and pos < len(args) and isinstance(args[pos], int):
        return args[pos]
    return None


def _ref_of_args(args) -> Optional[int]:
    """The request id carried by the first message argument, if any
    (used to pair defer/service and request/data spans)."""
    for arg in args:
        req_id = getattr(arg, "req_id", None)
        if isinstance(req_id, int):
            return req_id
    return None


def _describe(args) -> str:
    parts = []
    for arg in args:
        if isinstance(arg, (str, int, tuple)) or hasattr(arg, "req_id"):
            parts.append(repr(arg))
    return " ".join(parts[:3])
