"""Deterministic random-number streams.

The paper's methodology (following Alameldeen et al.) injects small random
latency perturbations to sample the space of legal interleavings, and its
microbenchmarks insert a random post-release delay to keep lock hand-off
fair.  Both uses need reproducibility: the same seed must replay the same
execution so results (and bugs) are repeatable.

Each component derives its own child stream from a root seed via a stable
string name, so adding a new consumer never shifts another component's
sequence.
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """A factory of independent, deterministically-seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        """Return a ``random.Random`` unique to (root seed, name)."""
        child_seed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) \
            & 0xFFFFFFFF
        return random.Random(child_seed)


class LatencyPerturber:
    """Adds a small random jitter to memory-system latencies.

    Mirrors the perturbation methodology the paper cites for evaluating
    non-deterministic multithreaded workloads: a few cycles of noise on
    each memory-system event decorrelates accidental lock-step behaviour
    between processors without changing average latency materially.
    """

    def __init__(self, rng: random.Random, max_jitter: int = 2):
        self._rng = rng
        self.max_jitter = max_jitter
        # randrange(n) with a single positive int argument reduces to
        # _randbelow(n); binding it directly skips the argument
        # normalisation wrapper on every memory-system event while
        # drawing the exact same stream.
        self._span = max_jitter + 1
        self._randbelow = rng._randbelow

    def perturb(self, latency: int) -> int:
        """Return ``latency`` plus 0..max_jitter cycles of jitter."""
        if self.max_jitter <= 0:
            return latency
        return latency + self._randbelow(self._span)
