"""Discrete-event simulation kernel.

The whole reproduction is event-driven rather than cycle-driven: every
latency-bearing action (a bus grant, a snoop broadcast, a data delivery, an
instruction block completing) is one scheduled event.  Time is measured in
processor clock cycles (the paper's target machine runs at 1 GHz, so one
cycle is one nanosecond, but nothing here depends on the wall-clock
interpretation).

The kernel deliberately knows nothing about coherence or processors; it only
orders callbacks.  Determinism matters for reproducibility: events scheduled
for the same cycle fire in scheduling order (a monotonically increasing
sequence number breaks ties), so a given seed always replays the exact same
interleaving.

Every experiment bottoms out in this loop, so it is also the hot path of
the whole reproduction.  Three allocation-level optimizations keep it
cheap without changing any observable ordering:

* **Event recycling.**  Fired (and reaped-cancelled) events go onto a
  free list and are reinitialized by the next :meth:`Simulator.schedule`
  instead of allocating a fresh object per event.
* **Lazy-cancel compaction.**  :meth:`Event.cancel` only marks the event
  dead; when dead events exceed both an absolute floor and half the heap,
  the queue is rebuilt without them.  (time, prio, seq) keys are unique,
  so re-heapifying cannot change pop order.
* **Hoisted hooks.**  The per-event trace check and heap accessors are
  bound once per :meth:`Simulator.run` call, and ``verbose_labels`` tells
  callers whether anyone (tracer or choice hook) will ever look at an
  event label, letting hot call sites skip f-string construction.
"""

from __future__ import annotations

import heapq
import os
import sys
from typing import Any, Callable, Optional

# Lazy-cancel compaction fires when at least this many dead events are
# queued *and* they outnumber half the heap.
COMPACT_DEAD_MIN = 64

#: Selectable event-core backends (SystemConfig.KNOWN_BACKENDS mirrors
#: this tuple; a unit test keeps the two in sync).
KNOWN_BACKENDS = ("reference", "batched")

#: Batch-size histogram granularity: index i counts drained cycle
#: batches of size in [2**(i-1)+1 .. 2**i] (index 0 = empty batches,
#: which only occur when every event in a bucket was cancelled).
BATCH_HIST_SLOTS = 12


def resolve_backend(configured: str = "reference") -> str:
    """Resolve the effective kernel backend.

    The ``REPRO_KERNEL_BACKEND`` environment variable wins over the
    config field so a whole process tree (CI matrix leg, sweep workers)
    can be flipped without touching serialized configs; both backends
    are bit-identical, so the override can never change a result, only
    its wall-clock.
    """
    env = os.environ.get("REPRO_KERNEL_BACKEND", "").strip()
    if env:
        if env not in KNOWN_BACKENDS:
            raise ValueError(f"bad REPRO_KERNEL_BACKEND {env!r}; "
                             f"known: {list(KNOWN_BACKENDS)}")
        return env
    return configured or "reference"


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class HandleLeakError(SimulationError):
    """Raised (in ``debug_handles`` mode only) when an Event is still
    referenced by someone after it fired.

    The free list recycles Event objects, so a handle is only valid
    until its event fires; a tap, tracer or timer holder that keeps the
    reference past that point will later observe the object
    reinitialized as an unrelated event.  This error names the event
    whose handle leaked so the offending holder can be found.
    """


class DeadlockError(SimulationError):
    """Raised when the event queue drains while registered actors are
    still incomplete.

    In a correct run the queue only drains after every thread program has
    finished.  An early drain means some component is waiting for an event
    that will never come -- the simulator equivalent of a hardware deadlock
    -- and the diagnostic message lists who was still blocked.
    """


class Event:
    """A scheduled callback.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when popped.  This is how spin-wait timeouts and
    superseded wakeups are handled without scrubbing the heap.

    ``prio`` orders events within a cycle ahead of the sequence number;
    it is 0 (pure FIFO) unless a schedule choice hook is installed.

    **Handle lifetime:** the kernel recycles Event objects through a free
    list, so a handle returned by :meth:`Simulator.schedule` is only valid
    until the event fires or is reaped.  Holders that may outlive their
    event must drop the reference once it has fired (the pattern used for
    pending-timer handles: the firing callback nulls the holder's field
    before anything else runs).
    """

    __slots__ = ("time", "prio", "seq", "fn", "args", "alive", "label",
                 "sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., None],
                 args: tuple, label: str = "", prio: int = 0):
        self.time = time
        self.prio = prio
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        self.label = label
        self.sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.alive:
            self.alive = False
            sim = self.sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.prio != other.prio:
            return self.prio < other.prio
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.alive else " (cancelled)"
        name = self.label or getattr(self.fn, "__qualname__", str(self.fn))
        return f"<Event t={self.time} #{self.seq} {name}{state}>"


class Simulator:
    """The event queue and simulated clock.

    Components interact with the kernel through three calls:

    * :meth:`schedule` -- run a callback ``delay`` cycles from now;
    * :meth:`now` (property) -- the current simulated cycle;
    * :meth:`run` -- drain the queue until completion or a limit.

    Actors (typically processors) may register completion predicates via
    :meth:`add_actor`; :meth:`run` uses them to distinguish a clean finish
    from a deadlock.

    ``recycle_events`` and ``compact_dead_min`` expose the allocation
    optimizations for testing; both defaults are observationally pure
    (identical event order) and there is no reason to change them outside
    the kernel's own test suite.
    """

    #: Backend name (see :data:`KNOWN_BACKENDS`); subclasses override.
    backend = "reference"

    def __init__(self, max_cycles: Optional[int] = None, *,
                 recycle_events: bool = True,
                 compact_dead_min: Optional[int] = COMPACT_DEAD_MIN,
                 debug_handles: bool = False):
        #: Heap of ``(time, prio, seq, event)`` entries: the key tuple
        #: is compared natively by heapq (no Python-level ``__lt__``
        #: per sift step), and seq uniqueness means the Event itself is
        #: never reached by a comparison.
        self._queue: list[tuple[int, int, int, Event]] = []
        self.now = 0
        self._seq = 0
        self._events_fired = 0
        self.max_cycles = max_cycles
        self._actors: list[Any] = []
        self._choice: Optional[Callable[[str], int]] = None
        self._trace: Optional[Callable[[int, str], None]] = None
        #: True when a tracer or choice hook may read event labels; hot
        #: call sites consult this to skip building descriptive labels.
        self.verbose_labels = False
        self._free: list[Event] = []
        self._recycle = recycle_events
        self._compact_dead_min = compact_dead_min
        self._dead = 0
        #: Pure observation hook ``fn(cycle, label)`` fired for every
        #: dispatched event.  Unlike :attr:`trace` it does NOT flip
        #: :attr:`verbose_labels`: consumers (the flight recorder) see
        #: the cheap low-cardinality labels, and attaching one cannot
        #: change what any call site computes -- the schedule with the
        #: hook on is bit-identical to the schedule with it off.
        self.on_dispatch: Optional[Callable[[int, str], None]] = None
        #: Handle-lifetime checking (see :class:`HandleLeakError`).
        #: When on, fired events are recycled *after* dispatch and their
        #: refcount is audited first -- slower, for tests only.
        self.debug_handles = debug_handles
        #: Observational batching/compaction telemetry, published by
        #: repro.obs as ``sim.kernel.*`` (never part of any fingerprint).
        self.compactions = 0

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    # ``now`` -- the current simulated time in cycles -- is a plain
    # instance attribute written by the run loop, not a property: it is
    # read on every latency computation and a data-descriptor lookup
    # costs a Python call per access (same reasoning as the State
    # predicates in coherence.states).

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for reporting)."""
        return self._events_fired

    @property
    def trace(self) -> Optional[Callable[[int, str], None]]:
        """Raw per-event debug hook ``fn(cycle, label)``.

        Installing it (or a choice hook) flips :attr:`verbose_labels` so
        call sites start producing descriptive labels.  The hook binding
        is sampled at each :meth:`run` call, not per event.
        """
        return self._trace

    @trace.setter
    def trace(self, fn: Optional[Callable[[int, str], None]]) -> None:
        self._trace = fn
        self.verbose_labels = (self._trace is not None
                               or self._choice is not None)

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any,
                 label: str = "") -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        Returns the :class:`Event`, which the caller may cancel (the
        handle is valid until the event fires; see :class:`Event`).
        Delays must be non-negative; a zero delay runs after all events
        already scheduled for the current cycle (FIFO within a cycle).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        choice = self._choice
        prio = choice(label) if choice is not None else 0
        time = self.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.prio = prio
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.alive = True
            event.label = label
        else:
            event = Event(time, self._seq, fn, args, label, prio=prio)
            event.sim = self
        heapq.heappush(self._queue, (time, prio, self._seq, event))
        return event

    def set_choice_hook(self,
                        fn: Optional[Callable[[str], int]]) -> None:
        """Install a schedule *choice point*: ``fn(label)`` is consulted
        once per :meth:`schedule` call and its return value becomes the
        event's intra-cycle priority (lower fires first; ties fall back
        to FIFO order).

        The default (no hook) is strict FIFO within a cycle.  The
        schedule explorer installs a seeded random hook here to perturb
        same-cycle interleavings -- every distinct seed then explores a
        different but fully reproducible legal ordering.
        """
        self._choice = fn
        self.verbose_labels = (self._trace is not None
                               or self._choice is not None)

    # ------------------------------------------------------------------
    # Lazy-cancel compaction
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._dead += 1
        threshold = self._compact_dead_min
        if (threshold is not None and self._dead >= threshold
                and 2 * self._dead >= len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without dead events.

        Heap pop order depends only on the (time, prio, seq) keys, which
        are unique per event, so re-heapifying the survivors yields the
        exact same firing sequence.  Compacted-away events are *not*
        recycled: their handles were cancelled externally and may still
        be held.
        """
        self._queue = [entry for entry in self._queue if entry[3].alive]
        heapq.heapify(self._queue)
        self._dead = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Actors and completion
    # ------------------------------------------------------------------
    def add_actor(self, actor: Any) -> None:
        """Register an object with a ``done`` attribute (or property).

        ``run()`` reports a deadlock if the queue drains while any actor's
        ``done`` is false.
        """
        self._actors.append(actor)

    def _incomplete_actors(self) -> list[Any]:
        return [a for a in self._actors if not getattr(a, "done", True)]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Drain the event queue.

        Runs until the queue is empty, until the optional ``until`` cycle,
        or until ``max_cycles``.  Returns the final simulated time.  Raises
        :class:`DeadlockError` if the queue empties with incomplete actors,
        and :class:`SimulationError` on a cycle-budget overrun (which in
        this codebase nearly always means livelock).  An explicit
        ``until`` always returns for resumption -- including the boundary
        case ``until == max_cycles`` -- because the caller asked for the
        pause; only running past ``max_cycles`` *without* a requested
        stop is the livelock diagnostic.
        """
        limit = self.max_cycles
        if until is not None:
            limit = until if limit is None else min(limit, until)
        queue = self._queue
        pop = heapq.heappop
        trace = self._trace
        dispatch = self.on_dispatch
        debug = self.debug_handles
        getrefcount = sys.getrefcount
        free = self._free if self._recycle else None
        fired = 0
        try:
            while queue:
                entry = pop(queue)
                event = entry[3]
                if not event.alive:
                    self._dead -= 1
                    if free is not None:
                        event.fn = event.args = None
                        free.append(event)
                    continue
                time = entry[0]
                if limit is not None and time > limit:
                    # Push it back: the caller may resume later.
                    heapq.heappush(queue, entry)
                    self.now = limit
                    if until is not None and (self.max_cycles is None
                                              or until <= self.max_cycles):
                        return self.now
                    raise SimulationError(
                        f"cycle budget exhausted at {limit} cycles with "
                        f"{len(queue)} pending events; "
                        f"blocked actors: {self._incomplete_actors()!r}")
                self.now = time
                fired += 1
                fn = event.fn
                args = event.args
                if trace is not None:  # pragma: no cover - debug hook
                    trace(time, event.label)
                if dispatch is not None:
                    dispatch(time, event.label)
                if free is not None and not debug:
                    # Recycle *before* dispatch so callbacks that schedule
                    # reuse this very object; the handle contract (valid
                    # only until the event fires) makes this safe.
                    event.fn = event.args = None
                    free.append(event)
                fn(*args)
                if debug:
                    # Handle audit: by the time dispatch returns, every
                    # legitimate holder has dropped its reference (the
                    # timer pattern nulls the field inside the firing
                    # callback).  Expected references here: the `event`
                    # local, the popped entry tuple, and getrefcount's
                    # own argument -- anything beyond that is a tap or
                    # tracer retaining a recyclable handle.
                    if getrefcount(event) > 3:
                        raise HandleLeakError(
                            f"event {event!r} still referenced after "
                            f"firing at t={time}; a hook or holder kept "
                            f"a recyclable handle")
                    if free is not None:
                        event.fn = event.args = None
                        free.append(event)
                if queue is not self._queue:  # compaction replaced it
                    queue = self._queue
        finally:
            self._events_fired += fired
        stuck = self._incomplete_actors()
        if stuck:
            raise DeadlockError(
                f"event queue drained at cycle {self.now} but "
                f"{len(stuck)} actor(s) incomplete: "
                + ", ".join(repr(a) for a in stuck))
        return self.now

    def pending(self) -> int:
        """Number of live events still queued (cancelled ones excluded)."""
        return sum(1 for entry in self._queue if entry[3].alive)

    def kernel_stats(self) -> dict:
        """Observational batching/compaction telemetry (repro.obs feeds
        this into the ``sim.kernel.*`` metric family).  The reference
        backend dispatches one event at a time, so its batch-size
        histogram is empty."""
        return {"backend": self.backend,
                "compactions": self.compactions,
                "batch_sizes": {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self.now} queued={len(self._queue)} "
                f"fired={self._events_fired}>")


class BatchedSimulator(Simulator):
    """Cycle-batched calendar-queue event core.

    Same contract as :class:`Simulator` -- same dispatch order, same
    hook semantics, same errors -- with a different queue organisation:
    events land in per-cycle *buckets* (a dict of lists keyed by time)
    and the heap holds only the populated cycle times, so it is a sparse
    index rather than the event store.  :meth:`run` drains one cycle's
    whole batch in a single inner loop, which removes the per-event heap
    sift, the ``(time, prio, seq, event)`` key-tuple allocation, and the
    scheduler re-entry for same-cycle cascades (a bus grant fanning out
    to N snoop handlers appends to the live batch instead of sifting
    through the global heap).

    Ordering contract (pinned by the cross-backend equivalence suite and
    by the RPRL record log, which fingerprints the dispatch order):

    * batches drain in ascending time order (the sparse heap);
    * within a batch, events fire in ``(prio, seq)`` order.  With no
      choice hook every prio is 0, so append order *is* seq order and
      the batch needs no sorting at all; with a choice hook the batch is
      kept as a ``(prio, seq, event)`` heap;
    * an event scheduled for the *current* cycle during its drain joins
      the live batch and fires after all earlier-seq same-cycle events
      -- exactly where the reference heap would have popped it.

    Lazy cancellation is accounted at bucket granularity: cancelled
    events still in undrained buckets are dropped (and their handles'
    storage recycled) when their bucket comes up, instead of surviving
    to per-event dispatch checks; only a cancellation that lands *inside*
    the currently draining batch is caught by the dispatch-time check.
    """

    backend = "batched"

    def __init__(self, max_cycles: Optional[int] = None, *,
                 recycle_events: bool = True,
                 compact_dead_min: Optional[int] = COMPACT_DEAD_MIN,
                 debug_handles: bool = False):
        super().__init__(max_cycles, recycle_events=recycle_events,
                         compact_dead_min=compact_dead_min,
                         debug_handles=debug_handles)
        #: time -> list of events scheduled for that cycle (undrained).
        self._buckets: dict[int, list[Event]] = {}
        #: Sparse index: heap of populated cycle times.  A time may
        #: appear more than once after a compaction emptied its bucket
        #: and a later schedule repopulated it; stale entries are
        #: skipped at drain time.
        self._times: list[int] = []
        #: Total queued events (live + cancelled), mirroring what
        #: ``len(_queue)`` is to the reference backend.
        self._qsize = 0
        # The batch currently draining: FIFO list (no choice hook) or a
        # (prio, seq, event) heap; ``_active_time`` routes same-cycle
        # schedules into it.
        self._active_fifo: Optional[list[Event]] = None
        self._active_heap: Optional[list] = None
        self._active_time: Optional[int] = None
        #: Batch-size histogram: slot i counts drained batches of
        #: 2**(i-1)+1 .. 2**i events (slot 0: all-cancelled batches).
        self._batch_hist = [0] * BATCH_HIST_SLOTS

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., None], *args: Any,
                 label: str = "") -> Event:
        """Same contract as :meth:`Simulator.schedule`; lands the event
        in its cycle bucket (or the live batch for same-cycle
        cascades)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        seq = self._seq
        choice = self._choice
        prio = choice(label) if choice is not None else 0
        time = self.now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.prio = prio
            event.seq = seq
            event.fn = fn
            event.args = args
            event.alive = True
            event.label = label
        else:
            event = Event(time, seq, fn, args, label, prio=prio)
            event.sim = self
        self._qsize += 1
        # Branch order is by observed frequency: append to an existing
        # bucket, then same-cycle cascade (its bucket was popped by the
        # drain loop, so .get misses), then a brand-new bucket.
        bucket = self._buckets.get(time)
        if bucket is not None:
            bucket.append(event)
        elif time == self._active_time:
            # Same-cycle cascade: join the batch being drained.
            if self._active_heap is not None:
                heapq.heappush(self._active_heap, (prio, seq, event))
            else:
                self._active_fifo.append(event)
        else:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        return event

    # ------------------------------------------------------------------
    # Lazy-cancel compaction (bucket-granular)
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._dead += 1
        threshold = self._compact_dead_min
        if (threshold is not None and self._dead >= threshold
                and 2 * self._dead >= self._qsize):
            self._compact()

    def _compact(self) -> None:
        """Rebuild undrained buckets without dead events.

        Only whole buckets are filtered; a cancelled event inside the
        currently draining batch stays where it is (the dispatch-time
        alive check reaps it), so ``_dead`` keeps counting exactly those
        stragglers.  Compacted-away events are *not* recycled: their
        handles were cancelled externally and may still be held.
        """
        buckets = self._buckets
        removed = 0
        for time in list(buckets):
            bucket = buckets[time]
            live = [event for event in bucket if event.alive]
            if len(live) != len(bucket):
                removed += len(bucket) - len(live)
                if live:
                    buckets[time] = live
                else:
                    # The time stays in the sparse index; the drain loop
                    # skips stale entries.
                    del buckets[time]
        self._dead -= removed
        self._qsize -= removed
        self.compactions += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Drain the calendar queue batch by batch.

        Semantics are identical to :meth:`Simulator.run` (the docstring
        there is the contract); every limit comparison happens at batch
        granularity because all events of a batch share one timestamp.
        """
        limit = self.max_cycles
        if until is not None:
            limit = until if limit is None else min(limit, until)
        # One float compare replaces the ``limit is not None and ...``
        # pair on every batch; the raise path below re-reads ``limit``.
        horizon = float("inf") if limit is None else limit
        buckets = self._buckets
        pop_bucket = buckets.pop
        times = self._times
        heappop = heapq.heappop
        trace = self._trace
        dispatch = self.on_dispatch
        debug = self.debug_handles
        getrefcount = sys.getrefcount
        free = self._free if self._recycle else None
        # With no hooks and recycling on (the perf configuration) the
        # inner loop specialises away the per-event hook checks; the
        # hook bindings are sampled at run() entry, exactly like the
        # reference loop's local aliases.
        plain = (trace is None and dispatch is None and not debug
                 and free is not None)
        hist = self._batch_hist
        fired = 0
        try:
            while times:
                time = times[0]
                bucket = pop_bucket(time, None)
                if bucket is None:
                    # Stale index entry (bucket emptied by compaction).
                    heappop(times)
                    continue
                if time > horizon:
                    buckets[time] = bucket
                    self.now = limit
                    if until is not None and (self.max_cycles is None
                                              or until <= self.max_cycles):
                        return limit
                    raise SimulationError(
                        f"cycle budget exhausted at {limit} cycles with "
                        f"{self._qsize - self._dead} pending events; "
                        f"blocked actors: {self._incomplete_actors()!r}")
                heappop(times)
                self.now = time
                if self._dead:
                    # Bucket-drain cancellation reaping: drop events
                    # cancelled while this bucket waited, recycling them
                    # exactly as the reference pop loop would have.  The
                    # allocation-free scan runs first -- pending dead
                    # events usually live in *other* buckets.
                    for event in bucket:
                        if not event.alive:
                            live = [e for e in bucket if e.alive]
                            ndead = len(bucket) - len(live)
                            self._dead -= ndead
                            self._qsize -= ndead
                            if free is not None:
                                for e in bucket:
                                    if not e.alive:
                                        e.fn = e.args = None
                                        free.append(e)
                            bucket = live
                            break
                start = fired
                if self._choice is None:
                    # FIFO fast path: every prio is 0, so append order is
                    # (prio, seq) order and same-cycle cascades extend
                    # the live list in place (a list iterator picks up
                    # appends made during iteration).  ``index`` counts
                    # consumed events for queue-size accounting and for
                    # the exception-path restore; the active-batch
                    # markers stay set between buckets -- no callback
                    # can run between drains to observe them.
                    self._active_fifo = bucket
                    self._active_time = time
                    index = 0
                    try:
                        if plain:
                            for event in bucket:
                                index += 1
                                if event.alive:
                                    fired += 1
                                    fn = event.fn
                                    args = event.args
                                    event.fn = event.args = None
                                    free.append(event)
                                    fn(*args)
                                    if self._choice is not None:
                                        # A callback installed a choice
                                        # hook mid-batch: hand the
                                        # remainder to the heap path so
                                        # new prios order correctly.
                                        self._active_fifo = None
                                        rest = bucket[index:]
                                        self._qsize -= index
                                        index = 0
                                        bucket = ()
                                        fired += self._drain_prio(
                                            rest, time, free)
                                        break
                                else:
                                    self._dead -= 1
                                    event.fn = event.args = None
                                    free.append(event)
                        else:
                            for event in bucket:
                                index += 1
                                if not event.alive:
                                    self._dead -= 1
                                    if free is not None:
                                        event.fn = event.args = None
                                        free.append(event)
                                    continue
                                fired += 1
                                fn = event.fn
                                args = event.args
                                if trace is not None:  # pragma: no cover
                                    trace(time, event.label)
                                if dispatch is not None:
                                    dispatch(time, event.label)
                                if free is not None and not debug:
                                    event.fn = event.args = None
                                    free.append(event)
                                fn(*args)
                                if debug:
                                    # Same audit as the reference loop;
                                    # the batch list still holds the
                                    # event, standing in for the
                                    # reference's popped entry tuple.
                                    if getrefcount(event) > 3:
                                        raise HandleLeakError(
                                            f"event {event!r} still "
                                            f"referenced after firing "
                                            f"at t={time}; a hook or "
                                            f"holder kept a recyclable "
                                            f"handle")
                                    if free is not None:
                                        event.fn = event.args = None
                                        free.append(event)
                                if self._choice is not None:
                                    self._active_fifo = None
                                    rest = bucket[index:]
                                    self._qsize -= index
                                    index = 0
                                    bucket = ()
                                    fired += self._drain_prio(rest, time,
                                                              free)
                                    break
                    except BaseException:
                        # Keep the undispatched remainder resumable, as
                        # the reference heap would (events handed to
                        # _drain_prio restore themselves).
                        rest = bucket[index:]
                        if rest:
                            buckets[time] = rest
                            heapq.heappush(times, time)
                        raise
                    finally:
                        self._qsize -= index
                else:
                    self._active_time = time
                    fired += self._drain_prio(bucket, time, free)
                batch_fired = fired - start
                hist[batch_fired.bit_length()
                     if batch_fired < 2048 else BATCH_HIST_SLOTS - 1] += 1
        finally:
            self._events_fired += fired
            self._active_fifo = None
            self._active_heap = None
            self._active_time = None
        stuck = self._incomplete_actors()
        if stuck:
            raise DeadlockError(
                f"event queue drained at cycle {self.now} but "
                f"{len(stuck)} actor(s) incomplete: "
                + ", ".join(repr(a) for a in stuck))
        return self.now

    def _drain_prio(self, events: list[Event], time: int,
                    free: Optional[list[Event]]) -> int:
        """Drain one batch in (prio, seq) order via a per-batch heap
        (the choice-hook path; with unique seqs this reproduces exactly
        what the reference global heap would pop)."""
        heap = [(event.prio, event.seq, event) for event in events]
        heapq.heapify(heap)
        self._active_heap = heap
        heappop = heapq.heappop
        trace = self._trace
        dispatch = self.on_dispatch
        debug = self.debug_handles
        getrefcount = sys.getrefcount
        batch_fired = 0
        popped = 0
        try:
            while heap:
                entry = heappop(heap)
                popped += 1
                event = entry[2]
                if not event.alive:
                    self._dead -= 1
                    if free is not None:
                        event.fn = event.args = None
                        free.append(event)
                    continue
                batch_fired += 1
                fn = event.fn
                args = event.args
                if trace is not None:  # pragma: no cover - debug hook
                    trace(time, event.label)
                if dispatch is not None:
                    dispatch(time, event.label)
                if free is not None and not debug:
                    event.fn = event.args = None
                    free.append(event)
                fn(*args)
                if debug:
                    # ``entry`` keeps the tuple alive so the expected
                    # refcount matches the reference loop's audit.
                    if getrefcount(event) > 3:
                        raise HandleLeakError(
                            f"event {event!r} still referenced after "
                            f"firing at t={time}; a hook or holder kept "
                            f"a recyclable handle")
                    if free is not None:
                        event.fn = event.args = None
                        free.append(event)
        except BaseException:
            # Count the partial batch (run()'s accounting never sees
            # it) and keep the remainder resumable in stored
            # (prio, seq) order, as the reference heap would.
            self._events_fired += batch_fired
            if heap:
                rest = [entry[2] for entry in sorted(heap)]
                self._buckets[time] = rest
                heapq.heappush(self._times, time)
            raise
        finally:
            self._active_heap = None
            self._qsize -= popped
        return batch_fired

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live events still queued (cancelled ones excluded)."""
        return self._qsize - self._dead

    def kernel_stats(self) -> dict:
        # Slot i of the histogram counts batches of 2**(i-1) .. 2**i - 1
        # dispatched events; keys are the slot upper bounds.
        sizes = {}
        for slot, count in enumerate(self._batch_hist):
            if count:
                upper = 0 if slot == 0 else 2 ** slot - 1
                sizes[upper] = count
        return {"backend": self.backend,
                "compactions": self.compactions,
                "batch_sizes": sizes}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BatchedSimulator t={self.now} queued={self._qsize} "
                f"fired={self._events_fired}>")
