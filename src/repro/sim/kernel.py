"""Discrete-event simulation kernel.

The whole reproduction is event-driven rather than cycle-driven: every
latency-bearing action (a bus grant, a snoop broadcast, a data delivery, an
instruction block completing) is one scheduled event.  Time is measured in
processor clock cycles (the paper's target machine runs at 1 GHz, so one
cycle is one nanosecond, but nothing here depends on the wall-clock
interpretation).

The kernel deliberately knows nothing about coherence or processors; it only
orders callbacks.  Determinism matters for reproducibility: events scheduled
for the same cycle fire in scheduling order (a monotonically increasing
sequence number breaks ties), so a given seed always replays the exact same
interleaving.

Every experiment bottoms out in this loop, so it is also the hot path of
the whole reproduction.  Three allocation-level optimizations keep it
cheap without changing any observable ordering:

* **Event recycling.**  Fired (and reaped-cancelled) events go onto a
  free list and are reinitialized by the next :meth:`Simulator.schedule`
  instead of allocating a fresh object per event.
* **Lazy-cancel compaction.**  :meth:`Event.cancel` only marks the event
  dead; when dead events exceed both an absolute floor and half the heap,
  the queue is rebuilt without them.  (time, prio, seq) keys are unique,
  so re-heapifying cannot change pop order.
* **Hoisted hooks.**  The per-event trace check and heap accessors are
  bound once per :meth:`Simulator.run` call, and ``verbose_labels`` tells
  callers whether anyone (tracer or choice hook) will ever look at an
  event label, letting hot call sites skip f-string construction.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Optional

# Lazy-cancel compaction fires when at least this many dead events are
# queued *and* they outnumber half the heap.
COMPACT_DEAD_MIN = 64


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class HandleLeakError(SimulationError):
    """Raised (in ``debug_handles`` mode only) when an Event is still
    referenced by someone after it fired.

    The free list recycles Event objects, so a handle is only valid
    until its event fires; a tap, tracer or timer holder that keeps the
    reference past that point will later observe the object
    reinitialized as an unrelated event.  This error names the event
    whose handle leaked so the offending holder can be found.
    """


class DeadlockError(SimulationError):
    """Raised when the event queue drains while registered actors are
    still incomplete.

    In a correct run the queue only drains after every thread program has
    finished.  An early drain means some component is waiting for an event
    that will never come -- the simulator equivalent of a hardware deadlock
    -- and the diagnostic message lists who was still blocked.
    """


class Event:
    """A scheduled callback.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when popped.  This is how spin-wait timeouts and
    superseded wakeups are handled without scrubbing the heap.

    ``prio`` orders events within a cycle ahead of the sequence number;
    it is 0 (pure FIFO) unless a schedule choice hook is installed.

    **Handle lifetime:** the kernel recycles Event objects through a free
    list, so a handle returned by :meth:`Simulator.schedule` is only valid
    until the event fires or is reaped.  Holders that may outlive their
    event must drop the reference once it has fired (the pattern used for
    pending-timer handles: the firing callback nulls the holder's field
    before anything else runs).
    """

    __slots__ = ("time", "prio", "seq", "fn", "args", "alive", "label",
                 "sim")

    def __init__(self, time: int, seq: int, fn: Callable[..., None],
                 args: tuple, label: str = "", prio: int = 0):
        self.time = time
        self.prio = prio
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        self.label = label
        self.sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.alive:
            self.alive = False
            sim = self.sim
            if sim is not None:
                sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.prio != other.prio:
            return self.prio < other.prio
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.alive else " (cancelled)"
        name = self.label or getattr(self.fn, "__qualname__", str(self.fn))
        return f"<Event t={self.time} #{self.seq} {name}{state}>"


class Simulator:
    """The event queue and simulated clock.

    Components interact with the kernel through three calls:

    * :meth:`schedule` -- run a callback ``delay`` cycles from now;
    * :meth:`now` (property) -- the current simulated cycle;
    * :meth:`run` -- drain the queue until completion or a limit.

    Actors (typically processors) may register completion predicates via
    :meth:`add_actor`; :meth:`run` uses them to distinguish a clean finish
    from a deadlock.

    ``recycle_events`` and ``compact_dead_min`` expose the allocation
    optimizations for testing; both defaults are observationally pure
    (identical event order) and there is no reason to change them outside
    the kernel's own test suite.
    """

    def __init__(self, max_cycles: Optional[int] = None, *,
                 recycle_events: bool = True,
                 compact_dead_min: Optional[int] = COMPACT_DEAD_MIN,
                 debug_handles: bool = False):
        #: Heap of ``(time, prio, seq, event)`` entries: the key tuple
        #: is compared natively by heapq (no Python-level ``__lt__``
        #: per sift step), and seq uniqueness means the Event itself is
        #: never reached by a comparison.
        self._queue: list[tuple[int, int, int, Event]] = []
        self._now = 0
        self._seq = 0
        self._events_fired = 0
        self.max_cycles = max_cycles
        self._actors: list[Any] = []
        self._choice: Optional[Callable[[str], int]] = None
        self._trace: Optional[Callable[[int, str], None]] = None
        #: True when a tracer or choice hook may read event labels; hot
        #: call sites consult this to skip building descriptive labels.
        self.verbose_labels = False
        self._free: list[Event] = []
        self._recycle = recycle_events
        self._compact_dead_min = compact_dead_min
        self._dead = 0
        #: Pure observation hook ``fn(cycle, label)`` fired for every
        #: dispatched event.  Unlike :attr:`trace` it does NOT flip
        #: :attr:`verbose_labels`: consumers (the flight recorder) see
        #: the cheap low-cardinality labels, and attaching one cannot
        #: change what any call site computes -- the schedule with the
        #: hook on is bit-identical to the schedule with it off.
        self.on_dispatch: Optional[Callable[[int, str], None]] = None
        #: Handle-lifetime checking (see :class:`HandleLeakError`).
        #: When on, fired events are recycled *after* dispatch and their
        #: refcount is audited first -- slower, for tests only.
        self.debug_handles = debug_handles

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for reporting)."""
        return self._events_fired

    @property
    def trace(self) -> Optional[Callable[[int, str], None]]:
        """Raw per-event debug hook ``fn(cycle, label)``.

        Installing it (or a choice hook) flips :attr:`verbose_labels` so
        call sites start producing descriptive labels.  The hook binding
        is sampled at each :meth:`run` call, not per event.
        """
        return self._trace

    @trace.setter
    def trace(self, fn: Optional[Callable[[int, str], None]]) -> None:
        self._trace = fn
        self.verbose_labels = (self._trace is not None
                               or self._choice is not None)

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any,
                 label: str = "") -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        Returns the :class:`Event`, which the caller may cancel (the
        handle is valid until the event fires; see :class:`Event`).
        Delays must be non-negative; a zero delay runs after all events
        already scheduled for the current cycle (FIFO within a cycle).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        choice = self._choice
        prio = choice(label) if choice is not None else 0
        time = self._now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.prio = prio
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.alive = True
            event.label = label
        else:
            event = Event(time, self._seq, fn, args, label, prio=prio)
            event.sim = self
        heapq.heappush(self._queue, (time, prio, self._seq, event))
        return event

    def set_choice_hook(self,
                        fn: Optional[Callable[[str], int]]) -> None:
        """Install a schedule *choice point*: ``fn(label)`` is consulted
        once per :meth:`schedule` call and its return value becomes the
        event's intra-cycle priority (lower fires first; ties fall back
        to FIFO order).

        The default (no hook) is strict FIFO within a cycle.  The
        schedule explorer installs a seeded random hook here to perturb
        same-cycle interleavings -- every distinct seed then explores a
        different but fully reproducible legal ordering.
        """
        self._choice = fn
        self.verbose_labels = (self._trace is not None
                               or self._choice is not None)

    # ------------------------------------------------------------------
    # Lazy-cancel compaction
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._dead += 1
        threshold = self._compact_dead_min
        if (threshold is not None and self._dead >= threshold
                and 2 * self._dead >= len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without dead events.

        Heap pop order depends only on the (time, prio, seq) keys, which
        are unique per event, so re-heapifying the survivors yields the
        exact same firing sequence.  Compacted-away events are *not*
        recycled: their handles were cancelled externally and may still
        be held.
        """
        self._queue = [entry for entry in self._queue if entry[3].alive]
        heapq.heapify(self._queue)
        self._dead = 0

    # ------------------------------------------------------------------
    # Actors and completion
    # ------------------------------------------------------------------
    def add_actor(self, actor: Any) -> None:
        """Register an object with a ``done`` attribute (or property).

        ``run()`` reports a deadlock if the queue drains while any actor's
        ``done`` is false.
        """
        self._actors.append(actor)

    def _incomplete_actors(self) -> list[Any]:
        return [a for a in self._actors if not getattr(a, "done", True)]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Drain the event queue.

        Runs until the queue is empty, until the optional ``until`` cycle,
        or until ``max_cycles``.  Returns the final simulated time.  Raises
        :class:`DeadlockError` if the queue empties with incomplete actors,
        and :class:`SimulationError` on a cycle-budget overrun (which in
        this codebase nearly always means livelock).  An explicit
        ``until`` always returns for resumption -- including the boundary
        case ``until == max_cycles`` -- because the caller asked for the
        pause; only running past ``max_cycles`` *without* a requested
        stop is the livelock diagnostic.
        """
        limit = self.max_cycles
        if until is not None:
            limit = until if limit is None else min(limit, until)
        queue = self._queue
        pop = heapq.heappop
        trace = self._trace
        dispatch = self.on_dispatch
        debug = self.debug_handles
        getrefcount = sys.getrefcount
        free = self._free if self._recycle else None
        fired = 0
        try:
            while queue:
                entry = pop(queue)
                event = entry[3]
                if not event.alive:
                    self._dead -= 1
                    if free is not None:
                        event.fn = event.args = None
                        free.append(event)
                    continue
                time = entry[0]
                if limit is not None and time > limit:
                    # Push it back: the caller may resume later.
                    heapq.heappush(queue, entry)
                    self._now = limit
                    if until is not None and (self.max_cycles is None
                                              or until <= self.max_cycles):
                        return self._now
                    raise SimulationError(
                        f"cycle budget exhausted at {limit} cycles with "
                        f"{len(queue)} pending events; "
                        f"blocked actors: {self._incomplete_actors()!r}")
                self._now = time
                fired += 1
                fn = event.fn
                args = event.args
                if trace is not None:  # pragma: no cover - debug hook
                    trace(time, event.label)
                if dispatch is not None:
                    dispatch(time, event.label)
                if free is not None and not debug:
                    # Recycle *before* dispatch so callbacks that schedule
                    # reuse this very object; the handle contract (valid
                    # only until the event fires) makes this safe.
                    event.fn = event.args = None
                    free.append(event)
                fn(*args)
                if debug:
                    # Handle audit: by the time dispatch returns, every
                    # legitimate holder has dropped its reference (the
                    # timer pattern nulls the field inside the firing
                    # callback).  Expected references here: the `event`
                    # local, the popped entry tuple, and getrefcount's
                    # own argument -- anything beyond that is a tap or
                    # tracer retaining a recyclable handle.
                    if getrefcount(event) > 3:
                        raise HandleLeakError(
                            f"event {event!r} still referenced after "
                            f"firing at t={time}; a hook or holder kept "
                            f"a recyclable handle")
                    if free is not None:
                        event.fn = event.args = None
                        free.append(event)
                if queue is not self._queue:  # compaction replaced it
                    queue = self._queue
        finally:
            self._events_fired += fired
        stuck = self._incomplete_actors()
        if stuck:
            raise DeadlockError(
                f"event queue drained at cycle {self._now} but "
                f"{len(stuck)} actor(s) incomplete: "
                + ", ".join(repr(a) for a in stuck))
        return self._now

    def pending(self) -> int:
        """Number of live events still queued (cancelled ones excluded)."""
        return sum(1 for entry in self._queue if entry[3].alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now} queued={len(self._queue)} "
                f"fired={self._events_fired}>")
