"""Discrete-event simulation kernel.

The whole reproduction is event-driven rather than cycle-driven: every
latency-bearing action (a bus grant, a snoop broadcast, a data delivery, an
instruction block completing) is one scheduled event.  Time is measured in
processor clock cycles (the paper's target machine runs at 1 GHz, so one
cycle is one nanosecond, but nothing here depends on the wall-clock
interpretation).

The kernel deliberately knows nothing about coherence or processors; it only
orders callbacks.  Determinism matters for reproducibility: events scheduled
for the same cycle fire in scheduling order (a monotonically increasing
sequence number breaks ties), so a given seed always replays the exact same
interleaving.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while registered actors are
    still incomplete.

    In a correct run the queue only drains after every thread program has
    finished.  An early drain means some component is waiting for an event
    that will never come -- the simulator equivalent of a hardware deadlock
    -- and the diagnostic message lists who was still blocked.
    """


class Event:
    """A scheduled callback.

    Events are cancellable: :meth:`cancel` marks the event dead and the
    kernel skips it when popped.  This is how spin-wait timeouts and
    superseded wakeups are handled without scrubbing the heap.

    ``prio`` orders events within a cycle ahead of the sequence number;
    it is 0 (pure FIFO) unless a schedule choice hook is installed.
    """

    __slots__ = ("time", "prio", "seq", "fn", "args", "alive", "label")

    def __init__(self, time: int, seq: int, fn: Callable[..., None],
                 args: tuple, label: str = "", prio: int = 0):
        self.time = time
        self.prio = prio
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.alive = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.prio, self.seq) < \
            (other.time, other.prio, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.alive else " (cancelled)"
        name = self.label or getattr(self.fn, "__qualname__", str(self.fn))
        return f"<Event t={self.time} #{self.seq} {name}{state}>"


class Simulator:
    """The event queue and simulated clock.

    Components interact with the kernel through three calls:

    * :meth:`schedule` -- run a callback ``delay`` cycles from now;
    * :meth:`now` (property) -- the current simulated cycle;
    * :meth:`run` -- drain the queue until completion or a limit.

    Actors (typically processors) may register completion predicates via
    :meth:`add_actor`; :meth:`run` uses them to distinguish a clean finish
    from a deadlock.
    """

    def __init__(self, max_cycles: Optional[int] = None):
        self._queue: list[Event] = []
        self._now = 0
        self._seq = 0
        self._events_fired = 0
        self.max_cycles = max_cycles
        self._actors: list[Any] = []
        self.trace: Optional[Callable[[int, str], None]] = None
        self._choice: Optional[Callable[[str], int]] = None

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for reporting)."""
        return self._events_fired

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any,
                 label: str = "") -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        Returns the :class:`Event`, which the caller may cancel.  Delays
        must be non-negative; a zero delay runs after all events already
        scheduled for the current cycle (FIFO within a cycle).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        prio = self._choice(label) if self._choice is not None else 0
        event = Event(self._now + delay, self._seq, fn, args, label,
                      prio=prio)
        heapq.heappush(self._queue, event)
        return event

    def set_choice_hook(self,
                        fn: Optional[Callable[[str], int]]) -> None:
        """Install a schedule *choice point*: ``fn(label)`` is consulted
        once per :meth:`schedule` call and its return value becomes the
        event's intra-cycle priority (lower fires first; ties fall back
        to FIFO order).

        The default (no hook) is strict FIFO within a cycle.  The
        schedule explorer installs a seeded random hook here to perturb
        same-cycle interleavings -- every distinct seed then explores a
        different but fully reproducible legal ordering.
        """
        self._choice = fn

    # ------------------------------------------------------------------
    # Actors and completion
    # ------------------------------------------------------------------
    def add_actor(self, actor: Any) -> None:
        """Register an object with a ``done`` attribute (or property).

        ``run()`` reports a deadlock if the queue drains while any actor's
        ``done`` is false.
        """
        self._actors.append(actor)

    def _incomplete_actors(self) -> list[Any]:
        return [a for a in self._actors if not getattr(a, "done", True)]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> int:
        """Drain the event queue.

        Runs until the queue is empty, until the optional ``until`` cycle,
        or until ``max_cycles``.  Returns the final simulated time.  Raises
        :class:`DeadlockError` if the queue empties with incomplete actors,
        and :class:`SimulationError` on a cycle-budget overrun (which in
        this codebase nearly always means livelock).  An explicit
        ``until`` always returns for resumption -- including the boundary
        case ``until == max_cycles`` -- because the caller asked for the
        pause; only running past ``max_cycles`` *without* a requested
        stop is the livelock diagnostic.
        """
        limit = self.max_cycles
        if until is not None:
            limit = until if limit is None else min(limit, until)
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.alive:
                continue
            if limit is not None and event.time > limit:
                # Push it back: the caller may resume later.
                heapq.heappush(self._queue, event)
                self._now = limit
                if until is not None and (self.max_cycles is None
                                          or until <= self.max_cycles):
                    return self._now
                raise SimulationError(
                    f"cycle budget exhausted at {limit} cycles with "
                    f"{len(self._queue)} pending events; "
                    f"blocked actors: {self._incomplete_actors()!r}")
            self._now = event.time
            self._events_fired += 1
            if self.trace is not None:  # pragma: no cover - debug hook
                self.trace(self._now, event.label)
            event.fn(*event.args)
        stuck = self._incomplete_actors()
        if stuck:
            raise DeadlockError(
                f"event queue drained at cycle {self._now} but "
                f"{len(stuck)} actor(s) incomplete: "
                + ", ".join(repr(a) for a in stuck))
        return self._now

    def pending(self) -> int:
        """Number of live events still queued (cancelled ones excluded)."""
        return sum(1 for e in self._queue if e.alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now} queued={len(self._queue)} "
                f"fired={self._events_fired}>")
