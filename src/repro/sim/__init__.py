"""Discrete-event simulation substrate: kernel, RNG streams, statistics."""

from repro.sim.kernel import DeadlockError, Event, SimulationError, Simulator
from repro.sim.rng import LatencyPerturber, RandomStreams
from repro.sim.stats import CpuStats, SimStats

__all__ = [
    "Simulator", "Event", "SimulationError", "DeadlockError",
    "RandomStreams", "LatencyPerturber",
    "SimStats", "CpuStats",
]
