"""TLR timestamps (paper Section 2.1.2).

A timestamp is the pair (local logical clock, processor id).  The logical
clock counts *successful TLR executions* on that processor; processor id
breaks ties, making every timestamp globally unique.  Priority order is
plain tuple order -- earlier timestamp wins a conflict.

The three invariants of Section 4 live here:

a) the timestamp is retained and re-used across conflict-induced
   misspeculations (``current()`` returns the same value until
   ``commit()``);
b) the clock is updated strictly monotonically on success -- to one more
   than its previous value or one more than the highest conflicting clock
   observed, whichever is larger (keeping clocks loosely synchronized);
c) conflict resolution elsewhere guarantees the earliest timestamp never
   loses, so (a)+(b) give every processor eventual victory: starvation
   freedom.

Fixed-width rollover (the paper notes it is easily handled because
timestamps only ever *compare* two live contenders) is modelled by an
optional modulus with window-based comparison; tests exercise it, the
default is unbounded.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.messages import Timestamp


class TimestampAuthority:
    """Per-processor logical clock implementing the TLR update rules."""

    def __init__(self, cpu_id: int, modulus: Optional[int] = None):
        self.cpu_id = cpu_id
        self.clock = 0
        self.modulus = modulus
        self._active: Optional[Timestamp] = None
        self._max_conflicting_clock = -1

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> Timestamp:
        """Timestamp for a new transaction (reused across its restarts)."""
        if self._active is None:
            self._active = (self.clock, self.cpu_id)
        return self._active

    def current(self) -> Optional[Timestamp]:
        return self._active

    def observe_conflict(self, other: Optional[Timestamp]) -> None:
        """Record the clock of a conflicting request (for loose sync)."""
        if other is not None:
            self._max_conflicting_clock = max(self._max_conflicting_clock,
                                              other[0])

    def commit(self) -> None:
        """Successful TLR execution: advance the clock monotonically."""
        new_clock = max(self.clock + 1, self._max_conflicting_clock + 1)
        if self.modulus is not None:
            new_clock %= self.modulus
        self.clock = new_clock
        self._active = None
        self._max_conflicting_clock = -1

    def abandon(self) -> None:
        """Transaction fell back to a real lock acquisition: the clock is
        *not* updated (no successful TLR execution happened), but the
        active timestamp is released."""
        self._active = None
        self._max_conflicting_clock = -1
