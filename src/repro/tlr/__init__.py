"""Transactional Lock Removal: timestamps and deferral machinery."""

from repro.tlr.deferral import ChainState, DeferredEntry, DeferredQueue
from repro.tlr.guarantee import FootprintGuarantee, guaranteed_footprint
from repro.tlr.timestamp import TimestampAuthority

__all__ = ["TimestampAuthority", "DeferredQueue", "DeferredEntry",
           "ChainState", "FootprintGuarantee", "guaranteed_footprint"]
