"""Architecturally-specified transaction-size guarantees (Section 4).

The paper's stability guarantees are conditional on resources: "if the
system has a 16 entry victim cache and a 4-way data cache, the
programmer can be sure any transaction accessing 20 cache lines or less
is ensured a lock-free execution."  This module computes that contract
from a :class:`SystemConfig`, so software that wants *guaranteed*
wait-free critical sections can size them against the published bound
(the paper's Section 8: "The size of transactions can be architecturally
specified thus guaranteeing programmers a wait-free critical section
execution").

The worst case for reads is every accessed line mapping to one cache
set: the set holds ``assoc`` lines and the victim cache catches the
rest.  Written lines are additionally bounded by the speculative write
buffer.  Nesting is bounded by the elision-tracking depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.config import SystemConfig


@dataclass(frozen=True)
class FootprintGuarantee:
    """The transaction footprint guaranteed a lock-free execution."""

    total_lines: int      # lines a transaction may access, worst case
    written_lines: int    # of those, lines it may write
    nesting_depth: int    # nested elisions trackable

    def admits(self, read_lines: int, written_lines: int = 0,
               nesting: int = 1) -> bool:
        """True when a transaction with this footprint is guaranteed a
        lock-free (and hence, under TLR, wait-free) execution."""
        return (read_lines + written_lines <= self.total_lines
                and written_lines <= self.written_lines
                and nesting <= self.nesting_depth)


def guaranteed_footprint(config: SystemConfig) -> FootprintGuarantee:
    """Compute the architectural guarantee for a machine configuration.

    Note the lock line itself occupies one guaranteed slot (it is read
    and tracked within the transaction), which is why the usable data
    footprint is one line less than the raw bound.
    """
    raw = config.cache.assoc + config.cache.victim_entries
    total = raw - 1  # one slot for the elided lock's line
    return FootprintGuarantee(
        total_lines=total,
        written_lines=min(total, config.spec.write_buffer_entries),
        nesting_depth=config.spec.elision_depth)
