"""Deferral machinery (paper Section 3).

A TLR processor that wins a conflict does not NACK the loser; it *defers*
the loser's request -- buffers it in a hardware queue at the coherence
controller and masks the conflict, responding only after its transaction
commits (or after it loses a later conflict).  Coherence-wise the
transaction has already been ordered; only the data response is delayed.

``DeferredQueue`` is that hardware queue.  Entries are serviced strictly
in arrival order (the paper: "service earlier deferred requests in-order
and then service the conflicting incoming request").  At most one entry
per line can exist because bus order hands line ownership to the first
requester -- later requesters chain behind *it*, not behind us.

``ChainState`` tracks the marker/probe bookkeeping of Section 3.1.1 for
one outstanding miss: the upstream neighbour a marker taught us, and any
probe timestamps that arrived before the marker did (flushed upstream as
soon as the neighbour becomes known).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coherence.messages import BusRequest, Timestamp


@dataclass(slots=True)
class DeferredEntry:
    """One deferred incoming request."""

    request: BusRequest
    arrival: int          # simulated time the deferral decision was made

    @property
    def line(self) -> int:
        return self.request.line


class DeferredQueue:
    """The deferred coherence input queue of paper Figure 5."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._entries: list[DeferredEntry] = []

    def push(self, request: BusRequest, now: int) -> None:
        if request.kind.is_write and any(
                e.line == request.line and e.request.kind.is_write
                for e in self._entries):
            # Bus order hands a line's ownership to the first exclusive
            # requester, so later writers chain behind *it*, never here.
            raise RuntimeError(
                f"second exclusive deferral for line {request.line:#x}")
        if len(self._entries) >= self.capacity:
            raise RuntimeError("deferred queue overflow")
        self._entries.append(DeferredEntry(request, now))

    def drain(self) -> list[DeferredEntry]:
        """Remove and return all entries in arrival order."""
        entries, self._entries = self._entries, []
        return entries

    def entries(self) -> tuple[DeferredEntry, ...]:
        """Read-only view of the queued entries in arrival order (used
        by the invariant monitors to build the global waits-for graph
        without reaching into queue internals)."""
        return tuple(self._entries)

    def requesters(self) -> set[int]:
        """CPU ids whose requests are currently buffered here -- i.e.
        the processors *waiting on* this controller's transaction."""
        return {e.request.requester for e in self._entries}

    def lines(self) -> set[int]:
        return {e.line for e in self._entries}

    def has_line(self, line: int) -> bool:
        """Allocation-free membership test (hot: consulted on every miss
        and probe while speculating; the queue is nearly always tiny)."""
        for e in self._entries:
            if e.request.line == line:
                return True
        return False

    def only_line(self, line: int) -> bool:
        """True when every queued entry (if any) targets ``line`` --
        the allocation-free form of ``lines() <= {line}``."""
        for e in self._entries:
            if e.request.line != line:
                return False
        return True

    def earliest_ts(self) -> Optional[Timestamp]:
        stamps = [e.request.ts for e in self._entries
                  if e.request.ts is not None]
        return min(stamps) if stamps else None

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


@dataclass(slots=True)
class ChainState:
    """Marker/probe bookkeeping for one line's outstanding miss.

    Probes are *not* deduplicated: a probe can land while its target is
    mid-restart (speculation briefly off) and be ignored, so waiters
    re-issue probes on a watchdog period until their miss completes.
    Probes travel strictly upstream along marker edges, so each receipt
    causes at most one forward -- no loops, bounded volume.
    """

    upstream: Optional[int] = None
    pending_probes: list[Timestamp] = field(default_factory=list)

    def learn_upstream(self, node: int) -> list[Timestamp]:
        """Record the marker sender; return probes awaiting forwarding."""
        self.upstream = node
        pending, self.pending_probes = self.pending_probes, []
        return pending

    def queue_probe(self, ts: Timestamp) -> bool:
        """Returns True when the probe can be forwarded now; otherwise
        holds it until the upstream neighbour becomes known."""
        if self.upstream is None:
            self.pending_probes.append(ts)
            return False
        return True
