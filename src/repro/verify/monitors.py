"""Always-on invariant monitors for TLR runs.

Where the oracle (:mod:`repro.verify.oracle`) judges a *finished*
execution, the monitors fire **during** one, at the coherence events
where the paper's safety and liveness arguments live:

* **Coherence safety** -- after any event that changes a line's state
  somewhere (data grant, upgrade, invalidation, obligation service), at
  most one cache may hold the line writable (M/E) and at most one may be
  its owner (M/O/E).  With ``strict_exclusive`` (the verify default)
  the full MOESI reading is asserted too: a writable copy implies no
  other valid copy anywhere.  That holds in this simulator because
  snoops apply invalidations synchronously at delivery; a future
  split-transaction invalidation model would need the flag off during
  the in-flight window.

* **Deferral-order sanity** -- every deferral the controllers take must
  be explainable by the *active contention policy's* declared ordering
  contract (:attr:`repro.policies.base.ContentionPolicy.ordering`).
  Under ``"timestamp"`` ordering (the paper's policies) that means:
  either the deferring transaction has the earlier timestamp, or the
  request was untimestamped under the ``defer`` policy, or it is the
  Section 3.2 single-block relaxation (which requires the relaxation
  preconditions to actually hold).  Under ``"none"`` (requester-wins)
  *any* deferral is illegal -- the holder must always surrender.  Under
  ``"priority"`` (backoff-aborts) a deferral is illegal when the
  requester carried the higher accumulated priority (ties broken by
  timestamp).  On top of that the global *waits-for* graph over
  deferral edges must stay acyclic: deferred requesters wait for their
  deferrer's commit, so a cycle is a wait deadlock the conflict order
  should have made impossible.

* **Starvation watchdog** -- the TLR liveness claim is that the
  earliest-timestamp transaction always succeeds.  A periodic event
  tracks the earliest active timestamp and its owner; if the same
  transaction stays earliest for ``patience`` consecutive windows
  without its processor committing anything, the claim is violated
  (livelock / starvation).  Policies without a timestamp contract make
  no per-transaction promise, so for them the watchdog degrades to a
  *global progress* check: if no processor anywhere completes a
  critical section for ``patience`` consecutive windows while
  speculation is live, the machine is livelocked.  (Completed critical
  sections are counted rather than committed elisions so that
  lock-fallback progress -- requester-wins bounding its losses --
  still counts as progress.)

Violations raise :class:`InvariantViolation` (a
:class:`~repro.sim.kernel.SimulationError`) so a failing run stops at
the first bad event with the simulated time attached -- or, with
``fail_fast=False``, are collected in :attr:`MonitorSuite.violations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.coherence.messages import beats
from repro.sim.kernel import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.coherence.controller import CacheController
    from repro.harness.machine import Machine


class InvariantViolation(SimulationError):
    """An invariant monitor caught the machine in an illegal state."""


@dataclass
class Violation:
    time: int
    kind: str      # "coherence" | "deferral-order" | "waits-cycle" | "starvation"
    cpu: Optional[int]
    line: Optional[int]
    detail: str

    def __str__(self) -> str:
        where = f"cpu{self.cpu}" if self.cpu is not None else "-"
        line = f" line={self.line:#x}" if self.line is not None else ""
        return f"[{self.kind} t={self.time} {where}{line}] {self.detail}"


class MonitorSuite:
    """Invariant monitors wired into every cache controller.

    Attach *before* ``run_workload``::

        monitors = MonitorSuite(machine).attach()
        machine.run_workload(workload)
        assert not monitors.violations
    """

    def __init__(self, machine: "Machine", *, fail_fast: bool = True,
                 strict_exclusive: bool = False,
                 watchdog_period: int = 20_000,
                 watchdog_patience: int = 10):
        self.machine = machine
        self.fail_fast = fail_fast
        self.strict_exclusive = strict_exclusive
        self.watchdog_period = watchdog_period
        self.watchdog_patience = watchdog_patience
        self.violations: list[Violation] = []
        self.checks = 0
        self.losses = 0
        self._last_progress: Optional[tuple] = None
        self._stuck_windows = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self) -> "MonitorSuite":
        for controller in self.machine.controllers:
            controller.monitor = self
        if self.machine.config.scheme.is_tlr:
            self._schedule_watchdog()
        return self

    def _fail(self, kind: str, cpu: Optional[int], line: Optional[int],
              detail: str) -> None:
        violation = Violation(time=self.machine.sim.now, kind=kind,
                              cpu=cpu, line=line, detail=detail)
        self.violations.append(violation)
        if self.fail_fast:
            raise InvariantViolation(str(violation))

    # ------------------------------------------------------------------
    # Hook: line state changed somewhere -- MOESI compatibility
    # ------------------------------------------------------------------
    def on_line_state(self, controller: "CacheController",
                      line_addr: int) -> None:
        self.checks += 1
        writable: list[int] = []
        owners: list[int] = []
        valid: list[int] = []
        for ctl in self.machine.controllers:
            line = ctl.cache.peek(line_addr)
            if line is None or not line.state.valid:
                continue
            valid.append(ctl.cpu_id)
            if line.state.writable:
                writable.append(ctl.cpu_id)
            if line.state.owned:
                owners.append(ctl.cpu_id)
        if len(writable) > 1:
            self._fail("coherence", controller.cpu_id, line_addr,
                       f"{len(writable)} writable (M/E) holders: "
                       f"cpus {writable}")
        if len(owners) > 1:
            self._fail("coherence", controller.cpu_id, line_addr,
                       f"{len(owners)} owners (M/O/E): cpus {owners}")
        if self.strict_exclusive and writable and len(valid) > 1:
            self._fail("coherence", controller.cpu_id, line_addr,
                       f"cpu{writable[0]} holds the line writable while "
                       f"cpus {sorted(set(valid) - set(writable))} still "
                       f"hold valid copies")

    # ------------------------------------------------------------------
    # Hook: a controller deferred an incoming request
    # ------------------------------------------------------------------
    def on_defer(self, controller: "CacheController", request) -> None:
        self.checks += 1
        self._check_defer_legal(controller, request)
        self._check_waits_for_acyclic(controller, request)

    def _check_defer_legal(self, controller, request) -> None:
        ordering = controller.policy.ordering
        if ordering == "none":
            self._fail("deferral-order", controller.cpu_id, request.line,
                       f"policy {controller.policy.name!r} declares no "
                       "deferral ordering, yet the holder deferred instead "
                       "of surrendering the line")
            return
        if ordering == "priority":
            holder_prio = getattr(controller.policy, "priority", 0)
            if request.prio > holder_prio or (
                    request.prio == holder_prio
                    and beats(request.ts, controller.current_ts)):
                self._fail(
                    "deferral-order", controller.cpu_id, request.line,
                    f"deferred a higher-priority request (prio="
                    f"{request.prio} ts={request.ts} vs holder prio="
                    f"{holder_prio} ts={controller.current_ts})")
            return
        ts = request.ts
        if ts is None:
            if controller.config.spec.untimestamped_policy != "defer":
                self._fail("deferral-order", controller.cpu_id, request.line,
                           "untimestamped request deferred under the "
                           f"{controller.config.spec.untimestamped_policy!r} "
                           "policy")
            return
        if not beats(ts, controller.current_ts):
            return  # normal case: the deferrer has the earlier timestamp
        # The requester is *earlier* than us, yet we deferred it: only
        # the Section 3.2 single-block relaxation permits this, and only
        # when the transaction's entire deferral footprint is this one
        # block and it has no other transactional miss outstanding.
        spec = controller.config.spec
        if not spec.single_block_relaxation:
            self._fail("deferral-order", controller.cpu_id, request.line,
                       f"deferred an earlier-timestamped request "
                       f"(ts={ts} beats {controller.current_ts}) with the "
                       "single-block relaxation disabled")
            return
        extra_lines = controller.deferred.lines() - {request.line}
        if extra_lines:
            self._fail("deferral-order", controller.cpu_id, request.line,
                       "relaxation-deferred an earlier request while also "
                       f"deferring lines {sorted(extra_lines)}")
        outstanding = [m.line for m in controller.mshrs
                       if m.in_txn and m.line != request.line]
        if outstanding:
            self._fail("deferral-order", controller.cpu_id, request.line,
                       "relaxation-deferred an earlier request with "
                       f"transactional misses outstanding on lines "
                       f"{sorted(outstanding)}")

    def _check_waits_for_acyclic(self, controller, request) -> None:
        """Deferral edges only: requester waits for deferrer's commit.

        Marker-chain edges are deliberately excluded -- chains may
        transiently cycle (that is exactly what probes exist to break);
        the deferral queue, by contrast, parks a request until commit,
        so a deferral cycle is an un-breakable wait deadlock.
        """
        waits: dict[int, set[int]] = {}
        for ctl in self.machine.controllers:
            for requester in ctl.deferred.requesters():
                waits.setdefault(requester, set()).add(ctl.cpu_id)
        cycle = self._find_cycle(waits)
        if cycle is not None:
            path = " -> ".join(f"cpu{c}" for c in cycle + [cycle[0]])
            self._fail("waits-cycle", controller.cpu_id, request.line,
                       f"deferral waits-for cycle: {path}")

    @staticmethod
    def _find_cycle(edges: dict[int, set[int]]) -> Optional[list[int]]:
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[int, int] = {}
        parent: dict[int, int] = {}

        def colour_of(node: int) -> int:
            return colour.get(node, WHITE)

        for root in list(edges):
            if colour_of(root) != WHITE:
                continue
            stack = [(root, iter(sorted(edges.get(root, ()))))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour_of(nxt) == GREY:
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if colour_of(nxt) == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append(
                            (nxt, iter(sorted(edges.get(nxt, ())))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    # ------------------------------------------------------------------
    # Hook: a speculation lost a conflict (statistics only)
    # ------------------------------------------------------------------
    def on_loss(self, controller, reason: str, line_addr: int,
                incoming_ts) -> None:
        self.losses += 1

    # ------------------------------------------------------------------
    # Starvation watchdog
    # ------------------------------------------------------------------
    def _schedule_watchdog(self) -> None:
        self.machine.sim.schedule(self.watchdog_period, self._watchdog_tick,
                                  label="verify-watchdog")

    def _watchdog_tick(self) -> None:
        machine = self.machine
        if all(p.done for p in machine.processors):
            return  # run finished; let the event queue drain
        if machine.controllers[0].policy.ordering != "timestamp":
            self._global_progress_tick()
            self._schedule_watchdog()
            return
        progress = self._earliest_progress()
        if progress is None:
            self._last_progress = None
            self._stuck_windows = 0
        elif progress == self._last_progress:
            self._stuck_windows += 1
            if self._stuck_windows >= self.watchdog_patience:
                ts, cpu, _committed = progress
                self._fail(
                    "starvation", cpu, None,
                    f"earliest timestamp {ts} (cpu{cpu}) made no commit "
                    f"for {self._stuck_windows * self.watchdog_period} "
                    "cycles -- the earliest transaction is not winning")
                self._stuck_windows = 0
        else:
            self._last_progress = progress
            self._stuck_windows = 0
        self._schedule_watchdog()

    def _global_progress_tick(self) -> None:
        """Watchdog mode for policies without a timestamp contract
        (``ordering`` of ``"none"`` or ``"priority"``): no single
        transaction is promised to win, but *somebody* must.  Progress
        is counted as critical-section *completions*: entries minus
        restarts, since every restart re-enters the section -- and not
        committed elisions, so lock-fallback completions count too."""
        machine = self.machine
        completed = sum(p.stats.critical_sections - p.stats.restarts
                        for p in machine.processors)
        speculating = any(c.speculating for c in machine.controllers)
        if not speculating:
            self._last_progress = (completed,)
            self._stuck_windows = 0
            return
        if self._last_progress == (completed,):
            self._stuck_windows += 1
            if self._stuck_windows >= self.watchdog_patience:
                self._fail(
                    "starvation", None, None,
                    f"no critical section completed anywhere for "
                    f"{self._stuck_windows * self.watchdog_period} cycles "
                    f"while speculation is live (policy "
                    f"{machine.controllers[0].policy.name!r} is "
                    "livelocked)")
                self._stuck_windows = 0
        else:
            self._last_progress = (completed,)
            self._stuck_windows = 0

    def _earliest_progress(self) -> Optional[tuple]:
        """(earliest active timestamp, owner cpu, owner's commit count),
        or None when no transaction is live."""
        earliest: Optional[tuple] = None
        for ctl in self.machine.controllers:
            if ctl.speculating and ctl.current_ts is not None:
                if earliest is None or ctl.current_ts < earliest[0]:
                    committed = self.machine.processors[
                        ctl.cpu_id].stats.elisions_committed
                    earliest = (ctl.current_ts, ctl.cpu_id, committed)
        return earliest
