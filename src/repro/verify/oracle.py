"""Serializability oracle for TLR/SLE executions.

Two independent checks over one :class:`~repro.verify.recorder.FootprintRecorder`:

1. **Witness replay.**  The witness serial order is commit order.  The
   oracle replays the recorder's chronological log against a sequential
   reference memory: plain (non-transactional) writes apply in program
   order; at each transaction commit, every value the transaction read
   from architectural memory must equal the reference memory at that
   point, then its write set applies atomically.  Finally the reference
   memory must equal the machine's actual final memory image.  Any
   mismatch means the concurrent execution is *not* equivalent to the
   serial witness -- e.g. a lost update from a broken conflict decision.

2. **Conflict-graph acyclicity.**  A direct serialization graph (DSG)
   over *cache lines* -- the paper's conflict-detection granularity --
   with ww, wr and rw (anti-dependency) edges between committed
   transactions.  A cycle means no serial order at line granularity can
   explain the execution, even if the value-level replay happened to
   pass (e.g. silent A/B/A patterns).

The oracle proves **conflict-serializability of committed transactions
at cache-line granularity** -- see DESIGN.md for what that does *not*
prove (full linearizability of the client data structure, liveness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.isa import line_of
from repro.verify.recorder import COMMIT, PLAIN_WRITE, FootprintRecorder


@dataclass
class OracleViolation:
    """One serializability violation, with enough context to debug."""

    kind: str          # "stale-read" | "final-state" | "cycle"
    detail: str
    txn_id: Optional[int] = None
    cpu: Optional[int] = None
    time: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.txn_id is not None:
            where.append(f"txn={self.txn_id}")
        if self.cpu is not None:
            where.append(f"cpu={self.cpu}")
        if self.time is not None:
            where.append(f"t={self.time}")
        prefix = f"[{self.kind}" + (f" {' '.join(where)}" if where else "")
        return f"{prefix}] {self.detail}"


@dataclass
class OracleReport:
    """Outcome of one oracle run."""

    num_txns: int = 0
    num_plain_writes: int = 0
    edges: dict = field(default_factory=lambda: {"ww": 0, "wr": 0, "rw": 0})
    violations: list[OracleViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)})"
        return (f"oracle {status}: {self.num_txns} txns, "
                f"{self.num_plain_writes} plain writes, edges "
                f"ww={self.edges['ww']} wr={self.edges['wr']} "
                f"rw={self.edges['rw']}")


class SerializabilityOracle:
    """Checks one recorded execution for conflict-serializability."""

    def __init__(self, recorder: FootprintRecorder,
                 max_violations: int = 20):
        self.recorder = recorder
        self.max_violations = max_violations

    def check(self, final_snapshot: Optional[dict[int, int]] = None
              ) -> OracleReport:
        """Run both checks; ``final_snapshot`` is the machine's final
        memory image (``machine.store.snapshot()``) for the end-state
        equivalence check (skipped when None)."""
        report = OracleReport(num_txns=len(self.recorder.committed),
                              num_plain_writes=self.recorder.plain_writes)
        self._replay(report, final_snapshot)
        self._check_graph(report)
        return report

    # ------------------------------------------------------------------
    # Check 1: sequential replay in witness (commit) order
    # ------------------------------------------------------------------
    def _replay(self, report: OracleReport,
                final_snapshot: Optional[dict[int, int]]) -> None:
        ref: dict[int, int] = {}
        committed = self.recorder.committed
        for entry in self.recorder.log:
            if len(report.violations) >= self.max_violations:
                return
            if entry[0] == PLAIN_WRITE:
                _, _time, addr, value = entry
                ref[addr] = value
                continue
            assert entry[0] == COMMIT
            txn = committed[entry[1]]
            for obs in txn.reads:
                expect = ref.get(obs.addr, 0)
                if obs.value != expect:
                    report.violations.append(OracleViolation(
                        kind="stale-read", txn_id=txn.txn_id, cpu=txn.cpu,
                        time=obs.time,
                        detail=(f"read addr {obs.addr:#x} saw {obs.value} "
                                f"but the witness order implies {expect} "
                                f"at commit t={txn.commit_time}")))
            ref.update(txn.writes)
        if final_snapshot is None:
            return
        addrs = set(ref) | set(final_snapshot)
        for addr in sorted(addrs):
            if len(report.violations) >= self.max_violations:
                return
            want = ref.get(addr, 0)
            got = final_snapshot.get(addr, 0)
            if want != got:
                report.violations.append(OracleViolation(
                    kind="final-state",
                    detail=(f"addr {addr:#x}: witness replay ends with "
                            f"{want}, machine memory holds {got}")))

    # ------------------------------------------------------------------
    # Check 2: line-granularity conflict graph (DSG) acyclicity
    # ------------------------------------------------------------------
    def _check_graph(self, report: OracleReport) -> None:
        committed = self.recorder.committed
        # Per-(line, era) version order = commit order of the line's
        # transactional writers within one plain-write era.  A plain
        # write (e.g. a lock-fallback critical section -- routine under
        # contention policies that bound their losses with a lock
        # acquisition) starts a new era and totally orders the eras;
        # without the era split, two None-provenance reads on opposite
        # sides of a plain write would look like reads of the same
        # "initial" version and fabricate rw anti-dependency cycles.
        writers: dict[tuple[int, int], list[int]] = {}
        for txn in committed:
            for line in sorted(txn.written_lines):
                era = txn.line_eras.get(line, 0)
                writers.setdefault((line, era), []).append(txn.txn_id)
        line_eras: dict[int, list[int]] = {}
        for line, era in writers:
            line_eras.setdefault(line, []).append(era)
        for eras in line_eras.values():
            eras.sort()

        edges: dict[int, set[int]] = {t.txn_id: set() for t in committed}

        def add_edge(src: int, dst: int, kind: str) -> None:
            if src == dst or dst in edges[src]:
                return
            edges[src].add(dst)
            report.edges[kind] += 1

        # ww: consecutive writers within an era, plus the era boundary
        # (the plain write between two eras orders the last writer of
        # one before the first writer of the next).
        for line, eras in line_eras.items():
            for order in (writers[(line, era)] for era in eras):
                for a, b in zip(order, order[1:]):
                    add_edge(a, b, "ww")
            for ea, eb in zip(eras, eras[1:]):
                add_edge(writers[(line, ea)][-1], writers[(line, eb)][0],
                         "ww")

        for txn in committed:
            for obs in txn.reads:
                version = obs.line_writer
                if version is not None:
                    # wr: the writer whose line image this read observed
                    # must precede the reader.
                    add_edge(version, txn.txn_id, "wr")
                # rw: the reader must precede the line's *next* writer
                # after the version it read -- within the read's own
                # era, or failing that the first writer of a later era
                # (the plain write starting that era already happened
                # after the read).
                order = writers.get((obs.line, obs.era), [])
                if version is None:
                    later = list(order)
                else:
                    later = order[order.index(version) + 1:]
                for era in line_eras.get(obs.line, ()):
                    if era > obs.era:
                        later.extend(writers[(obs.line, era)])
                for writer in later:
                    if writer != txn.txn_id:
                        add_edge(txn.txn_id, writer, "rw")
                        break

        if len(report.violations) >= self.max_violations:
            return
        cycle = self._find_cycle(edges)
        if cycle is not None:
            path = " -> ".join(
                f"txn{t}(cpu{committed[t].cpu})" for t in cycle)
            report.violations.append(OracleViolation(
                kind="cycle",
                detail=f"conflict-graph cycle over cache lines: {path}"))

    @staticmethod
    def _find_cycle(edges: dict[int, set[int]]) -> Optional[list[int]]:
        """Iterative DFS; returns one cycle (closed path) if any."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in edges}
        parent: dict[int, int] = {}
        for root in edges:
            if colour[root] != WHITE:
                continue
            stack: list[tuple[int, list]] = [(root, iter(sorted(edges[root])))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == GREY:
                        # Back edge node -> nxt closes a cycle; walk the
                        # parent chain from node back to nxt to render it.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(edges[nxt]))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None
