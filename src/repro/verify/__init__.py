"""repro.verify -- correctness oracle for TLR/SLE executions.

Three layers, composable or standalone:

* :mod:`repro.verify.recorder` -- non-invasive footprint recording of
  every committed transaction (reads with provenance, write sets,
  commit order) plus the chronological log of plain writes.
* :mod:`repro.verify.oracle` -- post-hoc serializability judgement:
  sequential replay in witness commit order and cache-line
  conflict-graph acyclicity.
* :mod:`repro.verify.monitors` -- during-run invariant monitors wired
  into the coherence controllers: MOESI state compatibility, deferral
  timestamp-order and waits-for acyclicity, starvation watchdog.

:mod:`repro.verify.explorer` fans all of it across seeds (and the
kernel's schedule-chaos choice points) through the parallel engine, and
shrinks any failing seed to a minimal traced reproduction.  CLI:
``repro verify --seeds N --jobs J``.
"""

from repro.verify.explorer import (DEFAULT_VERIFY_WORKLOADS,
                                   ExplorationResult, ShrunkFailure,
                                   VerifyOptions, VerifyResult,
                                   VerifySuiteResult, explore,
                                   shrink_failure, verify_run,
                                   verify_specs, verify_suite, with_chaos)
from repro.verify.monitors import InvariantViolation, MonitorSuite, Violation
from repro.verify.oracle import (OracleReport, OracleViolation,
                                 SerializabilityOracle)
from repro.verify.recorder import (CommittedTxn, FootprintRecorder,
                                   ReadObservation)

__all__ = [
    "CommittedTxn",
    "DEFAULT_VERIFY_WORKLOADS",
    "ExplorationResult",
    "FootprintRecorder",
    "InvariantViolation",
    "MonitorSuite",
    "OracleReport",
    "OracleViolation",
    "ReadObservation",
    "SerializabilityOracle",
    "ShrunkFailure",
    "VerifyOptions",
    "VerifyResult",
    "VerifySuiteResult",
    "Violation",
    "explore",
    "shrink_failure",
    "verify_run",
    "verify_specs",
    "verify_suite",
    "with_chaos",
]
