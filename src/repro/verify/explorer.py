"""Seed-fanned schedule exploration with failure shrinking.

One verified run answers "was *this* interleaving serializable?".  The
explorer answers the useful question -- "can we find an interleaving
that is not?" -- by fanning a spec across hundreds of seeds (and,
optionally, the kernel's schedule-chaos choice points) through the same
process pool, wall-clock limiter and on-disk result cache as the sweep
engine.  Verification failures are **findings**, so unlike performance
sweeps there are no retry-with-bumped-seed semantics: a failing seed is
reported, then *shrunk* -- workload size halved while the failure
reproduces, then the processor count -- and the minimal reproduction is
re-run with a :class:`~repro.sim.trace.Tracer` attached to render the
events around the first violation.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.harness.cache import resolve_cache
from repro.harness.machine import Machine
from repro.harness.parallel import (_wall_clock_limit, ambient_progress,
                                    map_payloads)
from repro.harness.spec import (SIZE_PARAM, RunSpec, check_schema,
                                scheme_to_str, stamp_schema)
from repro.obs import MachineMetrics
from repro.runtime.program import ValidationError
from repro.sim.kernel import SimulationError
from repro.sim.trace import Tracer
from repro.verify.monitors import InvariantViolation, MonitorSuite
from repro.verify.oracle import SerializabilityOracle
from repro.verify.recorder import FootprintRecorder

# Bumped whenever the recorder/oracle/monitor semantics change in a way
# that invalidates cached verification verdicts.
# v2: VerifyResult grew ``cycles``/``summary``; monitors became
#     contention-policy aware (repro.policies).
# v3: VerifyResult grew ``metrics`` (repro.obs conflict telemetry);
#     cached pre-v3 verdicts would come back without it.
# v4: verdict payloads are schema-stamped (``"schema"`` field, checked
#     by ``from_dict``); pre-v4 cached verdicts lack the stamp.
# v5: VerifyResult grew ``record_log`` (repro.record auto-capture of
#     the shrunk failing schedule); pre-v5 verdicts lack the field.
VERIFY_FINGERPRINT_VERSION = 5

#: Cycles of trace to render before/after the first violation.
TRACE_WINDOW_BEFORE = 2_000
TRACE_WINDOW_AFTER = 500


@dataclass(frozen=True)
class VerifyOptions:
    """Knobs for one verification run (part of the cache key)."""

    monitors: bool = True            # run the invariant monitors
    oracle: bool = True              # run the serializability oracle
    strict_exclusive: bool = True    # MOESI strict-exclusivity check
    watchdog_period: int = 20_000
    watchdog_patience: int = 10

    def to_dict(self) -> dict:
        return {"monitors": self.monitors, "oracle": self.oracle,
                "strict_exclusive": self.strict_exclusive,
                "watchdog_period": self.watchdog_period,
                "watchdog_patience": self.watchdog_patience}

    @classmethod
    def from_dict(cls, data: dict) -> "VerifyOptions":
        return cls(**data)


@dataclass
class VerifyResult:
    """Verdict of one verified run."""

    workload: str
    scheme: str
    num_cpus: int
    seed: int
    ok: bool
    error: Optional[str] = None        # exception that ended the run
    violations: list[str] = field(default_factory=list)
    num_txns: int = 0
    edges: dict = field(default_factory=dict)
    elapsed: float = 0.0
    cycles: int = 0                    # simulated parallel execution time
    summary: dict = field(default_factory=dict)  # key machine counters
    # Conflict telemetry (repro.obs registry export); None when loaded
    # from a pre-v3 cached verdict.
    metrics: Optional[dict] = None
    # Path of the auto-captured record log (repro.record) for this
    # run's schedule -- set on shrunk failing verdicts; replay it with
    # ``repro replay <path>``.
    record_log: Optional[str] = None
    # Raw log bytes when the run was executed with ``record=True`` in
    # this process; never serialized (the path above is the durable
    # handle).
    log_bytes: Optional[bytes] = field(default=None, repr=False,
                                       compare=False)

    def to_dict(self) -> dict:
        return stamp_schema({
            "workload": self.workload, "scheme": self.scheme,
            "num_cpus": self.num_cpus, "seed": self.seed,
            "ok": self.ok, "error": self.error,
            "violations": list(self.violations),
            "num_txns": self.num_txns, "edges": dict(self.edges),
            "elapsed": self.elapsed, "cycles": self.cycles,
            "summary": dict(self.summary),
            "metrics": self.metrics,
            "record_log": self.record_log})

    @classmethod
    def from_dict(cls, data: dict) -> "VerifyResult":
        check_schema(data, "VerifyResult")
        return cls(workload=data["workload"], scheme=data["scheme"],
                   num_cpus=data["num_cpus"], seed=data["seed"],
                   ok=data["ok"], error=data.get("error"),
                   violations=list(data.get("violations") or []),
                   num_txns=data.get("num_txns", 0),
                   edges=dict(data.get("edges") or {}),
                   elapsed=data.get("elapsed", 0.0),
                   cycles=data.get("cycles", 0),
                   summary=dict(data.get("summary") or {}),
                   metrics=data.get("metrics"),
                   record_log=data.get("record_log"))

    def headline(self) -> str:
        status = "ok" if self.ok else "FAIL"
        extra = ""
        if self.error:
            extra = f" -- {self.error}"
        elif self.violations:
            extra = f" -- {self.violations[0]}"
        return (f"{self.workload}/{self.scheme} cpus={self.num_cpus} "
                f"seed={self.seed}: {status} ({self.num_txns} txns)"
                f"{extra}")


# ----------------------------------------------------------------------
# One verified run
# ----------------------------------------------------------------------
def verify_run(spec: RunSpec, options: Optional[VerifyOptions] = None,
               collect_trace: bool = False, record: bool = False
               ) -> tuple[VerifyResult, Optional[Tracer]]:
    """Build, instrument and run one spec; judge the execution.

    Returns the verdict and (when ``collect_trace``) the attached
    :class:`~repro.sim.trace.Tracer` for rendering.  With ``record``,
    a :class:`~repro.record.FlightRecorder` captures the run's binary
    event log into the verdict's ``log_bytes`` -- the harness mode is
    embedded so ``repro replay`` re-attaches the same monitors (their
    watchdog events are part of the recorded schedule).
    """
    options = options or VerifyOptions()
    started = time.perf_counter()
    workload = spec.build_workload()
    machine = Machine(spec.config)
    tracer = Tracer().attach(machine) if collect_trace else None
    flight = None
    if record:
        from repro.record import FlightRecorder
        flight = FlightRecorder(
            spec, locks=sorted(workload.lock_addrs),
            harness={"kind": "verify",
                     "options": options.to_dict()}).attach(machine)
    collector = (MachineMetrics().attach(machine)
                 if spec.config.metrics else None)
    recorder = FootprintRecorder().attach(machine)
    monitors = None
    if options.monitors:
        monitors = MonitorSuite(
            machine, fail_fast=True,
            strict_exclusive=options.strict_exclusive,
            watchdog_period=options.watchdog_period,
            watchdog_patience=options.watchdog_patience).attach()
    error: Optional[str] = None
    try:
        machine.run_workload(workload, validate=spec.validate)
    except (InvariantViolation, ValidationError, SimulationError) as exc:
        error = f"{type(exc).__name__}: {exc}"

    violations: list[str] = []
    if monitors is not None:
        violations.extend(str(v) for v in monitors.violations)
    num_txns = len(recorder.committed)
    edges: dict = {}
    if options.oracle:
        report = SerializabilityOracle(recorder).check(
            machine.store.snapshot())
        num_txns = report.num_txns
        edges = report.edges
        violations.extend(str(v) for v in report.violations)

    stats_image = machine.stats.summary()
    summary = {key: stats_image.get(key, 0)
               for key in ("restarts", "requests_deferred", "nacks_sent",
                           "elisions_committed", "lock_fallbacks",
                           "critical_sections")}
    result = VerifyResult(
        workload=spec.workload,
        scheme=scheme_to_str(spec.config.scheme),
        num_cpus=spec.config.num_cpus,
        seed=spec.config.seed,
        ok=error is None and not violations,
        error=error,
        violations=violations,
        num_txns=num_txns,
        edges=edges,
        elapsed=time.perf_counter() - started,
        cycles=stats_image.get("total_cycles", 0) or machine.sim.now,
        summary=summary,
        metrics=(collector.finalize(machine)
                 if collector is not None else None))
    if flight is not None:
        from repro.harness.runner import RunResult, result_fingerprint
        run_fingerprint = result_fingerprint(RunResult(
            config=spec.config, workload_name=workload.name,
            stats=machine.stats, store=machine.store))
        result.log_bytes = flight.finish(run_fingerprint)
    return result, tracer


def verify_fingerprint(spec: RunSpec, options: VerifyOptions) -> str:
    """Cache key for one verification verdict: run fingerprint plus the
    verification knobs plus the verifier's own version."""
    payload = {"v": VERIFY_FINGERPRINT_VERSION,
               "run": spec.fingerprint(),
               "options": options.to_dict()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "verify-" + hashlib.sha256(
        canonical.encode("utf-8")).hexdigest()


def _verify_worker(payload: tuple) -> dict:
    """Top-level pool entry point (must be picklable).  Failures are
    findings: a run that dies or times out becomes a failing verdict,
    never a retry."""
    spec_dict, options_dict, timeout = payload
    spec = RunSpec.from_dict(spec_dict)
    options = VerifyOptions.from_dict(options_dict)
    started = time.perf_counter()
    try:
        with _wall_clock_limit(timeout):
            result, _ = verify_run(spec, options)
    except Exception as exc:  # timeout or an unexpected verifier crash
        result = VerifyResult(
            workload=spec.workload,
            scheme=scheme_to_str(spec.config.scheme),
            num_cpus=spec.config.num_cpus,
            seed=spec.config.seed,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            elapsed=time.perf_counter() - started)
    return result.to_dict()


# ----------------------------------------------------------------------
# Seed fan-out
# ----------------------------------------------------------------------
@dataclass
class ExplorationResult:
    """Outcome of one seed fan-out."""

    spec: RunSpec                     # the base (seed-0) spec
    options: VerifyOptions
    results: list[VerifyResult]
    cache_hits: int = 0
    wall_seconds: float = 0.0

    @property
    def failures(self) -> list[VerifyResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_txns(self) -> int:
        return sum(r.num_txns for r in self.results)

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} seeds)"
        return (f"{self.spec.workload}/{scheme_to_str(self.spec.config.scheme)}"
                f" cpus={self.spec.config.num_cpus}: {status} -- "
                f"{len(self.results)} seeds, {self.total_txns} txns "
                f"verified, {self.cache_hits} cached, "
                f"{self.wall_seconds:.1f}s")


def with_chaos(spec: RunSpec, chaos: int) -> RunSpec:
    """Return ``spec`` with kernel schedule-chaos amplitude ``chaos``."""
    return replace(spec, config=replace(spec.config, schedule_chaos=chaos))


def verify_specs(specs: Sequence[RunSpec], *,
                 options: Optional[VerifyOptions] = None,
                 jobs: int = 1, timeout: Optional[float] = None,
                 cache=None, progress=None
                 ) -> tuple[list[VerifyResult], int]:
    """Verify an arbitrary batch of specs through the pool and cache.

    The shared engine under :func:`explore` and the policy-grid
    experiment: every spec gets the full instrumented treatment
    (recorder, oracle, monitors) and verdicts are cached under
    :func:`verify_fingerprint`.  Returns the verdicts (same order as
    ``specs``) and the number served from cache.
    """
    options = options or VerifyOptions()
    store = resolve_cache(cache)
    specs = list(specs)
    fingerprints = [verify_fingerprint(s, options) for s in specs]
    results: list[Optional[VerifyResult]] = [None] * len(specs)
    cache_hits = 0
    done = 0
    taps = [tap for tap in (progress, ambient_progress())
            if tap is not None]

    def _notify(count: int, total: int, result: VerifyResult) -> None:
        for tap in taps:
            tap(count, total, result)

    pending: list[int] = []
    for i, s in enumerate(specs):
        payload = store.get(fingerprints[i]) if store is not None else None
        if payload is not None:
            try:
                results[i] = VerifyResult.from_dict(payload["verdict"])
            except (KeyError, TypeError, ValueError):
                store.invalidate(fingerprints[i])
            else:
                cache_hits += 1
                done += 1
                _notify(done, len(specs), results[i])
                continue
        pending.append(i)

    def _absorb(index: int, raw: dict) -> None:
        nonlocal done
        results[index] = VerifyResult.from_dict(raw)
        if store is not None:
            store.put(fingerprints[index],
                      {"spec": specs[index].to_dict(), "verdict": raw})
        done += 1
        _notify(done, len(specs), results[index])

    payloads = [(specs[i].to_dict(), options.to_dict(), timeout)
                for i in pending]
    for index, raw in zip(pending,
                          map_payloads(_verify_worker, payloads, jobs)):
        _absorb(index, raw)

    return list(results), cache_hits


def explore(spec: RunSpec, *, seeds: int = 100, base_seed: int = 0,
            jobs: int = 1, timeout: Optional[float] = None,
            cache=None, options: Optional[VerifyOptions] = None,
            progress=None) -> ExplorationResult:
    """Verify ``spec`` under ``seeds`` different seeds.

    ``progress(done, total, result)`` fires as verdicts land.  Verdicts
    are cached under :func:`verify_fingerprint`, so re-running an
    exploration only simulates seeds that were not seen before.
    """
    options = options or VerifyOptions()
    started = time.perf_counter()
    specs = [spec.with_seed(base_seed + i) for i in range(seeds)]
    results, cache_hits = verify_specs(
        specs, options=options, jobs=jobs, timeout=timeout, cache=cache,
        progress=progress)
    return ExplorationResult(spec=spec, options=options,
                             results=results,
                             cache_hits=cache_hits,
                             wall_seconds=time.perf_counter() - started)


# ----------------------------------------------------------------------
# Failure shrinking
# ----------------------------------------------------------------------
@dataclass
class ShrunkFailure:
    """A minimal reproduction of one failing seed."""

    spec: RunSpec
    result: VerifyResult
    trace: str
    shrink_steps: int = 0

    def render(self) -> str:
        config = self.spec.config
        size_key = SIZE_PARAM.get(self.spec.workload)
        size = self.spec.workload_args.get(size_key, "?") if size_key else "?"
        header = (f"minimal reproduction after {self.shrink_steps} shrink "
                  f"steps: {self.spec.workload} {size_key}={size} "
                  f"cpus={config.num_cpus} seed={config.seed} "
                  f"chaos={config.schedule_chaos}")
        problem = self.result.error or (
            self.result.violations[0] if self.result.violations else "?")
        lines = [header, f"failure: {problem}"]
        if self.result.record_log:
            lines.append(f"record log: {self.result.record_log} "
                         f"(replay with `repro replay`)")
        lines += ["", self.trace]
        return "\n".join(lines)


def _still_fails(spec: RunSpec, options: VerifyOptions,
                 timeout: Optional[float]) -> Optional[VerifyResult]:
    """Re-run ``spec``; returns the failing verdict or None if it now
    passes (shrinking must preserve the failure)."""
    raw = _verify_worker((spec.to_dict(), options.to_dict(), timeout))
    result = VerifyResult.from_dict(raw)
    return None if result.ok else result


def shrink_failure(spec: RunSpec, *,
                   options: Optional[VerifyOptions] = None,
                   timeout: Optional[float] = None,
                   max_rounds: int = 16) -> ShrunkFailure:
    """Shrink a failing spec to a minimal reproduction.

    Greedily halves the workload's size knob while the failure still
    reproduces, then halves the processor count (floor 2), then re-runs
    the survivor with a :class:`~repro.sim.trace.Tracer` attached and
    renders the window around the first violation.
    """
    options = options or VerifyOptions()
    current = spec
    steps = 0
    size_key = SIZE_PARAM.get(spec.workload)

    def try_shrunk(candidate: RunSpec) -> bool:
        nonlocal current, steps
        if _still_fails(candidate, options, timeout) is not None:
            current = candidate
            steps += 1
            return True
        return False

    if size_key is not None and size_key in spec.workload_args:
        for _ in range(max_rounds):
            size = current.workload_args[size_key]
            if size <= 2:
                break
            smaller = dict(current.workload_args)
            smaller[size_key] = max(2, size // 2)
            if not try_shrunk(replace(current, workload_args=smaller)):
                break
    for _ in range(max_rounds):
        cpus = current.config.num_cpus
        if cpus <= 2:
            break
        fewer = replace(current,
                        config=replace(current.config,
                                       num_cpus=max(2, cpus // 2)))
        if not try_shrunk(fewer):
            break

    # Final instrumented run of the minimal reproduction, with a
    # record log captured so the exact failing schedule can be
    # replayed and time-travel-debugged offline.
    result, tracer = verify_run(current, options, collect_trace=True,
                                record=True)
    if result.ok:
        # The failure is flaky at this size (e.g. pool-vs-serial timing
        # of the wall clock); fall back to the unshrunk spec.
        current, steps = spec, 0
        result, tracer = verify_run(current, options, collect_trace=True,
                                    record=True)
    if result.log_bytes:
        from repro.record import artifact_dir
        log_path = os.path.join(
            artifact_dir(),
            f"record-{current.workload}-s{current.config.seed}.rlog")
        with open(log_path, "wb") as fh:
            fh.write(result.log_bytes)
        result.record_log = log_path
    first_violation = _first_violation_time(result)
    if first_violation is not None:
        trace = tracer.render(since=max(0, first_violation
                                        - TRACE_WINDOW_BEFORE),
                              until=first_violation + TRACE_WINDOW_AFTER)
    else:
        events = tracer.events
        since = events[-80].time if len(events) > 80 else 0
        trace = tracer.render(since=since)
    return ShrunkFailure(spec=current, result=result, trace=trace,
                         shrink_steps=steps)


def _first_violation_time(result: VerifyResult) -> Optional[int]:
    """Pull the earliest ``t=N`` annotation out of the verdict's
    violation strings (both monitor and oracle violations carry one)."""
    times = []
    for text in result.violations:
        for token in text.replace("]", " ").split():
            if token.startswith("t=") and token[2:].isdigit():
                times.append(int(token[2:]))
                break
    return min(times) if times else None


# ----------------------------------------------------------------------
# The full verification suite (three microbenchmarks by default)
# ----------------------------------------------------------------------
DEFAULT_VERIFY_WORKLOADS: Sequence[str] = (
    "single-counter", "multiple-counter", "linked-list")


@dataclass
class VerifySuiteResult:
    """Outcome of :func:`verify_suite` across several workloads."""

    explorations: dict[str, ExplorationResult]
    shrunk: Optional[ShrunkFailure] = None

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.explorations.values())

    def render(self) -> str:
        lines = [e.summary() for e in self.explorations.values()]
        if self.shrunk is not None:
            lines += ["", self.shrunk.render()]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return stamp_schema({
            "ok": self.ok,
            "workloads": {
                name: {"ok": e.ok,
                       "seeds": len(e.results),
                       "failures": [r.to_dict() for r in e.failures],
                       "total_txns": e.total_txns,
                       "cache_hits": e.cache_hits,
                       "wall_seconds": e.wall_seconds}
                for name, e in self.explorations.items()},
            "shrunk": None if self.shrunk is None else {
                "spec": self.shrunk.spec.to_dict(),
                "result": self.shrunk.result.to_dict(),
                "trace": self.shrunk.trace,
                "shrink_steps": self.shrunk.shrink_steps},
        })


def verify_suite(workloads: Sequence[str] = DEFAULT_VERIFY_WORKLOADS, *,
                 scheme=None, num_cpus: int = 4, seeds: int = 100,
                 ops: int = 96, chaos: int = 0, base_seed: int = 0,
                 jobs: int = 1, timeout: Optional[float] = None,
                 cache=None, options: Optional[VerifyOptions] = None,
                 shrink: bool = True, progress=None,
                 policy: Optional[str] = None) -> VerifySuiteResult:
    """Explore every workload; shrink the first failing seed found.

    ``policy`` selects a contention policy by name (see
    :data:`repro.policies.POLICY_NAMES`); None keeps the config default
    (the paper's timestamp deferral).
    """
    from repro.harness.config import SyncScheme, SystemConfig

    scheme = scheme or SyncScheme.TLR
    options = options or VerifyOptions()
    explorations: dict[str, ExplorationResult] = {}
    shrunk: Optional[ShrunkFailure] = None
    for name in workloads:
        config = SystemConfig(num_cpus=num_cpus, scheme=scheme,
                              schedule_chaos=chaos)
        if policy is not None:
            config = config.with_policy(policy)
        size_key = SIZE_PARAM[name]
        spec = RunSpec(workload=name, config=config,
                       workload_args={size_key: ops})
        exploration = explore(spec, seeds=seeds, base_seed=base_seed,
                              jobs=jobs, timeout=timeout, cache=cache,
                              options=options, progress=progress)
        explorations[name] = exploration
        if shrunk is None and shrink and exploration.failures:
            failing = exploration.failures[0]
            shrunk = shrink_failure(
                spec.with_seed(failing.seed),
                options=options, timeout=timeout)
    return VerifySuiteResult(explorations=explorations, shrunk=shrunk)
