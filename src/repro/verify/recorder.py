"""Committed-transaction footprint recording.

The serializability oracle needs, for every *committed* lock-free
transaction, the values it read (and where they came from), the write
set it published, and its commit instant -- plus the chronological log
of every non-transactional architectural write, so the whole run can be
replayed against a sequential reference.

:class:`FootprintRecorder` collects all of that **non-invasively**, in
the style of :meth:`repro.sim.trace.Tracer.attach`: it wraps the
processors' architectural-read path and commit entry point and the
machine's :class:`~repro.coherence.memory.ValueStore` write path with
recording shims.  Nothing in the hot path changes when no recorder is
attached, and the wrapped run is bit-identical to an unwrapped one (the
shims only observe).

Epoch tagging gives failure atomicity for free: read observations carry
the processor's squash epoch, and a commit keeps only observations from
the committing attempt -- reads made by restarted attempts are dropped,
exactly as the hardware discards them.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.coherence.messages import Timestamp
from repro.cpu.isa import line_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.machine import Machine


@dataclass
class ReadObservation:
    """One transactional read that hit architectural memory.

    ``writer`` / ``line_writer`` are the ids of the committed
    transactions whose write this observation read at word / cache-line
    granularity (None = the initial value or a non-transactional
    write).  ``era`` counts the non-transactional writes the line had
    seen by read time: plain writes (e.g. a lock-fallback critical
    section) reset provenance to None, so the era is what keeps two
    None-provenance reads on opposite sides of a plain write from
    looking like reads of the same version.  Reads satisfied by the
    processor's own write buffer are *not* recorded --
    read-your-own-writes is trivially consistent.
    """

    addr: int
    value: int
    line: int
    writer: Optional[int]
    line_writer: Optional[int]
    epoch: int
    time: int
    era: int = 0


@dataclass
class CommittedTxn:
    """One committed lock-free critical-section execution."""

    txn_id: int                     # dense commit-order index
    cpu: int
    ts: Optional[Timestamp]         # TLR timestamp (None under plain SLE)
    commit_time: int
    reads: list[ReadObservation]
    writes: dict[int, int]          # committed write set (addr -> value)
    #: written line -> plain-write era the line was in at commit time
    #: (see :class:`ReadObservation.era`).
    line_eras: dict = field(default_factory=dict)

    @property
    def read_lines(self) -> set[int]:
        return {obs.line for obs in self.reads}

    @property
    def written_lines(self) -> set[int]:
        return {line_of(addr) for addr in self.writes}


# Log entry tags: ("w", time, addr, value) for a plain architectural
# write, ("c", txn_id) for an atomic transaction commit.
PLAIN_WRITE = "w"
COMMIT = "c"


class FootprintRecorder:
    """Records commit-ordered transaction footprints from one machine."""

    def __init__(self):
        self.committed: list[CommittedTxn] = []
        self.log: list[tuple] = []
        self.plain_writes = 0
        self._machine: Optional["Machine"] = None
        # Per-cpu read observations of the *current* speculative attempt.
        self._pending: dict[int, list[ReadObservation]] = {}
        # addr / line -> txn id of the last committed transactional
        # writer, or None after a non-transactional write.
        self._last_writer: dict[int, Optional[int]] = {}
        self._last_line_writer: dict[int, Optional[int]] = {}
        # line -> number of plain writes seen (the line's current era).
        self._line_era: dict[int, int] = {}
        self._in_commit = False

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, machine: "Machine") -> "FootprintRecorder":
        """Wrap the machine's processors and value store with recording
        shims.  Call before ``run_workload``."""
        self._machine = machine
        for processor in machine.processors:
            self._wrap_processor(processor)
        self._wrap_store(machine)
        return self

    def _wrap_processor(self, processor) -> None:
        cpu = processor.cpu_id
        self._pending[cpu] = []
        original_read = processor._arch_read
        original_commit = processor.commit_transaction

        @functools.wraps(original_read)
        def arch_read(addr: int):
            value = original_read(addr)
            if (processor.spec.active
                    and processor.write_buffer.read(addr) is None):
                pending = self._pending[cpu]
                if pending and pending[-1].epoch != processor.epoch:
                    # A restart squashed the previous attempt's reads.
                    pending.clear()
                pending.append(ReadObservation(
                    addr=addr, value=value, line=line_of(addr),
                    writer=self._last_writer.get(addr),
                    line_writer=self._last_line_writer.get(line_of(addr)),
                    epoch=processor.epoch, time=processor.sim.now,
                    era=self._line_era.get(line_of(addr), 0)))
            return value

        @functools.wraps(original_commit)
        def commit_transaction():
            # Snapshot *before* the original drains the write buffer.
            ts = processor.controller.current_ts
            writes = processor.write_buffer.snapshot()
            epoch = processor.epoch
            reads = [obs for obs in self._pending[cpu]
                     if obs.epoch == epoch]
            self._pending[cpu] = []
            txn = CommittedTxn(txn_id=len(self.committed), cpu=cpu, ts=ts,
                               commit_time=processor.sim.now,
                               reads=reads, writes=writes,
                               line_eras={
                                   line_of(addr): self._line_era.get(
                                       line_of(addr), 0)
                                   for addr in writes})
            self.committed.append(txn)
            self.log.append((COMMIT, txn.txn_id))
            self._in_commit = True
            try:
                original_commit()
            finally:
                self._in_commit = False
            for addr in writes:
                self._last_writer[addr] = txn.txn_id
                self._last_line_writer[line_of(addr)] = txn.txn_id

        processor._arch_read = arch_read
        processor.commit_transaction = commit_transaction

    def _wrap_store(self, machine: "Machine") -> None:
        store = machine.store
        sim = machine.sim
        original_write = store.write

        @functools.wraps(original_write)
        def write(addr: int, value) -> None:
            original_write(addr, value)
            if self._in_commit:
                return  # commit drains are logged as one atomic entry
            self.plain_writes += 1
            self.log.append((PLAIN_WRITE, sim.now, addr, value))
            self._last_writer[addr] = None
            self._last_line_writer[line_of(addr)] = None
            line = line_of(addr)
            self._line_era[line] = self._line_era.get(line, 0) + 1

        store.write = write
