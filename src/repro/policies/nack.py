"""NACK-based ownership retention (the alternative of Section 3).

Same timestamp order as :class:`TimestampDeferral`, different retention
mechanism: at the snoop, a conflict the holder wins is refused with a
negative acknowledgement, forcing the requester to back off and
re-arbitrate (needs NACK support in the protocol).  Once a request is
past its order point a NACK is no longer possible -- the **chained
request corner**: when the holder lacks the data at order time (its own
fill is still in flight), the conflicting request chains behind the miss
and is retained by *deferral*, exactly as under the paper's policy.
"""

from __future__ import annotations

from repro.policies.base import ConflictContext, PolicyDecision
from repro.policies.timestamp import TimestampDeferral


class NackRetention(TimestampDeferral):
    """Timestamp order, retained by NACK at the snoop.

    Re-homes the legacy ``retention_policy="nack"`` configuration into
    the policy interface (configs setting only ``retention_policy`` are
    normalized onto this policy).

    Guarantees: the same timestamp-order starvation freedom as deferral.
    Forfeits: protocol NACK support, and retry traffic the deferred
    input queue avoids.
    """

    name = "nack"
    ordering = "timestamp"
    uses_nack = True

    def __init__(self, config, cpu_id: int):
        super().__init__(config, cpu_id)
        #: Conflicts retained by a snoop-time refusal (vs. the deferral
        #: fallback past the order point).
        self.snoop_refusals = 0

    def resolve(self, ctx: ConflictContext) -> PolicyDecision:
        decision = super().resolve(ctx)
        if ctx.at_snoop and decision is PolicyDecision.DEFER:
            self.snoop_refusals += 1
            return PolicyDecision.NACK_RETRY
        return decision

    def telemetry(self) -> dict:
        data = super().telemetry()
        data["snoop_refusals"] = self.snoop_refusals
        return data
