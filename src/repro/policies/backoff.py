"""Polka-style contention management: exponential backoff + priorities.

The classic software-TM contention manager (Scherer & Scott's *Polka*),
transplanted onto the TLR hardware decision point: every transaction
carries a **priority** that accumulates with each abort (work lost),
and a conflict is won by the higher-priority side.  Losers do not spin
on the winner -- they back off for exponentially growing windows, so a
transaction that keeps losing eventually either outwaits its enemies
or out-prioritizes them.

Priority deliberately does *not* rise on a mere NACK.  A nacked
requester lost nothing yet, and bumping it would let two requesters
that hold each other's lines escalate in lockstep: each refusal raises
the local priority, which makes the opponent's in-flight request (with
its now-stale stamped priority) look weaker, so both sides refuse
forever -- mutual starvation the watchdog duly flags.  With
abort-count priorities the win relation only moves when somebody
actually restarts, and ties stay broken by the timestamp total order.

Retention is NACK-based (the holder refuses requests it wins at the
snoop); once a request is ordered and the holder cannot refuse it, it is
deferred only when doing so cannot deadlock (the holder has no other
transactional miss outstanding -- a deferring node that never waits
cannot be part of a wait cycle), otherwise the holder concedes.
Priority ties are broken by timestamp so the win relation stays a total
order at any instant.
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.messages import BusRequest, beats
from repro.policies.base import (ConflictContext, ContentionPolicy,
                                 PolicyDecision)

#: Caps on the exponential schedules (exponents, not cycles).
_MAX_NACK_EXP = 6
_MAX_RESTART_EXP = 8


class BackoffAborts(ContentionPolicy):
    """Higher accumulated priority wins; losers back off exponentially.

    Guarantees: probabilistic progress -- growing backoff windows plus
    monotone priority make sustained mutual aborts vanishingly unlikely,
    without global timestamp plumbing.  Forfeits: the paper's *determin-
    istic* starvation freedom; fairness is only statistical.
    """

    name = "backoff"
    ordering = "priority"
    uses_nack = True

    def __init__(self, config, cpu_id: int):
        super().__init__(config, cpu_id)
        self.priority = 0
        self._nack_streak = 0

    # ------------------------------------------------------------------
    def _requester_wins(self, ctx: ConflictContext) -> bool:
        if ctx.requester_prio != self.priority:
            return ctx.requester_prio > self.priority
        return beats(ctx.requester_ts, ctx.holder_ts)

    def resolve(self, ctx: ConflictContext) -> PolicyDecision:
        if self._requester_wins(ctx):
            return PolicyDecision.ABORT_HOLDER
        if ctx.at_snoop:
            return PolicyDecision.NACK_RETRY
        if ctx.holder_has_miss:
            # Deferring while waiting on another miss could close a wait
            # cycle that priorities (unlike timestamps) cannot order
            # away; concede instead.
            return PolicyDecision.ABORT_HOLDER
        return PolicyDecision.DEFER

    def must_release_before_miss(self, deferred, holder_ts) -> bool:
        # Mirror image of the resolve() rule: never hold deferrals
        # across a new transactional miss.
        return bool(deferred.lines())

    # ------------------------------------------------------------------
    # Lifecycle: priority accumulation across retries
    # ------------------------------------------------------------------
    def on_restart(self, reason: str, attempts: int) -> None:
        super().on_restart(reason, attempts)
        self.priority += 1

    def on_nacked(self, request: BusRequest) -> None:
        self._nack_streak += 1

    def on_commit(self) -> None:
        super().on_commit()
        self.priority = 0
        self._nack_streak = 0

    # ------------------------------------------------------------------
    # Pacing: exponential schedules
    # ------------------------------------------------------------------
    def nack_delay(self, request: BusRequest) -> int:
        base = self.config.spec.nack_retry_delay
        return base * (2 ** min(self._nack_streak, _MAX_NACK_EXP))

    def backoff_for(self, attempts: int) -> Optional[int]:
        spec = self.config.spec
        return spec.misspec_penalty + spec.restart_backoff_step * (
            2 ** min(max(0, attempts - 1), _MAX_RESTART_EXP))

    def request_priority(self) -> int:
        return self.priority

    def telemetry(self) -> dict:
        data = super().telemetry()
        data["priority"] = self.priority
        data["nack_streak"] = self._nack_streak
        return data
